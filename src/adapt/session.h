// Session manager, adaptivity manager and state manager (right half of
// Fig 1).
//
// The session manager "is fed information from monitors or gauges ...
// constantly checks constraints and, if broken, consults the switching
// rules to decide how best to overcome the problem", then hands the
// alternative over to the adaptivity manager, which "carries out the
// unbinding and rebinding of components" under transactional properties.
// The state manager holds checkpointed processing/data state so a SWITCH
// can resume consistently (scenario 3 and the Patia flash-crowd case).

#ifndef DBM_ADAPT_SESSION_H_
#define DBM_ADAPT_SESSION_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/metrics.h"
#include "adapt/rules.h"
#include "common/sim_clock.h"
#include "component/component.h"
#include "component/reconfigure.h"

namespace dbm::adapt {

/// One constraint row, exactly as in Table 2: id, subject (atom / data
/// component), rule, and a priority ("the constraint rules themselves can
/// be prioritised", §4).
struct Constraint {
  int id = 0;
  std::string subject;
  Rule rule;
  int priority = 0;  // lower value = evaluated first
};

/// The constraint store attached to data components / atoms.
class ConstraintTable {
 public:
  /// Adds a constraint, parsing `rule_text` in the Table 2 notation.
  Status Add(int id, const std::string& subject, std::string_view rule_text,
             int priority = 0);
  Status Add(Constraint constraint);
  Status Remove(int id);

  /// Constraints for one subject, by priority then id.
  std::vector<const Constraint*> ForSubject(const std::string& subject) const;
  /// All constraints, by priority then id.
  std::vector<const Constraint*> All() const;
  const Constraint* Find(int id) const;
  size_t size() const { return rows_.size(); }

 private:
  std::map<int, Constraint> rows_;
};

/// An adaptation the session manager asks for.
struct AdaptationRequest {
  int constraint_id = 0;
  std::string subject;
  Decision decision;
  SimTime at = 0;
};

/// The enactment record (for experiment logging).
struct AdaptationEvent {
  AdaptationRequest request;
  Status outcome;
};

/// State manager: holds checkpointed state between unbind and rebind.
class StateManager : public component::Component {
 public:
  explicit StateManager(std::string name = "state-manager")
      : Component(std::move(name), "state-manager") {}

  Status Save(const std::string& key, component::StateBlob blob) {
    blobs_[key] = std::move(blob);
    return Status::OK();
  }
  Result<component::StateBlob> Load(const std::string& key) const {
    auto it = blobs_.find(key);
    if (it == blobs_.end()) {
      return Status::NotFound("no saved state for '" + key + "'");
    }
    return it->second;
  }
  Status Drop(const std::string& key) {
    return blobs_.erase(key) > 0
               ? Status::OK()
               : Status::NotFound("no saved state for '" + key + "'");
  }
  size_t size() const { return blobs_.size(); }

 private:
  std::map<std::string, component::StateBlob> blobs_;
};

/// Enacts decisions. The hosting layer registers a handler per subject
/// (or the catch-all ""): given the request, the handler performs the
/// domain action — rebinding a version port, migrating a service agent,
/// amending a query plan — typically by executing a ReconfigurationPlan.
class AdaptivityManager : public component::Component {
 public:
  using Handler = std::function<Status(const AdaptationRequest&)>;

  explicit AdaptivityManager(std::string name = "adaptivity-manager")
      : Component(std::move(name), "adaptivity-manager") {
    obs::Registry& reg = obs::Registry::Default();
    obs_enacted_ = &reg.GetCounter("adapt.adaptivity.switchovers");
    obs_failed_ = &reg.GetCounter("adapt.adaptivity.failed");
  }

  void RegisterHandler(const std::string& subject, Handler handler) {
    handlers_[subject] = std::move(handler);
  }

  /// Applies the request via the most specific registered handler.
  Status Enact(const AdaptationRequest& request);

  const std::vector<AdaptationEvent>& log() const { return log_; }
  uint64_t enacted() const { return enacted_; }
  uint64_t failed() const { return failed_; }

 private:
  std::map<std::string, Handler> handlers_;
  std::vector<AdaptationEvent> log_;
  uint64_t enacted_ = 0;
  uint64_t failed_ = 0;
  obs::Counter* obs_enacted_;
  obs::Counter* obs_failed_;
};

/// Learned per-constraint hysteresis (§6 open issue: "systems that learn
/// from previous adaptations are required").
///
/// Fine-grained adaptive systems oscillate: a SWITCH away from a loaded
/// node loads the target, whose constraint switches back — the paper's §6
/// observation that "with finer-grained systems there are ... many
/// feedback loops ... difficult to attribute". The damper LEARNS a
/// per-constraint cooldown: when recent enactments alternate between two
/// remedies, the cooldown doubles (up to a cap); sustained quiet halves
/// it back. The rules themselves stay fixed — the closed-adaptivity model
/// is preserved; only a scalar per constraint is learned.
struct HysteresisOptions {
  bool enabled = false;
  SimTime base_cooldown = 0;       // minimum gap between enactments
  size_t oscillation_window = 4;   // enactments inspected for A/B/A/B
  double backoff_factor = 2.0;     // cooldown growth on oscillation
  SimTime initial_cooldown = Millis(100);  // first learned value
  SimTime max_cooldown = Seconds(10);
  SimTime decay_after = Seconds(5);  // quiet period that halves it
};

/// The session manager: evaluates the constraint table against the metric
/// bus and drives the adaptivity manager.
class SessionManager : public component::Component {
 public:
  SessionManager(std::string name, MetricBus* bus, ConstraintTable* table)
      : Component(std::move(name), "session-manager"),
        bus_(bus),
        table_(table) {
    DeclarePort("adaptivity", "adaptivity-manager");
    DeclarePort("state", "state-manager", /*optional=*/true);
    obs::Registry& reg = obs::Registry::Default();
    obs_evaluations_ = &reg.GetCounter("adapt.session.evaluations");
    obs_firings_ = &reg.GetCounter("adapt.session.rule_firings");
    obs_suppressed_ = &reg.GetCounter("adapt.session.suppressed");
  }

  void EnableHysteresis(HysteresisOptions options) {
    hysteresis_ = options;
  }
  /// Currently learned cooldown for a constraint (0 if none learned).
  SimTime LearnedCooldown(int constraint_id) const;
  uint64_t suppressed() const { return suppressed_; }

  /// Per-subject scorers for BEST/NEAREST/SWITCH. The "" scorer is the
  /// default.
  void SetScorer(const std::string& subject, const TargetScorer* scorer) {
    scorers_[subject] = scorer;
  }

  /// Evaluates all *triggered* (If-) constraints; every one whose trigger
  /// fires and whose chosen target differs from the last enacted choice is
  /// forwarded to the adaptivity manager. Returns the number enacted.
  Result<int> CheckConstraints(SimTime now);

  /// Evaluates the highest-priority Select-rule for `subject` — the
  /// placement query used by inter-query adaptation (scenario 1).
  Result<Decision> Decide(const std::string& subject);

  uint64_t evaluations() const { return evaluations_; }
  uint64_t triggers() const { return triggers_; }

 private:
  const TargetScorer& ScorerFor(const std::string& subject) const;

  MetricBus* bus_;
  ConstraintTable* table_;
  std::map<std::string, const TargetScorer*> scorers_;
  TargetScorer default_scorer_;
  /// Last enacted target per constraint (decision debounce: a broken
  /// constraint whose remedy is already in place is not re-enacted).
  std::map<int, Target> last_enacted_;

  /// Hysteresis state per constraint.
  struct Damper {
    SimTime last_enacted_at = -1;
    SimTime cooldown = 0;  // learned
    std::deque<std::string> recent_targets;
  };
  HysteresisOptions hysteresis_;
  std::map<int, Damper> dampers_;
  uint64_t suppressed_ = 0;

  uint64_t evaluations_ = 0;
  uint64_t triggers_ = 0;
  obs::Counter* obs_evaluations_;
  obs::Counter* obs_firings_;
  obs::Counter* obs_suppressed_;
};

}  // namespace dbm::adapt

#endif  // DBM_ADAPT_SESSION_H_
