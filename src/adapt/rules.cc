#include "adapt/rules.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/strings.h"

namespace dbm::adapt {

std::string Target::resource() const {
  std::vector<std::string> rest(path.begin() + (path.empty() ? 0 : 1),
                                path.end());
  return Join(rest, ".");
}

std::string Target::ToString() const {
  std::string out = Join(path, ".");
  if (!args.empty()) {
    out += "(" + Join(args, ", ") + ")";
  }
  return out;
}

const char* CmpName(Cmp c) {
  switch (c) {
    case Cmp::kGt: return ">";
    case Cmp::kLt: return "<";
    case Cmp::kGe: return ">=";
    case Cmp::kLe: return "<=";
    case Cmp::kEq: return "=";
    case Cmp::kNe: return "!=";
  }
  return "?";
}

bool ApplyCmp(Cmp c, double lhs, double rhs) {
  switch (c) {
    case Cmp::kGt: return lhs > rhs;
    case Cmp::kLt: return lhs < rhs;
    case Cmp::kGe: return lhs >= rhs;
    case Cmp::kLe: return lhs <= rhs;
    case Cmp::kEq: return lhs == rhs;
    case Cmp::kNe: return lhs != rhs;
  }
  return false;
}

const char* ActionKindName(ActionKind k) {
  switch (k) {
    case ActionKind::kPick: return "PICK";
    case ActionKind::kBest: return "BEST";
    case ActionKind::kNearest: return "NEAREST";
    case ActionKind::kSwitch: return "SWITCH";
  }
  return "?";
}

std::string Rule::ToString() const {
  std::ostringstream out;
  auto action_str = [](const Action& a) {
    std::string s;
    if (a.kind != ActionKind::kPick) {
      s += ActionKindName(a.kind);
      s += "(";
    }
    for (size_t i = 0; i < a.targets.size(); ++i) {
      if (i > 0) s += ", ";
      s += a.targets[i].ToString();
    }
    if (a.kind != ActionKind::kPick) s += ")";
    return s;
  };
  if (!trigger.has_value()) {
    out << "Select " << action_str(action);
  } else {
    out << "If ";
    for (size_t i = 0; i < trigger->comparisons.size(); ++i) {
      if (i > 0) {
        out << (trigger->ops[i - 1] == BoolOp::kAnd ? " and " : " or ");
      }
      const Comparison& c = trigger->comparisons[i];
      out << c.metric << " " << CmpName(c.op) << " " << c.value;
      if (c.op2.has_value()) {
        out << " " << CmpName(*c.op2) << " " << *c.value2;
      }
    }
    out << " then " << action_str(action);
    if (else_action.has_value()) out << " else " << action_str(*else_action);
  }
  return out.str();
}

namespace {

/// Tokenizer for the rule notation.
class RuleLexer {
 public:
  explicit RuleLexer(std::string_view src) : src_(src) {}

  struct Tok {
    enum Kind { kWord, kNumber, kCmp, kLParen, kRParen, kComma, kEnd } kind;
    std::string text;
    double number = 0;
    Cmp cmp = Cmp::kGt;
  };

  Result<std::vector<Tok>> Run() {
    std::vector<Tok> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '.') {  // sentence punctuation (Table 2 rows end with '.')
        ++pos_;
        continue;
      }
      if (c == '(') { out.push_back({Tok::kLParen, "("}); ++pos_; continue; }
      if (c == ')') { out.push_back({Tok::kRParen, ")"}); ++pos_; continue; }
      if (c == ',') { out.push_back({Tok::kComma, ","}); ++pos_; continue; }
      if (c == '>' || c == '<' || c == '=' || c == '!') {
        Tok t{Tok::kCmp, std::string(1, c)};
        bool eq = pos_ + 1 < src_.size() && src_[pos_ + 1] == '=';
        switch (c) {
          case '>': t.cmp = eq ? Cmp::kGe : Cmp::kGt; break;
          case '<': t.cmp = eq ? Cmp::kLe : Cmp::kLt; break;
          case '=': t.cmp = Cmp::kEq; break;
          case '!':
            if (!eq) {
              return Status::ParseError("lone '!' in rule");
            }
            t.cmp = Cmp::kNe;
            break;
        }
        pos_ += eq ? 2 : 1;
        out.push_back(t);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          ++pos_;
        }
        // A trailing '.' is sentence punctuation, not part of the number.
        size_t end = pos_;
        if (src_[end - 1] == '.') --end;
        Tok t{Tok::kNumber, std::string(src_.substr(start, end - start))};
        t.number = std::stod(t.text);
        // Swallow a unit suffix: % Kbps Mbps ms s.
        if (pos_ < src_.size() && src_[pos_] == '%') ++pos_;
        out.push_back(t);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_' || src_[pos_] == '-' || src_[pos_] == '.')) {
          ++pos_;
        }
        std::string word(src_.substr(start, pos_ - start));
        // Strip sentence-final '.' ("...videosmall.ram(time parms)." ends
        // with punctuation in the paper's table).
        while (!word.empty() && word.back() == '.') word.pop_back();
        out.push_back({Tok::kWord, std::move(word)});
        continue;
      }
      return Status::ParseError(StrFormat("unexpected character '%c'", c));
    }
    out.push_back({Tok::kEnd, ""});
    return out;
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
};

using Tok = RuleLexer::Tok;

bool IsUnitWord(const std::string& w) {
  return EqualsIgnoreCase(w, "kbps") || EqualsIgnoreCase(w, "mbps") ||
         EqualsIgnoreCase(w, "ms") || EqualsIgnoreCase(w, "s") ||
         EqualsIgnoreCase(w, "percent");
}

class RuleParser {
 public:
  explicit RuleParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<Rule> Run() {
    Rule rule;
    if (!At(Tok::kWord)) {
      return Status::ParseError("rule must start with 'Select' or 'If'");
    }
    std::string head = Take().text;
    if (EqualsIgnoreCase(head, "select")) {
      DBM_ASSIGN_OR_RETURN(rule.action, ParseAction());
    } else if (EqualsIgnoreCase(head, "if")) {
      DBM_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
      rule.trigger = std::move(cond);
      if (!AtWord("then")) {
        return Status::ParseError("expected 'then' after condition");
      }
      Take();
      DBM_ASSIGN_OR_RETURN(rule.action, ParseAction());
      if (AtWord("else")) {
        Take();
        DBM_ASSIGN_OR_RETURN(Action ea, ParseAction());
        rule.else_action = std::move(ea);
      }
    } else {
      return Status::ParseError("rule must start with 'Select' or 'If', got '" +
                                head + "'");
    }
    if (!At(Tok::kEnd)) {
      return Status::ParseError("trailing tokens after rule: '" +
                                Peek().text + "'");
    }
    return rule;
  }

 private:
  const Tok& Peek() const { return toks_[idx_]; }
  bool At(Tok::Kind k) const { return Peek().kind == k; }
  bool AtWord(const char* w) const {
    return At(Tok::kWord) && EqualsIgnoreCase(Peek().text, w);
  }
  Tok Take() { return toks_[idx_++]; }

  Result<Condition> ParseCondition() {
    Condition cond;
    DBM_ASSIGN_OR_RETURN(Comparison first, ParseComparison());
    cond.comparisons.push_back(std::move(first));
    while (AtWord("and") || AtWord("or")) {
      cond.ops.push_back(EqualsIgnoreCase(Take().text, "and") ? BoolOp::kAnd
                                                              : BoolOp::kOr);
      DBM_ASSIGN_OR_RETURN(Comparison next, ParseComparison());
      cond.comparisons.push_back(std::move(next));
    }
    return cond;
  }

  Result<Comparison> ParseComparison() {
    if (!At(Tok::kWord)) {
      return Status::ParseError("expected metric name in condition");
    }
    Comparison c;
    c.metric = Take().text;
    if (!At(Tok::kCmp)) {
      return Status::ParseError("expected comparison operator after metric '" +
                                c.metric + "'");
    }
    c.op = Take().cmp;
    if (!At(Tok::kNumber)) {
      return Status::ParseError("expected number in comparison");
    }
    c.value = Take().number;
    SkipUnit();
    // Banded form: `bandwidth > 30 < 100 Kbps`.
    if (At(Tok::kCmp)) {
      c.op2 = Take().cmp;
      if (!At(Tok::kNumber)) {
        return Status::ParseError("expected number after band operator");
      }
      c.value2 = Take().number;
      SkipUnit();
    }
    return c;
  }

  void SkipUnit() {
    if (At(Tok::kWord) && IsUnitWord(Peek().text)) Take();
  }

  Result<Action> ParseAction() {
    Action action;
    if (!At(Tok::kWord)) {
      return Status::ParseError("expected action");
    }
    const std::string& w = Peek().text;
    if (EqualsIgnoreCase(w, "best")) {
      action.kind = ActionKind::kBest;
    } else if (EqualsIgnoreCase(w, "nearest")) {
      action.kind = ActionKind::kNearest;
    } else if (EqualsIgnoreCase(w, "switch")) {
      action.kind = ActionKind::kSwitch;
    } else {
      action.kind = ActionKind::kPick;
    }
    if (action.kind != ActionKind::kPick) {
      Take();  // the function word
      if (!At(Tok::kLParen)) {
        return Status::ParseError("expected '(' after " +
                                  std::string(ActionKindName(action.kind)));
      }
      // The paper's Table 2 contains `SWITCH ((a, b)` — tolerate doubled
      // opening parens.
      while (At(Tok::kLParen)) Take();
      while (true) {
        DBM_ASSIGN_OR_RETURN(Target t, ParseTarget());
        action.targets.push_back(std::move(t));
        if (At(Tok::kComma)) {
          Take();
          continue;
        }
        break;
      }
      while (At(Tok::kRParen)) Take();
    } else {
      DBM_ASSIGN_OR_RETURN(Target t, ParseTarget());
      action.targets.push_back(std::move(t));
    }
    if (action.targets.empty()) {
      return Status::ParseError("action has no targets");
    }
    return action;
  }

  Result<Target> ParseTarget() {
    if (!At(Tok::kWord)) {
      return Status::ParseError("expected target");
    }
    Target t;
    t.path = Split(Take().text, '.', /*skip_empty=*/true);
    if (At(Tok::kLParen)) {
      Take();
      while (!At(Tok::kRParen)) {
        if (At(Tok::kEnd)) {
          return Status::ParseError("unterminated target argument list");
        }
        if (At(Tok::kComma)) {
          Take();
          continue;
        }
        t.args.push_back(Take().text);
      }
      Take();  // )
    }
    return t;
  }

  std::vector<Tok> toks_;
  size_t idx_ = 0;
};

}  // namespace

Result<Rule> ParseRule(std::string_view text) {
  RuleLexer lexer(text);
  DBM_ASSIGN_OR_RETURN(std::vector<Tok> toks, lexer.Run());
  RuleParser parser(std::move(toks));
  auto rule = parser.Run();
  if (!rule.ok()) {
    return rule.status().WithContext("parsing rule '" + std::string(text) +
                                     "'");
  }
  return rule;
}

bool Evaluate(const Condition& cond, const MetricBus& bus,
              std::vector<std::pair<MetricName, double>>* readings) {
  bool result = false;
  for (size_t i = 0; i < cond.comparisons.size(); ++i) {
    const Comparison& c = cond.comparisons[i];
    auto value = bus.Get(c.metric);
    if (readings != nullptr) {
      readings->emplace_back(c.metric, value.ok() ? *value : 0);
    }
    bool this_one = false;
    if (value.ok()) {
      this_one = ApplyCmp(c.op, *value, c.value);
      if (this_one && c.op2.has_value()) {
        this_one = ApplyCmp(*c.op2, *value, *c.value2);
      }
    }
    if (i == 0) {
      result = this_one;
    } else if (cond.ops[i - 1] == BoolOp::kAnd) {
      result = result && this_one;
    } else {
      result = result || this_one;
    }
  }
  return result;
}

double NumericTargetScorer::Score(const Target& target) const {
  if (target.path.empty()) return 0;
  const std::string& tail = target.path.back();
  char* end = nullptr;
  double value = std::strtod(tail.c_str(), &end);
  // Only a fully-numeric tail counts; "videohalf" must not score as 0-ish
  // garbage from a partial parse.
  return (end != nullptr && *end == '\0' && end != tail.c_str()) ? value : 0;
}

namespace {

Result<Target> ChooseTarget(const Action& action, const TargetScorer& scorer) {
  if (action.targets.empty()) {
    return Status::InvalidArgument("action has no targets");
  }
  switch (action.kind) {
    case ActionKind::kPick:
      return action.targets.front();
    case ActionKind::kBest: {
      const Target* best = &action.targets.front();
      double best_score = scorer.Score(*best);
      for (const Target& t : action.targets) {
        double s = scorer.Score(t);
        if (s > best_score) {
          best = &t;
          best_score = s;
        }
      }
      return *best;
    }
    case ActionKind::kNearest: {
      const Target* best = &action.targets.front();
      double best_d = scorer.Distance(*best);
      for (const Target& t : action.targets) {
        double d = scorer.Distance(t);
        if (d < best_d) {
          best = &t;
          best_d = d;
        }
      }
      return *best;
    }
    case ActionKind::kSwitch: {
      // Move away from the current target to the best alternative.
      std::optional<Target> current = scorer.Current();
      const Target* best = nullptr;
      double best_score = -std::numeric_limits<double>::infinity();
      for (const Target& t : action.targets) {
        if (current.has_value() && t == *current) continue;
        double s = scorer.Score(t);
        if (s > best_score) {
          best = &t;
          best_score = s;
        }
      }
      if (best == nullptr) {
        return Status::Unavailable("SWITCH has no alternative target");
      }
      return *best;
    }
  }
  return Status::Internal("unknown action kind");
}

}  // namespace

Result<Decision> Evaluate(const Rule& rule, const MetricBus& bus,
                          const TargetScorer& scorer) {
  Decision d;
  const Action* act = nullptr;
  if (!rule.trigger.has_value() ||
      Evaluate(*rule.trigger, bus, &d.gauges_read)) {
    d.fired = true;
    act = &rule.action;
  } else if (rule.else_action.has_value()) {
    d.fired = true;
    d.from_else = true;
    act = &*rule.else_action;
  } else {
    return d;  // not fired, nothing chosen
  }
  d.kind = act->kind;
  d.migrate_state = act->kind == ActionKind::kSwitch;
  DBM_ASSIGN_OR_RETURN(Target chosen, ChooseTarget(*act, scorer));
  d.chosen = std::move(chosen);
  return d;
}

}  // namespace dbm::adapt
