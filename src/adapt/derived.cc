#include "adapt/derived.h"

namespace dbm::adapt {

const char* DerivedKindName(DerivedKind k) {
  switch (k) {
    case DerivedKind::kRate: return "rate";
    case DerivedKind::kEwma: return "ewma";
    case DerivedKind::kMean: return "mean";
    case DerivedKind::kP50: return "p50";
    case DerivedKind::kP95: return "p95";
    case DerivedKind::kP99: return "p99";
    case DerivedKind::kMax: return "max";
  }
  return "?";
}

namespace {
double KindQuantile(DerivedKind k) {
  switch (k) {
    case DerivedKind::kP50: return 0.50;
    case DerivedKind::kP95: return 0.95;
    case DerivedKind::kP99: return 0.99;
    default: return 0;
  }
}
bool IsQuantile(DerivedKind k) {
  return k == DerivedKind::kP50 || k == DerivedKind::kP95 ||
         k == DerivedKind::kP99;
}
double SampleMax(const std::vector<obs::TsSample>& samples) {
  double best = 0;
  for (const obs::TsSample& s : samples) {
    if (s.value > best) best = s.value;
  }
  return best;
}
}  // namespace

void DerivedPublisher::Add(const DerivedSpec& spec) {
  Row row;
  row.spec = spec;
  if (row.spec.publish_as.empty()) {
    row.spec.publish_as =
        "derived." + spec.source + "." + DerivedKindName(spec.kind);
  }
  row.out = bus_->GetChannel(row.spec.publish_as);
  if (spec.from_histogram) {
    row.source_hist = &obs::Registry::Default().GetHistogram(spec.source);
    row.hist_window = std::make_unique<obs::HistogramWindow>();
  } else {
    // Bus metrics retain history under the registry-mirror name.
    row.source_series = &store_->Get("bus." + spec.source);
  }
  rows_.push_back(std::move(row));
}

void DerivedPublisher::Tick(SimTime now) {
  ++ticks_;
  for (Row& row : rows_) {
    const SimTime from = now - row.spec.window;
    double value = 0;
    if (row.source_hist != nullptr) {
      row.hist_window->Push(now, *row.source_hist);
      if (IsQuantile(row.spec.kind)) {
        value = row.hist_window->WindowQuantile(from,
                                                KindQuantile(row.spec.kind));
      } else if (row.spec.kind == DerivedKind::kMax) {
        // Log2 buckets retain no per-sample maxima; the top of the
        // window's occupied buckets is the closest honest answer.
        value = row.hist_window->WindowQuantile(from, 1.0);
      } else if (row.spec.kind == DerivedKind::kRate) {
        double dt_s = ToSeconds(row.spec.window);
        value = dt_s > 0 ? static_cast<double>(
                               row.hist_window->WindowCount(from)) /
                               dt_s
                         : 0;
      } else {
        // EWMA/mean over a histogram window are not retained per-sample;
        // publish the windowed mean rank proxy: p50.
        value = row.hist_window->WindowQuantile(from, 0.5);
      }
    } else {
      std::vector<obs::TsSample> window = row.source_series->Window(from);
      switch (row.spec.kind) {
        case DerivedKind::kRate:
          value = obs::RatePerSecond(window);
          break;
        case DerivedKind::kEwma:
          value = obs::Ewma(window, row.spec.alpha);
          break;
        case DerivedKind::kMean:
          value = obs::SampleMean(window);
          break;
        case DerivedKind::kP50:
        case DerivedKind::kP95:
        case DerivedKind::kP99:
          value = obs::SampleQuantile(std::move(window),
                                      KindQuantile(row.spec.kind));
          break;
        case DerivedKind::kMax:
          value = SampleMax(window);
          break;
      }
    }
    bus_->Publish(row.out, value, now);
  }
}

}  // namespace dbm::adapt
