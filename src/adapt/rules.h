// The adaptability-rule / constraint language of Table 2 and §4.
//
// The paper attaches rules to data components and Patia atoms:
//
//   Select BEST(PDA, Laptop)
//   Select NEAREST(PDA, Laptop)
//   If processor-util > 90% then SWITCH(node1.Page1.html, node2.Page1.html)
//   If bandwidth > 30 < 100 Kbps then
//       BEST(node1.videohalf.ram(time parms),
//            node2.videohalf.ram(time parms),
//            node3.videohalf.ram(time parms))
//   else node3.videosmall.ram(time parms)
//
// This module gives that notation a grammar, parser and evaluator:
//
//   rule      := 'Select' action
//              | 'If' condition 'then' action ('else' action)?
//   condition := comparison (('and'|'or') comparison)*
//   comparison:= metric cmp number unit? (cmp number unit?)?   // banded
//   cmp       := '>' | '<' | '>=' | '<=' | '=' | '!='
//   action    := func '(' target (',' target)* ')' | target
//   func      := 'BEST' | 'NEAREST' | 'SWITCH'
//   target    := dotted-ident ( '(' arg (',' arg)* ')' )?
//
// Units (%, Kbps, Mbps, ms, s) are accepted and ignored — the metric's
// publisher fixes the scale. Function names are case-insensitive.
//
// Evaluation is split from *scoring*: BEST and NEAREST consult a
// TargetScorer supplied by the hosting layer (the environment simulator
// scores devices by capacity/load and by proximity), keeping the rule
// engine independent of what the targets denote — pages, devices, codecs
// or data versions.

#ifndef DBM_ADAPT_RULES_H_
#define DBM_ADAPT_RULES_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adapt/metrics.h"
#include "common/result.h"

namespace dbm::adapt {

/// A rule target: "node1.videohalf.ram(time parms)" →
/// path = {node1, videohalf, ram}, args = {"time", "parms"}.
struct Target {
  std::vector<std::string> path;
  std::vector<std::string> args;

  std::string node() const { return path.empty() ? "" : path.front(); }
  /// Path without the leading node, joined with '.'.
  std::string resource() const;
  std::string ToString() const;

  bool operator==(const Target& other) const {
    return path == other.path && args == other.args;
  }
};

enum class Cmp : uint8_t { kGt, kLt, kGe, kLe, kEq, kNe };
const char* CmpName(Cmp c);
bool ApplyCmp(Cmp c, double lhs, double rhs);

/// One comparison, possibly banded: `bandwidth > 30 < 100`.
struct Comparison {
  MetricName metric;
  Cmp op = Cmp::kGt;
  double value = 0;
  std::optional<Cmp> op2;   // second bound of a band
  std::optional<double> value2;
};

enum class BoolOp : uint8_t { kAnd, kOr };

/// `comparison (and|or comparison)*`, evaluated left to right.
struct Condition {
  std::vector<Comparison> comparisons;
  std::vector<BoolOp> ops;  // size = comparisons.size() - 1
};

enum class ActionKind : uint8_t {
  kPick,     // bare target: choose exactly it
  kBest,     // highest-scoring target
  kNearest,  // lowest-distance target
  kSwitch,   // migrate processing (and data) to the best other target
};
const char* ActionKindName(ActionKind k);

struct Action {
  ActionKind kind = ActionKind::kPick;
  std::vector<Target> targets;
};

/// A parsed rule. `trigger` is absent for bare `Select ...` rules (they
/// fire whenever evaluated).
struct Rule {
  std::optional<Condition> trigger;
  Action action;
  std::optional<Action> else_action;

  std::string ToString() const;
};

/// Parses one rule from the Table 2 notation.
Result<Rule> ParseRule(std::string_view text);

/// Scores targets for BEST / NEAREST. Implemented by the hosting layer.
class TargetScorer {
 public:
  virtual ~TargetScorer() = default;
  /// Larger is better (e.g. spare capacity). Default 0: ties broken by
  /// target order, making BEST deterministic even unscored.
  virtual double Score(const Target& target) const {
    (void)target;
    return 0;
  }
  /// Smaller is nearer. Default 0.
  virtual double Distance(const Target& target) const {
    (void)target;
    return 0;
  }
  /// The target currently serving (SWITCH must move *away* from it).
  virtual std::optional<Target> Current() const { return std::nullopt; }
};

/// Scores a target by the numeric value of its final path segment, so
/// quantitative settings can be rule targets: `dop.8` scores 8, `dop.2`
/// scores 2, and BEST/SWITCH prefer the larger setting. Non-numeric
/// tails score 0 (ties then break by target order, as usual). The
/// hosting layer supplies Current() as a callback — typically "the
/// setting in force right now" — so SWITCH moves away from it.
class NumericTargetScorer : public TargetScorer {
 public:
  using CurrentFn = std::function<std::optional<Target>()>;

  explicit NumericTargetScorer(CurrentFn current = nullptr)
      : current_(std::move(current)) {}

  double Score(const Target& target) const override;
  std::optional<Target> Current() const override {
    return current_ ? current_() : std::nullopt;
  }

 private:
  CurrentFn current_;
};

/// The outcome of evaluating a rule.
struct Decision {
  bool fired = false;            // trigger satisfied (or no trigger)
  bool from_else = false;        // else branch selected
  ActionKind kind = ActionKind::kPick;
  std::optional<Target> chosen;  // absent iff !fired and no else branch
  bool migrate_state = false;    // true for SWITCH (paper: save processing
                                 // state as well as data state)
  /// The bus values the trigger evaluation consumed, one entry per
  /// comparison in trigger order (missing metrics read as 0). Empty for
  /// trigger-less Select rules. Audit trails (DecisionRecord) copy these
  /// rather than re-reading the bus after the fact.
  std::vector<std::pair<MetricName, double>> gauges_read;
};

/// Evaluates `cond` against the bus. Missing metrics make the condition
/// false (a constraint on an unknown quantity cannot be reported broken).
/// When `readings` is non-null, appends the value each comparison
/// consumed (missing metrics as 0).
bool Evaluate(const Condition& cond, const MetricBus& bus,
              std::vector<std::pair<MetricName, double>>* readings);
inline bool Evaluate(const Condition& cond, const MetricBus& bus) {
  return Evaluate(cond, bus, nullptr);
}

/// Evaluates a full rule: trigger → action or else-action → target choice.
Result<Decision> Evaluate(const Rule& rule, const MetricBus& bus,
                          const TargetScorer& scorer);

}  // namespace dbm::adapt

#endif  // DBM_ADAPT_RULES_H_
