#include "adapt/session.h"

#include <algorithm>

#include "obs/health.h"
#include "obs/tracectx.h"

namespace dbm::adapt {

Status ConstraintTable::Add(int id, const std::string& subject,
                            std::string_view rule_text, int priority) {
  DBM_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text));
  return Add(Constraint{id, subject, std::move(rule), priority});
}

Status ConstraintTable::Add(Constraint constraint) {
  if (rows_.count(constraint.id) > 0) {
    return Status::AlreadyExists("constraint " +
                                 std::to_string(constraint.id) +
                                 " already present");
  }
  rows_[constraint.id] = std::move(constraint);
  return Status::OK();
}

Status ConstraintTable::Remove(int id) {
  return rows_.erase(id) > 0
             ? Status::OK()
             : Status::NotFound("no constraint " + std::to_string(id));
}

namespace {
void SortByPriority(std::vector<const Constraint*>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Constraint* a, const Constraint* b) {
              return std::tie(a->priority, a->id) <
                     std::tie(b->priority, b->id);
            });
}
}  // namespace

std::vector<const Constraint*> ConstraintTable::ForSubject(
    const std::string& subject) const {
  std::vector<const Constraint*> out;
  for (const auto& [_, c] : rows_) {
    if (c.subject == subject) out.push_back(&c);
  }
  SortByPriority(&out);
  return out;
}

std::vector<const Constraint*> ConstraintTable::All() const {
  std::vector<const Constraint*> out;
  out.reserve(rows_.size());
  for (const auto& [_, c] : rows_) out.push_back(&c);
  SortByPriority(&out);
  return out;
}

const Constraint* ConstraintTable::Find(int id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Status AdaptivityManager::Enact(const AdaptationRequest& request) {
  // The reconfiguration leg of the Fig-1 loop: nested under the rule
  // firing that requested it when one is open on this thread.
  obs::SpanScope enact_span("adapt.enact", "adapt");
  enact_span.SetSimRange(static_cast<uint64_t>(request.at), 0);
  Handler* handler = nullptr;
  auto it = handlers_.find(request.subject);
  if (it != handlers_.end()) {
    handler = &it->second;
  } else {
    it = handlers_.find("");
    if (it != handlers_.end()) handler = &it->second;
  }
  Status outcome;
  if (handler == nullptr) {
    outcome = Status::NotFound("no adaptation handler for subject '" +
                               request.subject + "'");
  } else {
    outcome = (*handler)(request);
  }
  log_.push_back(AdaptationEvent{request, outcome});
  if (outcome.ok()) {
    ++enacted_;
    obs_enacted_->Add(1);
  } else {
    ++failed_;
    obs_failed_->Add(1);
  }
  return outcome;
}

const TargetScorer& SessionManager::ScorerFor(
    const std::string& subject) const {
  auto it = scorers_.find(subject);
  if (it != scorers_.end()) return *it->second;
  it = scorers_.find("");
  if (it != scorers_.end()) return *it->second;
  return default_scorer_;
}

SimTime SessionManager::LearnedCooldown(int constraint_id) const {
  auto it = dampers_.find(constraint_id);
  return it == dampers_.end() ? 0 : it->second.cooldown;
}

Result<int> SessionManager::CheckConstraints(SimTime now) {
  DBM_ASSIGN_OR_RETURN(AdaptivityManager * am,
                       Require<AdaptivityManager>("adaptivity"));
  int enacted = 0;
  for (const Constraint* c : table_->All()) {
    if (!c->rule.trigger.has_value()) continue;  // Select rules: on demand
    ++evaluations_;
    obs_evaluations_->Add(1);
    DBM_ASSIGN_OR_RETURN(Decision d,
                         Evaluate(c->rule, *bus_, ScorerFor(c->subject)));
    if (!d.fired || !d.chosen.has_value()) continue;
    // When an else-branch fires it is the steady state, not a broken
    // constraint; still enact on first sight or change of choice.
    auto last = last_enacted_.find(c->id);
    if (last != last_enacted_.end() && last->second == *d.chosen) continue;

    Damper& damper = dampers_[c->id];
    if (hysteresis_.enabled && damper.last_enacted_at >= 0) {
      SimTime gap = now - damper.last_enacted_at;
      // Quiet period: the learned cooldown decays back toward base.
      if (gap > hysteresis_.decay_after && damper.cooldown > 0) {
        damper.cooldown =
            std::max(hysteresis_.base_cooldown, damper.cooldown / 2);
      }
      SimTime effective =
          std::max(hysteresis_.base_cooldown, damper.cooldown);
      if (gap < effective) {
        ++suppressed_;
        obs_suppressed_->Add(1);
        continue;  // damped: hold the current remedy a little longer
      }
    }

    ++triggers_;
    obs_firings_->Add(1);
    // The decision leg of the Fig-1 loop. The span joins the firing to
    // the triggering request's trace; the DecisionRecord is the audit row
    // — rule text, the gauge readings the evaluation consumed, and the
    // chosen remedy — and is logged even outside any sampled trace
    // (firings are rare; the decision log must not depend on sampling).
    obs::SpanScope firing_span("rule_firing", "adapt.session");
    firing_span.SetSimRange(static_cast<uint64_t>(now), 0);
    obs::DecisionRecord decision_rec;
    const obs::TraceContext& trace_ctx = firing_span.active()
                                             ? firing_span.context()
                                             : obs::CurrentContext();
    decision_rec.trace_id = trace_ctx.trace_id;
    decision_rec.span_id = trace_ctx.span_id;
    decision_rec.at_host_ns = obs::NowHostNs();
    decision_rec.at_sim_us = now;
    decision_rec.constraint_id = c->id;
    decision_rec.SetSubject(c->subject);
    decision_rec.SetRule(c->rule.ToString());
    decision_rec.SetAction(std::string(ActionKindName(d.kind)) + " -> " +
                           d.chosen->ToString());
    for (const auto& [metric, value] : d.gauges_read) {
      decision_rec.AddGauge(metric, value);
    }
    obs::Tracer::Default().Emit(decision_rec);
    AdaptationRequest req{c->id, c->subject, d, now};
    Status s = am->Enact(req);
    if (s.ok()) {
      // End-to-end Fig-1 loop latency for this decision: from the OLDEST
      // gauge reading the evaluation consumed to the enactment, both in
      // simulated time. Joinable to the DecisionRecord above by trace id.
      SimTime latency = 0;
      for (const auto& [metric, value] : d.gauges_read) {
        (void)value;
        auto age = bus_->Age(metric, now);
        if (age.ok() && *age > latency) latency = *age;
      }
      obs::LoopLatencyRecord loop_rec;
      loop_rec.trace_id = trace_ctx.trace_id;
      loop_rec.span_id = trace_ctx.span_id;
      loop_rec.constraint_id = c->id;
      loop_rec.at_sim_us = now;
      loop_rec.latency_us = latency;
      obs::LoopHealth::Default().RecordLoopLatency(loop_rec);
      last_enacted_[c->id] = *d.chosen;
      // The debounce asks "is this constraint's remedy already in
      // place?" — once a DIFFERENT constraint on the same subject
      // enacts, the world has moved and that memory is stale. Without
      // this, a reversible pair (scale up / scale down on one subject)
      // fires each direction exactly once and then deadlocks on its own
      // history.
      for (auto it = last_enacted_.begin(); it != last_enacted_.end();) {
        const Constraint* other = table_->Find(it->first);
        if (it->first != c->id &&
            (other == nullptr || other->subject == c->subject)) {
          it = last_enacted_.erase(it);
        } else {
          ++it;
        }
      }
      ++enacted;
      if (hysteresis_.enabled) {
        damper.last_enacted_at = now;
        damper.recent_targets.push_back(d.chosen->ToString());
        if (damper.recent_targets.size() > hysteresis_.oscillation_window) {
          damper.recent_targets.pop_front();
        }
        // Oscillation = the window alternates between exactly two
        // remedies (A,B,A,B...). Learn a longer cooldown.
        const auto& r = damper.recent_targets;
        if (r.size() >= hysteresis_.oscillation_window) {
          bool alternating = true;
          for (size_t i = 2; i < r.size(); ++i) {
            if (r[i] != r[i - 2]) {
              alternating = false;
              break;
            }
          }
          if (alternating && r.size() >= 2 && r[0] != r[1]) {
            SimTime next =
                damper.cooldown == 0
                    ? hysteresis_.initial_cooldown
                    : static_cast<SimTime>(
                          static_cast<double>(damper.cooldown) *
                          hysteresis_.backoff_factor);
            damper.cooldown = std::min(hysteresis_.max_cooldown, next);
          }
        }
      }
    }
  }
  return enacted;
}

Result<Decision> SessionManager::Decide(const std::string& subject) {
  for (const Constraint* c : table_->ForSubject(subject)) {
    if (c->rule.trigger.has_value()) continue;
    ++evaluations_;
    obs_evaluations_->Add(1);
    return Evaluate(c->rule, *bus_, ScorerFor(subject));
  }
  return Status::NotFound("no Select rule for subject '" + subject + "'");
}

}  // namespace dbm::adapt
