#include "adapt/metrics.h"

#include <algorithm>

namespace dbm::adapt {

const char* GaugeKindName(GaugeKind k) {
  switch (k) {
    case GaugeKind::kLast: return "last";
    case GaugeKind::kEwma: return "ewma";
    case GaugeKind::kWindowMean: return "window-mean";
    case GaugeKind::kWindowMax: return "window-max";
  }
  return "?";
}

Status Gauge::Sample(SimTime t) {
  DBM_ASSIGN_OR_RETURN(Monitor * mon, Require<Monitor>("source"));
  if (channel_ == nullptr) {
    channel_ = bus_->GetChannel(mon->metric());
    health_ = &obs::LoopHealth::Default().Get(mon->metric());
  }
  double raw = mon->Read();
  switch (kind_) {
    case GaugeKind::kLast:
      value_ = raw;
      break;
    case GaugeKind::kEwma:
      value_ = primed_ ? alpha_ * raw + (1.0 - alpha_) * value_ : raw;
      primed_ = true;
      break;
    case GaugeKind::kWindowMean: {
      samples_.push_back(raw);
      if (samples_.size() > window_) samples_.pop_front();
      double sum = 0;
      for (double s : samples_) sum += s;
      value_ = sum / static_cast<double>(samples_.size());
      break;
    }
    case GaugeKind::kWindowMax: {
      samples_.push_back(raw);
      if (samples_.size() > window_) samples_.pop_front();
      value_ = *std::max_element(samples_.begin(), samples_.end());
      break;
    }
  }
  bus_->Publish(channel_, value_, t);
  health_->Sample(t);
  publishes_->Add(1);
  return Status::OK();
}

}  // namespace dbm::adapt
