// Monitors, gauges and the metric bus (left half of Fig 1).
//
// Monitors sample raw environmental data (device load, link bandwidth,
// battery). Gauges aggregate raw monitor output "for more lightweight
// processing" (paper §3) — EWMA or sliding windows — and publish to the
// metric bus, the snapshot of the world the session manager evaluates
// constraints against. All three are themselves components, so the
// adaptation machinery can be reconfigured like everything else.
//
// Bookkeeping is a thin adapter over the obs registry (src/obs): each
// monitor's sample count and gauge's publish count is a registry counter
// ("adapt.monitor.<name>.samples" / "adapt.gauge.<name>.publishes"), and
// every bus value is mirrored into the registry gauge "bus.<metric>" —
// so the whole Fig 1 blackboard shows up in obs::MetricsRelation() and
// the bench sidecars without any extra plumbing.

#ifndef DBM_ADAPT_METRICS_H_
#define DBM_ADAPT_METRICS_H_

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "common/sim_clock.h"
#include "component/component.h"
#include "obs/blackbox/record.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace dbm::adapt {

/// Metric identity, e.g. "laptop.processor-util" or "net.bandwidth".
using MetricName = std::string;

/// The blackboard of current aggregated metric values.
///
/// Each metric has a Channel whose registry mirror ("bus.<metric>" gauge)
/// and retained time series are resolved exactly once, at channel
/// creation. Publishers that keep the Channel* (gauges cache it on first
/// sample) publish with no string concatenation, no map lookup and no
/// allocation — the steady-state Fig-1 loop is a handful of stores.
class MetricBus {
 public:
  struct Channel {
    double value = 0;
    SimTime at = 0;
    uint64_t publishes = 0;
    obs::Gauge* mirror = nullptr;        // registry gauge "bus.<metric>"
    obs::TimeSeries* series = nullptr;   // retained history "bus.<metric>"
    /// The map key (stable: map nodes never move) — what the black-box
    /// tap stamps on durable metric records.
    const MetricName* name = nullptr;
  };

  /// Finds or creates the channel for `metric`, resolving its mirror
  /// gauge and time series. The pointer is stable for the bus's lifetime
  /// (map nodes do not move); resolve once, keep it.
  Channel* GetChannel(const MetricName& metric) {
    auto it = values_.find(metric);
    if (it == values_.end()) {
      it = values_.emplace(metric, Channel{}).first;
      const std::string mirrored = "bus." + metric;
      it->second.mirror = &obs::Registry::Default().GetGauge(mirrored);
      it->second.series = &obs::TimeSeriesStore::Default().Get(mirrored);
      it->second.name = &it->first;
    }
    return &it->second;
  }

  /// Allocation-free steady-state publish through a cached channel.
  void Publish(Channel* channel, double value, SimTime at) {
    channel->value = value;
    channel->at = at;
    ++channel->publishes;
    channel->mirror->Set(value);
    channel->series->Record(at, value);
    if (obs::blackbox::TelemetrySinkInstalled()) {
      // The durable tap. Guarded so the no-black-box cost stays one
      // relaxed load; the sink applies 1-in-N sampling and the record
      // fill is stack-only, keeping the publish path allocation-free.
      obs::blackbox::TelemetryRecord rec;
      rec.kind = static_cast<uint8_t>(obs::blackbox::RecordKind::kMetric);
      rec.trace_id = obs::CurrentContext().trace_id;
      rec.at_us = at;
      rec.a = value;
      rec.b = static_cast<double>(channel->publishes);
      if (channel->name != nullptr) rec.SetName(*channel->name);
      obs::blackbox::Tap(rec);
    }
  }

  void Publish(const MetricName& metric, double value, SimTime at) {
    Publish(GetChannel(metric), value, at);
  }

  Result<double> Get(const MetricName& metric) const {
    auto it = values_.find(metric);
    if (it == values_.end()) {
      return Status::NotFound("no metric '" + metric + "' published");
    }
    return it->second.value;
  }

  double GetOr(const MetricName& metric, double fallback) const {
    auto it = values_.find(metric);
    return it == values_.end() ? fallback : it->second.value;
  }

  Result<SimTime> Age(const MetricName& metric, SimTime now) const {
    auto it = values_.find(metric);
    if (it == values_.end()) {
      return Status::NotFound("no metric '" + metric + "' published");
    }
    return now - it->second.at;
  }

  size_t size() const { return values_.size(); }
  const std::map<MetricName, double> SnapshotValues() const {
    std::map<MetricName, double> out;
    for (const auto& [k, v] : values_) out[k] = v.value;
    return out;
  }

 private:
  std::map<MetricName, Channel> values_;
};

/// A monitor component: produces raw samples of one metric.
class Monitor : public component::Component {
 public:
  Monitor(std::string name, MetricName metric)
      : Component(std::move(name), "monitor"), metric_(std::move(metric)) {
    samples_ = &obs::Registry::Default().GetCounter(
        "adapt.monitor." + this->name() + ".samples");
    samples_base_ = samples_->value();
  }

  const MetricName& metric() const { return metric_; }

  /// One raw sample of the monitored quantity.
  virtual double Read() = 0;

  /// Samples taken by THIS instance (the registry counter is shared by
  /// same-named instances; the construction-time baseline isolates us).
  uint64_t sample_count() const { return samples_->value() - samples_base_; }

 protected:
  void CountSample() { samples_->Add(1); }

 private:
  MetricName metric_;
  obs::Counter* samples_;
  uint64_t samples_base_ = 0;
};

/// Monitor backed by a sampling function (the usual adapter onto the
/// environment simulator).
class CallbackMonitor : public Monitor {
 public:
  CallbackMonitor(std::string name, MetricName metric,
                  std::function<double()> fn)
      : Monitor(std::move(name), std::move(metric)), fn_(std::move(fn)) {}

  double Read() override {
    CountSample();
    return fn_();
  }

 private:
  std::function<double()> fn_;
};

/// Aggregation policies for gauges.
enum class GaugeKind : uint8_t {
  kLast,        // pass-through (the "no gauge" ablation baseline)
  kEwma,        // exponentially weighted moving average
  kWindowMean,  // mean over the last N samples
  kWindowMax,   // max over the last N samples (for peak detection)
};

const char* GaugeKindName(GaugeKind k);

/// A gauge component: pulls its monitor port, aggregates, publishes.
class Gauge : public component::Component {
 public:
  Gauge(std::string name, GaugeKind kind, MetricBus* bus,
        double ewma_alpha = 0.3, size_t window = 8)
      : Component(std::move(name), "gauge"),
        kind_(kind),
        bus_(bus),
        alpha_(ewma_alpha),
        window_(window) {
    DeclarePort("source", "monitor");
    publishes_ = &obs::Registry::Default().GetCounter(
        "adapt.gauge." + this->name() + ".publishes");
    publishes_base_ = publishes_->value();
  }

  /// Samples the monitor, folds into the aggregate, publishes at time `t`.
  Status Sample(SimTime t);

  double value() const { return value_; }
  GaugeKind kind() const { return kind_; }
  uint64_t publish_count() const {
    return publishes_->value() - publishes_base_;
  }

 private:
  GaugeKind kind_;
  MetricBus* bus_;
  double alpha_;
  size_t window_;
  std::deque<double> samples_;
  double value_ = 0.0;
  bool primed_ = false;
  obs::Counter* publishes_;
  uint64_t publishes_base_ = 0;
  /// Cached on the first Sample (the metric name comes from the monitor,
  /// which binds to the "source" port after construction). Steady-state
  /// publishes then do no string work, no map lookup and no allocation.
  MetricBus::Channel* channel_ = nullptr;
  obs::LoopHealth::Tracker* health_ = nullptr;
};

}  // namespace dbm::adapt

#endif  // DBM_ADAPT_METRICS_H_
