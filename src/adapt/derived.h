// Derived windowed gauges: trends published back onto the metric bus.
//
// Table-2 rules evaluate instantaneous bus values; the paper's gauges,
// though, are meant to aggregate "for more lightweight processing" (§3) —
// and a threshold on a point read is exactly the kind of trigger that
// flaps. The DerivedPublisher computes windowed statistics over retained
// history (obs/timeseries) and publishes them as first-class bus metrics
// named `derived.<source>.<stat>` — e.g. "derived.serve-latency.p95",
// "derived.patia.requests.rate" — so a rule can say
//
//   If derived.serve-latency.p95 > 40000 then SWITCH(...)
//
// and trigger on the trend. Sources are either bus metrics (rate, ewma,
// mean and percentiles over the retained per-publish samples) or registry
// histograms (windowed p50/p95/p99 from cumulative bucket-snapshot
// differences, plus rate from the cumulative count).

#ifndef DBM_ADAPT_DERIVED_H_
#define DBM_ADAPT_DERIVED_H_

#include <memory>
#include <string>
#include <vector>

#include "adapt/metrics.h"
#include "obs/timeseries.h"

namespace dbm::adapt {

enum class DerivedKind : uint8_t {
  kRate,  // change per simulated second over the window
  kEwma,  // EWMA over the window's samples
  kMean,  // mean over the window's samples
  kP50,
  kP95,
  kP99,
  kMax,   // largest sample in the window (queue-depth peaks)
};

const char* DerivedKindName(DerivedKind k);

struct DerivedSpec {
  /// Bus metric name ("processor-util") or, with from_histogram set, a
  /// registry histogram name ("patia.request.latency_us").
  std::string source;
  DerivedKind kind = DerivedKind::kEwma;
  /// Lookback window in simulated time.
  SimTime window = Seconds(10);
  double alpha = 0.3;  // kEwma only
  /// Percentiles/rates computed from a registry histogram's cumulative
  /// bucket snapshots instead of per-publish bus samples.
  bool from_histogram = false;
  /// Bus name override for the published gauge; defaults to
  /// "derived.<source>.<stat>".
  std::string publish_as;
};

/// Computes and publishes one derived gauge per spec on every Tick.
/// Lives on the simulation thread (Patia's Tick, a scenario driver, or a
/// bench loop); not thread-safe.
class DerivedPublisher {
 public:
  explicit DerivedPublisher(MetricBus* bus,
                            obs::TimeSeriesStore* store =
                                &obs::TimeSeriesStore::Default())
      : bus_(bus), store_(store) {}

  /// Registers a derived gauge. Channels and histogram windows are
  /// resolved here, once — Tick stays allocation-light.
  void Add(const DerivedSpec& spec);

  /// Recomputes every derived gauge over [now - window, now] and
  /// publishes it at `now`.
  void Tick(SimTime now);

  size_t size() const { return rows_.size(); }
  uint64_t ticks() const { return ticks_; }

 private:
  struct Row {
    DerivedSpec spec;
    MetricBus::Channel* out = nullptr;          // publish target
    obs::TimeSeries* source_series = nullptr;   // bus-sourced stats
    obs::Histogram* source_hist = nullptr;      // histogram-sourced stats
    std::unique_ptr<obs::HistogramWindow> hist_window;
  };

  MetricBus* bus_;
  obs::TimeSeriesStore* store_;
  std::vector<Row> rows_;
  uint64_t ticks_ = 0;
};

}  // namespace dbm::adapt

#endif  // DBM_ADAPT_DERIVED_H_
