// Per-interface circuit breaker for supervised invocation.
//
// Classic three-state machine: Closed (calls flow; consecutive failures
// counted) → Open after `failure_threshold` consecutive failures (calls
// rejected without touching the callee) → HalfOpen once `cooldown` time
// units pass (exactly one probe call is admitted) → Closed again after
// `successes_to_close` probe successes, or straight back to Open on a
// probe failure.
//
// The time base is an abstract int64 — the ORB drives it with ledger
// cycles, tests with plain integers — so the state machine is unit-
// testable without a simulator. Transitions are reported through an
// optional callback (the ORB turns them into metrics and FaultLog
// entries); the breaker itself stays dependency-free.

#ifndef DBM_FAULT_BREAKER_H_
#define DBM_FAULT_BREAKER_H_

#include <cstdint>
#include <functional>

namespace dbm::fault {

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  struct Options {
    int failure_threshold = 3;   // consecutive failures to trip open
    int64_t cooldown = 1000;     // open → half-open after this long
    int successes_to_close = 1;  // half-open probes needed to re-close
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  using TransitionFn = std::function<void(State from, State to, int64_t now)>;
  void set_on_transition(TransitionFn fn) { on_transition_ = std::move(fn); }

  /// Admission control, called before each attempt. Open breakers admit
  /// nothing until the cooldown elapses, then flip to half-open and admit
  /// exactly one in-flight probe.
  bool Allow(int64_t now) {
    if (state_ == State::kClosed) return true;
    if (state_ == State::kOpen) {
      if (now - opened_at_ < options_.cooldown) return false;
      Transition(State::kHalfOpen, now);
      probe_in_flight_ = true;
      return true;
    }
    // Half-open: one probe at a time.
    if (probe_in_flight_) return false;
    probe_in_flight_ = true;
    return true;
  }

  void RecordSuccess(int64_t now) {
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen) {
      probe_in_flight_ = false;
      if (++probe_successes_ >= options_.successes_to_close) {
        Transition(State::kClosed, now);
      }
    }
  }

  void RecordFailure(int64_t now) {
    if (state_ == State::kHalfOpen) {
      // A failed probe re-trips immediately; the cooldown restarts.
      probe_in_flight_ = false;
      Transition(State::kOpen, now);
      opened_at_ = now;
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= options_.failure_threshold) {
      Transition(State::kOpen, now);
      opened_at_ = now;
    }
  }

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t trips() const { return trips_; }
  const Options& options() const { return options_; }

  static const char* StateName(State s) {
    switch (s) {
      case State::kClosed: return "closed";
      case State::kHalfOpen: return "half-open";
      case State::kOpen: return "open";
    }
    return "?";
  }

 private:
  void Transition(State to, int64_t now) {
    if (to == state_) return;
    State from = state_;
    state_ = to;
    if (to == State::kOpen) ++trips_;
    if (to == State::kHalfOpen) probe_successes_ = 0;
    if (to == State::kClosed) consecutive_failures_ = 0;
    if (on_transition_) on_transition_(from, to, now);
  }

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t opened_at_ = 0;
  uint64_t trips_ = 0;
  TransitionFn on_transition_;
};

}  // namespace dbm::fault

#endif  // DBM_FAULT_BREAKER_H_
