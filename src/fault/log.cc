#include "fault/log.h"

#include "common/json.h"
#include "obs/blackbox/record.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace dbm::fault {

const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kInjected: return "injected";
    case FaultEventKind::kBreaker: return "breaker";
    case FaultEventKind::kRecovery: return "recovery";
    case FaultEventKind::kDegraded: return "degraded";
  }
  return "?";
}

FaultLog& FaultLog::Default() {
  static FaultLog* log = [] {
    auto* l = new FaultLog();
    // Failure history belongs in the post-mortem too: the flight record
    // gains a "faults" section the moment the fault plane is in use.
    obs::RegisterFlightSection("faults", [l] {
      std::string out = "[";
      bool first = true;
      for (const FaultEvent& e : l->Snapshot()) {
        if (!first) out += ",";
        first = false;
        out += "{\"trace_id\":\"" + e.trace_id.ToHex() + "\"";
        out += ",\"span_id\":" + std::to_string(e.span_id);
        out += ",\"at_sim_us\":" + std::to_string(e.at_sim_us);
        out += ",\"kind\":\"" + std::string(FaultEventKindName(e.kind)) + "\"";
        out += ",\"point\":\"" + JsonEscape(e.point) + "\"";
        out += ",\"detail\":\"" + JsonEscape(e.detail) + "\"}";
      }
      out += "]";
      return out;
    });
    return l;
  }();
  return *log;
}

void Record(FaultEventKind kind, std::string_view point,
            std::string_view detail, SimTime at_sim_us) {
  // Handles resolve once; Record is called from fault paths that are
  // already off the common case, so a static-local lookup is fine.
  static obs::Counter* counters[4] = {
      &obs::Registry::Default().GetCounter("fault.injected"),
      &obs::Registry::Default().GetCounter("fault.breaker_transitions"),
      &obs::Registry::Default().GetCounter("fault.recoveries"),
      &obs::Registry::Default().GetCounter("fault.degraded"),
  };
  counters[static_cast<uint8_t>(kind)]->Add(1);

  FaultEvent event;
  const obs::TraceContext& ctx = obs::CurrentContext();
  event.trace_id = ctx.trace_id;
  event.span_id = ctx.span_id;
  event.at_sim_us = at_sim_us;
  event.kind = kind;
  event.SetPoint(point);
  event.SetDetail(detail);
  FaultLog::Default().Append(event);

  if (obs::blackbox::TelemetrySinkInstalled()) {
    obs::blackbox::TelemetryRecord rec;
    rec.kind = static_cast<uint8_t>(obs::blackbox::RecordKind::kFault);
    rec.trace_id = ctx.trace_id;
    rec.at_us = at_sim_us;
    rec.a = static_cast<double>(static_cast<uint8_t>(kind));
    rec.SetName(point);
    rec.SetText(detail);
    rec.SetExtra(FaultEventKindName(kind));
    obs::blackbox::Tap(rec);
  }
}

}  // namespace dbm::fault
