// The fault log: every injected fault, breaker transition, recovery and
// load-shed as a queryable record.
//
// DBOS's argument (PAPERS.md) is that failure history belongs in the
// data plane where the rules can see it. Records are POD and land in
// the same lock-free head-keeping TraceRing the tracer uses; each one
// captures the thread's current trace context, so a fault is joinable
// to the DecisionRecord of the adaptation it triggered by trace id —
// the Observatory serves the ring at /obs/faults and as the `faults`
// relation.

#ifndef DBM_FAULT_LOG_H_
#define DBM_FAULT_LOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "obs/tracectx.h"

namespace dbm::fault {

enum class FaultEventKind : uint8_t {
  kInjected = 0,  // the injector fired at a fault point
  kBreaker = 1,   // a circuit breaker changed state
  kRecovery = 2,  // a replay / rollback / resume healed the failure
  kDegraded = 3,  // load shed: a degraded variant served instead of 503
};
const char* FaultEventKindName(FaultEventKind kind);

/// One fault-plane event. POD (fixed-size text) for tear-free ring
/// publication, like SpanRecord/DecisionRecord.
struct FaultEvent {
  obs::TraceId trace_id;  // invalid when outside any sampled request
  uint64_t span_id = 0;
  int64_t at_sim_us = 0;
  FaultEventKind kind = FaultEventKind::kInjected;
  char point[obs::kTraceNameMax] = {};    // fault point / breaker name
  char detail[obs::kTraceTextMax] = {};   // human-readable what-happened

  void SetPoint(std::string_view p) {
    obs::internal::CopyTruncated(point, sizeof(point), p);
  }
  void SetDetail(std::string_view d) {
    obs::internal::CopyTruncated(detail, sizeof(detail), d);
  }
};

/// Process-wide bounded fault log. Same epoch discipline as the tracer:
/// Append is wait-free, Clear only at quiescent points.
class FaultLog {
 public:
  explicit FaultLog(size_t capacity = 1 << 12) : ring_(capacity) {}

  static FaultLog& Default();

  void Append(const FaultEvent& event) { ring_.Append(event); }
  std::vector<FaultEvent> Snapshot() const { return ring_.Snapshot(); }
  uint64_t dropped() const { return ring_.dropped(); }
  uint64_t size() const { return ring_.size(); }
  void Clear() { ring_.Clear(); }

 private:
  obs::TraceRing<FaultEvent> ring_;
};

/// Builds and appends an event to the default log, stamping the calling
/// thread's trace context — the one-liner instrumented sites use. Also
/// bumps the matching "fault.<kind>" counter in the default registry.
void Record(FaultEventKind kind, std::string_view point,
            std::string_view detail, SimTime at_sim_us);

}  // namespace dbm::fault

#endif  // DBM_FAULT_LOG_H_
