#include "fault/recovery.h"

#include "fault/log.h"

namespace dbm::fault {

Status StateManager::Checkpoint(const std::string& stream,
                                const SafePoint& sp) {
  auto it = latest_.find(stream);
  if (it != latest_.end() && sp.sequence < it->second.sequence) {
    return Status::FailedPrecondition(
        "safe point " + std::to_string(sp.sequence) + " of '" + stream +
        "' is older than checkpointed " +
        std::to_string(it->second.sequence));
  }
  latest_[stream] = sp;
  ++checkpoints_;
  return Status::OK();
}

Result<SafePoint> StateManager::Latest(const std::string& stream) const {
  auto it = latest_.find(stream);
  if (it == latest_.end()) {
    return Status::NotFound("no safe point for stream '" + stream + "'");
  }
  return it->second;
}

void StateManager::Drop(const std::string& stream) { latest_.erase(stream); }

void StateManager::CountReplay(const std::string& stream) {
  ++replays_;
  auto it = latest_.find(stream);
  Record(FaultEventKind::kRecovery, "stream." + stream,
         "replay from safe point " +
             (it != latest_.end()
                  ? std::to_string(it->second.sequence) + " at row " +
                        std::to_string(it->second.position)
                  : std::string("0 (stream start)")),
         it != latest_.end() ? it->second.at : 0);
}

}  // namespace dbm::fault
