// Safe-point checkpoint/replay for streams and operators.
//
// §4: "the original query plan included safe points which allow the
// system to stop streaming at a safe time and continue the other
// version's stream". PRs so far used safe points only to switch codecs;
// this StateManager makes them recovery points: a stream checkpoints
// its cursor (and whatever opaque state it needs — current codec, stats)
// at every safe point, and after an injected crash or a mid-switchover
// partition it replays from the latest checkpoint. Because a chunk is
// only checkpointed *after* its delivery completes, replay re-sends the
// interrupted chunk and nothing downstream of a safe point is ever lost
// (at-least-once per chunk, exactly-once per counted row).
//
// Distinct from adapt::StateManager, which moves component StateBlobs
// between versions during a swap; this one is keyed by stream and holds
// positions. Lomet's "unbundled" recovery component, in 150 lines.

#ifndef DBM_FAULT_RECOVERY_H_
#define DBM_FAULT_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/sim_clock.h"

namespace dbm::fault {

/// One checkpoint: where the stream may safely resume, plus opaque
/// serialized operator state (the sensor stream stores its codec here so
/// replayed chunks are byte-identical to the originals).
struct SafePoint {
  uint64_t sequence = 0;  // monotonic safe-point number within the stream
  uint64_t position = 0;  // resume cursor (row index for sensor streams)
  SimTime at = 0;         // sim time the checkpoint was taken
  std::string state;      // opaque operator state
};

class StateManager {
 public:
  /// Records `sp` as the latest safe point of `stream` (sequence must not
  /// go backwards; equal re-checkpoints are idempotent).
  Status Checkpoint(const std::string& stream, const SafePoint& sp);

  /// The latest checkpoint, or NotFound if the stream never reached one.
  Result<SafePoint> Latest(const std::string& stream) const;

  /// Forgets a completed stream's checkpoints.
  void Drop(const std::string& stream);

  /// Called by the recovering party when it replays from a checkpoint.
  void CountReplay(const std::string& stream);

  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t replays() const { return replays_; }

 private:
  std::map<std::string, SafePoint> latest_;
  uint64_t checkpoints_ = 0;
  uint64_t replays_ = 0;
};

}  // namespace dbm::fault

#endif  // DBM_FAULT_RECOVERY_H_
