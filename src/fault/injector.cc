#include "fault/injector.h"

#include <cstdio>
#include <cstdlib>

#include "common/result.h"
#include "common/strings.h"

namespace dbm::fault {

namespace {

/// FNV-1a, not std::hash: point seeds must be identical across
/// platforms or "deterministic under a fixed seed" is a lie.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Result<FaultKind> ParseKind(std::string_view word) {
  if (word == "error") return FaultKind::kError;
  if (word == "crash") return FaultKind::kCrash;
  if (word == "hang") return FaultKind::kHang;
  if (word == "latency") return FaultKind::kLatency;
  if (word == "flap") return FaultKind::kFlap;
  if (word == "partition") return FaultKind::kPartition;
  return Status::ParseError("unknown fault kind '" + std::string(word) +
                            "' (error|crash|hang|latency|flap|partition)");
}

bool IsProbabilistic(FaultKind kind) {
  return kind == FaultKind::kError || kind == FaultKind::kCrash ||
         kind == FaultKind::kHang;
}

/// "0.01" | "1%" for probabilities; "40" | "40cy" | "200us" | "5ms" |
/// "1s" for durations (bare numbers pass through unscaled: cycles at ORB
/// points, µs elsewhere — the site's time base decides).
Status ParseValue(std::string_view text, FaultRule* rule) {
  if (text.empty()) {
    return Status::ParseError("empty value after '@'");
  }
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  size_t consumed = static_cast<size_t>(end - buf.c_str());
  std::string_view unit = text.substr(consumed);
  if (IsProbabilistic(rule->kind)) {
    if (unit == "%") v /= 100.0;
    else if (!unit.empty()) {
      return Status::ParseError("probability takes no unit '" +
                                std::string(unit) + "'");
    }
    if (v < 0.0 || v > 1.0) {
      return Status::ParseError("probability out of [0,1]: " +
                                std::string(text));
    }
    rule->probability = v;
    return Status::OK();
  }
  int64_t scale = 1;
  if (unit == "us" || unit == "cy" || unit.empty()) scale = 1;
  else if (unit == "ms") scale = 1000;
  else if (unit == "s") scale = 1000 * 1000;
  else {
    return Status::ParseError("unknown unit '" + std::string(unit) +
                              "' (us|ms|s|cy)");
  }
  rule->value = static_cast<int64_t>(v * static_cast<double>(scale));
  if (rule->value < 0) {
    return Status::ParseError("negative duration: " + std::string(text));
  }
  return Status::OK();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kPartition: return "partition";
  }
  return "?";
}

Status ParseFaultSpec(std::string_view spec,
                      std::vector<std::pair<std::string, FaultRule>>* out) {
  for (const std::string& entry :
       Split(std::string(Trim(spec)), ';', /*skip_empty=*/true)) {
    std::string_view e = Trim(entry);
    if (e.empty()) continue;
    size_t colon = e.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("expected 'point:kind[@value]', got '" +
                                std::string(e) + "'");
    }
    std::string point(Trim(e.substr(0, colon)));
    std::string_view rest = e.substr(colon + 1);
    size_t at = rest.find('@');
    FaultRule rule;
    DBM_ASSIGN_OR_RETURN(
        rule.kind, ParseKind(Trim(at == std::string_view::npos
                                      ? rest
                                      : rest.substr(0, at))));
    if (at != std::string_view::npos) {
      DBM_RETURN_NOT_OK(ParseValue(Trim(rest.substr(at + 1)), &rule));
    } else if (!IsProbabilistic(rule.kind)) {
      return Status::ParseError(std::string(FaultKindName(rule.kind)) +
                                " needs '@value'");
    }
    out->emplace_back(std::move(point), rule);
  }
  return Status::OK();
}

Decision Point::Decide() {
  Decision d;
  if (!armed()) return d;
  for (const FaultRule& r : rules_) {
    switch (r.kind) {
      case FaultKind::kError:
        if (rng_.Bernoulli(r.probability)) d.error = true;
        break;
      case FaultKind::kCrash:
        if (rng_.Bernoulli(r.probability)) d.crash = true;
        break;
      case FaultKind::kHang:
        if (rng_.Bernoulli(r.probability)) d.hang = true;
        break;
      case FaultKind::kLatency:
        d.latency += r.value;
        break;
      case FaultKind::kFlap:
      case FaultKind::kPartition:
        break;  // time-windowed; see DownAt
    }
  }
  return d;
}

bool Point::DownAt(SimTime now) const {
  if (!armed()) return false;
  for (const FaultRule& r : rules_) {
    if (r.kind == FaultKind::kFlap && r.value > 0 &&
        (now / r.value) % 2 == 1) {
      return true;
    }
    if (r.kind == FaultKind::kPartition && now >= r.value) return true;
  }
  return false;
}

void Point::Arm(const FaultRule& rule, uint64_t point_seed) {
  if (rules_.empty()) rng_.Seed(point_seed);
  rules_.push_back(rule);
  armed_.store(true, std::memory_order_relaxed);
}

void Point::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
}

Injector& Injector::Default() {
  static Injector* injector = [] {
    auto* inj = new Injector();
    const char* spec = std::getenv("DBM_FAULT_SPEC");
    if (spec != nullptr && spec[0] != '\0') {
      const char* seed_env = std::getenv("DBM_FAULT_SEED");
      uint64_t seed =
          seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 1;
      // A malformed env spec must not silently disable chaos runs.
      Status s = inj->Configure(spec, seed);
      if (!s.ok()) {
        std::fprintf(stderr, "DBM_FAULT_SPEC rejected: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
    }
    return inj;
  }();
  return *injector;
}

Status Injector::Configure(std::string_view spec, uint64_t seed) {
  std::vector<std::pair<std::string, FaultRule>> parsed;
  DBM_RETURN_NOT_OK(ParseFaultSpec(spec, &parsed));
  Reset();
  seed_ = seed;
  spec_ = std::string(Trim(spec));
  for (const auto& [name, rule] : parsed) {
    GetPoint(name)->Arm(rule, seed ^ Fnv1a(name));
  }
  enabled_.store(!parsed.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Injector::Reset() {
  enabled_.store(false, std::memory_order_relaxed);
  for (auto& [_, point] : points_) point->Disarm();
  spec_.clear();
}

Point* Injector::GetPoint(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<Point>(name)).first;
  }
  return it->second.get();
}

}  // namespace dbm::fault
