// Deterministic, seed-driven fault injection.
//
// The paper's scenarios presuppose surviving failure — streams replayed
// from safe points, components swapped mid-query — but a simulator with
// no failure model can never exercise those paths. The Injector is a
// passive decision oracle: instrumented sites ("fault points") ask it
// whether a fault fires *here, now*, and act the consequence out
// themselves (the ORB fails a call, the network treats a link as down,
// the stream crashes). Faults are configured per run from a small spec
// string, e.g.
//
//   orb.invoke:error@0.01;net.wireless:flap@5ms;net.stream:crash@0.02
//
// Grammar: `point:kind[@value]` joined by ';'. Kinds and their value:
//   error@P      probabilistic failure, P in [0,1] (or "1%")
//   crash@P      probabilistic component crash (the target dies, not
//                just the call)
//   hang@P       probabilistic hang — the call never returns; a
//                supervising deadline converts it to DeadlineExceeded
//   latency@D    added delay on EVERY pass through the point; D is in
//                cycles at ORB points ("40" / "40cy"), simulated time
//                elsewhere ("200us", "5ms", "1s"; bare number = µs)
//   flap@D       time-windowed link outage: down during every odd
//                window of length D (deterministic in sim time)
//   partition@T  link permanently down from sim time T onward
//
// Determinism: each point owns an Rng seeded from (run seed ⊕
// FNV-1a(point name)), so decision sequences are reproducible per point
// regardless of the order points are first touched, and two runs with
// the same seed and spec inject byte-identical fault schedules.
//
// The process-wide Default() injector reads DBM_FAULT_SPEC /
// DBM_FAULT_SEED from the environment on first use — how the chaos CI
// job arms whole test binaries without touching their code. Disabled
// (the usual case) a fault-point check is one relaxed atomic load.

#ifndef DBM_FAULT_INJECTOR_H_
#define DBM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace dbm::fault {

enum class FaultKind : uint8_t {
  kError,
  kCrash,
  kHang,
  kLatency,
  kFlap,
  kPartition,
};
const char* FaultKindName(FaultKind kind);

/// One armed rule at a point, parsed from `kind@value`.
struct FaultRule {
  FaultKind kind;
  double probability = 1.0;  // error / crash / hang
  int64_t value = 0;         // latency (cycles or µs), flap window, or
                             // partition start (µs)
};

/// The per-call verdict a site acts out. `latency` accumulates across
/// rules; error/crash/hang are mutually exclusive with crash strongest.
struct Decision {
  bool error = false;
  bool crash = false;
  bool hang = false;
  int64_t latency = 0;

  bool any() const { return error || crash || hang || latency != 0; }
};

/// A named fault point. Sites resolve the handle once (like metric
/// handles) and check `armed()` on the hot path.
class Point {
 public:
  explicit Point(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// One relaxed load; false whenever no rule is armed here.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Draws the per-call verdict (advances this point's Rng — call once
  /// per traversal). Cheap no-op when unarmed.
  Decision Decide();

  /// Time-windowed verdict for flap/partition rules: is the guarded
  /// resource down at `now`? Does not consume randomness.
  bool DownAt(SimTime now) const;

  // Configuration plumbing (Injector only).
  void Arm(const FaultRule& rule, uint64_t point_seed);
  void Disarm();
  const std::vector<FaultRule>& rules() const { return rules_; }

 private:
  std::string name_;
  std::atomic<bool> armed_{false};
  std::vector<FaultRule> rules_;
  Rng rng_;
};

/// The per-run fault schedule. Configure() replaces it wholesale;
/// Reset() disarms everything. Point handles stay valid across both
/// (they are never deallocated), mirroring the metric-handle discipline.
class Injector {
 public:
  Injector() = default;

  /// The process-wide injector every built-in fault point consults.
  /// First use reads DBM_FAULT_SPEC / DBM_FAULT_SEED from the
  /// environment (unset → disabled).
  static Injector& Default();

  /// Parses `spec` and arms the named points under `seed`. An empty
  /// spec disarms everything (equivalent to Reset).
  Status Configure(std::string_view spec, uint64_t seed);

  /// Disarms every point; handles remain valid.
  void Reset();

  /// True when any point is armed — the coarse whole-run check.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resolves (creating if needed) the handle for `name`. Resolve once,
  /// keep the pointer; never invalidated.
  Point* GetPoint(const std::string& name);

  const std::string& spec() const { return spec_; }
  uint64_t seed() const { return seed_; }

 private:
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<Point>> points_;
  std::string spec_;
  uint64_t seed_ = 0;
};

/// Parses one spec string into (point, rule) pairs without arming
/// anything — exposed for tests and tools.
Status ParseFaultSpec(std::string_view spec,
                      std::vector<std::pair<std::string, FaultRule>>* out);

}  // namespace dbm::fault

#endif  // DBM_FAULT_INJECTOR_H_
