#include "data/version.h"

namespace dbm::data {

const char* VersionKindName(VersionKind k) {
  switch (k) {
    case VersionKind::kPrimary: return "primary";
    case VersionKind::kReplica: return "replica";
    case VersionKind::kCompressed: return "compressed";
    case VersionKind::kStale: return "stale";
    case VersionKind::kSummary: return "summary";
  }
  return "?";
}

Result<Relation> MaterializedVersion::Open() const {
  DBM_ASSIGN_OR_RETURN(const Codec* codec, FindCodec(descriptor.codec));
  DBM_ASSIGN_OR_RETURN(Bytes raw, codec->Decode(payload));
  return Relation::Deserialize(raw);
}

Result<MaterializedVersion> Materialize(const Relation& primary,
                                        VersionKind kind,
                                        const std::string& location,
                                        SimTime as_of, double quality,
                                        const std::string& codec_name,
                                        uint64_t seed) {
  MaterializedVersion out;
  out.descriptor.kind = kind;
  out.descriptor.location = location;
  out.descriptor.as_of = as_of;
  out.descriptor.quality = kind == VersionKind::kSummary ? quality : 1.0;
  out.descriptor.codec = "identity";
  out.descriptor.id = primary.name() + "@" + location + "#" +
                      VersionKindName(kind);

  switch (kind) {
    case VersionKind::kPrimary:
    case VersionKind::kReplica:
    case VersionKind::kStale:
      out.payload = primary.Serialize();
      break;
    case VersionKind::kCompressed: {
      DBM_ASSIGN_OR_RETURN(const Codec* codec, FindCodec(codec_name));
      out.payload = codec->Encode(primary.Serialize());
      out.descriptor.codec = codec_name;
      break;
    }
    case VersionKind::kSummary: {
      Relation sample = primary.Sample(quality, seed);
      out.payload = sample.Serialize();
      break;
    }
  }
  out.descriptor.payload_bytes = out.payload.size();
  return out;
}

Status VersionStore::Put(MaterializedVersion version) {
  const std::string& id = version.descriptor.id;
  if (versions_.count(id) > 0) {
    return Status::AlreadyExists("version '" + id + "' already stored");
  }
  versions_.emplace(id, std::move(version));
  return Status::OK();
}

Result<const MaterializedVersion*> VersionStore::Get(
    const std::string& id) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("no version '" + id + "'");
  }
  return &it->second;
}

Status VersionStore::Drop(const std::string& id) {
  return versions_.erase(id) > 0
             ? Status::OK()
             : Status::NotFound("no version '" + id + "'");
}

std::vector<const VersionDescriptor*> VersionStore::Catalogue() const {
  std::vector<const VersionDescriptor*> out;
  out.reserve(versions_.size());
  for (const auto& [_, v] : versions_) out.push_back(&v.descriptor);
  return out;
}

std::vector<const VersionDescriptor*> VersionStore::At(
    const std::string& location) const {
  std::vector<const VersionDescriptor*> out;
  for (const auto& [_, v] : versions_) {
    if (v.descriptor.location == location) out.push_back(&v.descriptor);
  }
  return out;
}

size_t VersionStore::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& [_, v] : versions_) bytes += v.payload.size();
  return bytes;
}

}  // namespace dbm::data
