#include "data/relation.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/strings.h"

namespace dbm::data {

double Histogram::SelectivityLe(double x) const {
  uint64_t n = total();
  if (n == 0) return 0;
  if (x < lo) return 0;
  if (x >= hi) return 1;
  double width = (hi - lo) / static_cast<double>(buckets.size());
  if (width <= 0) return 1;
  double pos = (x - lo) / width;
  auto full = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(full);
  uint64_t below = 0;
  for (size_t i = 0; i < full && i < buckets.size(); ++i) below += buckets[i];
  double partial =
      full < buckets.size() ? frac * static_cast<double>(buckets[full]) : 0;
  return (static_cast<double>(below) + partial) / static_cast<double>(n);
}

double Histogram::SelectivityEq(double x) const {
  uint64_t n = total();
  if (n == 0 || x < lo || x > hi || buckets.empty()) return 0;
  double width = (hi - lo) / static_cast<double>(buckets.size());
  size_t idx = width <= 0
                   ? 0
                   : std::min(buckets.size() - 1,
                              static_cast<size_t>((x - lo) / width));
  // Uniformity within the bucket; assume the bucket holds width distinct
  // values for integer-like data (at least 1).
  double distinct_in_bucket = std::max(1.0, width);
  return static_cast<double>(buckets[idx]) /
         (distinct_in_bucket * static_cast<double>(n));
}

uint64_t Histogram::total() const {
  uint64_t n = 0;
  for (uint64_t b : buckets) n += b;
  return n;
}

void RelationStats::PerturbCardinality(double factor) {
  row_count = static_cast<uint64_t>(static_cast<double>(row_count) * factor);
  for (auto& [_, col] : columns) {
    col.count = static_cast<uint64_t>(static_cast<double>(col.count) * factor);
    col.distinct_estimate = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(col.distinct_estimate) * factor));
    for (uint64_t& b : col.histogram.buckets) {
      b = static_cast<uint64_t>(static_cast<double>(b) * factor);
    }
  }
}

Status Relation::Insert(Tuple tuple) {
  DBM_RETURN_NOT_OK(CheckTuple(schema_, tuple));
  rows_.push_back(std::move(tuple));
  InvalidateColumnar();
  return Status::OK();
}

const ColumnarView& Relation::Columnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_) return *columnar_;
  auto view = std::make_unique<ColumnarView>();
  view->rows = rows_.size();
  view->columns.resize(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    ColumnVector& col = view->columns[c];
    col.decl = schema_.field(c).type;
    col.tags.resize(rows_.size());
    // Every row carries a slot in each typed array so a cell is always
    // addressable by row index — null/absent slots are zeroed. This costs
    // memory over a packed layout but keeps kernel indexing branch-free.
    switch (col.decl) {
      case ValueType::kInt:
        col.ints.assign(rows_.size(), 0);
        break;
      case ValueType::kDouble:
        col.doubles.assign(rows_.size(), 0.0);
        break;
      case ValueType::kString:
        col.strings.assign(rows_.size(), std::string_view());
        break;
      case ValueType::kNull:
        break;
    }
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Value& v = rows_[r].at(c);
      ValueType t = TypeOf(v);
      col.tags[r] = static_cast<uint8_t>(t);
      switch (t) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
          if (col.ints.empty()) col.ints.assign(rows_.size(), 0);
          col.ints[r] = std::get<int64_t>(v);
          break;
        case ValueType::kDouble:
          if (col.doubles.empty()) col.doubles.assign(rows_.size(), 0.0);
          col.doubles[r] = std::get<double>(v);
          break;
        case ValueType::kString:
          if (col.strings.empty()) {
            col.strings.assign(rows_.size(), std::string_view());
          }
          col.strings[r] = std::get<std::string>(v);
          break;
      }
    }
  }
  columnar_ = std::move(view);
  return *columnar_;
}

RelationStats Relation::ComputeStatistics(size_t histogram_buckets) const {
  RelationStats stats;
  stats.row_count = rows_.size();
  for (size_t c = 0; c < schema_.size(); ++c) {
    const Field& field = schema_.field(c);
    ColumnStats col;
    std::set<uint64_t> distinct_hashes;
    bool numeric =
        field.type == ValueType::kInt || field.type == ValueType::kDouble;
    double mn = 0, mx = 0;
    bool first = true;
    for (const Tuple& row : rows_) {
      const Value& v = row.at(c);
      if (IsNull(v)) {
        ++col.nulls;
        continue;
      }
      ++col.count;
      distinct_hashes.insert(HashValue(v));
      if (numeric) {
        double d = TypeOf(v) == ValueType::kInt
                       ? static_cast<double>(std::get<int64_t>(v))
                       : std::get<double>(v);
        if (first || d < mn) mn = first ? d : std::min(mn, d);
        if (first || d > mx) mx = first ? d : std::max(mx, d);
        first = false;
      }
    }
    col.distinct_estimate = distinct_hashes.size();
    if (numeric && col.count > 0) {
      col.min = mn;
      col.max = mx;
      col.histogram.lo = mn;
      col.histogram.hi = mx;
      col.histogram.buckets.assign(histogram_buckets, 0);
      double width =
          (mx - mn) / static_cast<double>(histogram_buckets);
      for (const Tuple& row : rows_) {
        const Value& v = row.at(c);
        if (IsNull(v)) continue;
        double d = TypeOf(v) == ValueType::kInt
                       ? static_cast<double>(std::get<int64_t>(v))
                       : std::get<double>(v);
        size_t idx =
            width <= 0
                ? 0
                : std::min(histogram_buckets - 1,
                           static_cast<size_t>((d - mn) / width));
        ++col.histogram.buckets[idx];
      }
    }
    stats.columns[field.name] = std::move(col);
  }
  return stats;
}

Relation Relation::Sample(double fraction, uint64_t seed) const {
  Relation out(name_ + "-sample", schema_);
  Rng rng(seed);
  for (const Tuple& row : rows_) {
    if (rng.Bernoulli(fraction)) out.InsertUnchecked(row);
  }
  return out;
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

struct Reader {
  const std::vector<uint8_t>& bytes;
  size_t pos = 0;

  Result<uint32_t> U32() {
    if (pos + 4 > bytes.size()) return Status::IoError("truncated u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  Result<uint64_t> U64() {
    if (pos + 8 > bytes.size()) return Status::IoError("truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  Result<std::string> String() {
    DBM_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos + len > bytes.size()) return Status::IoError("truncated string");
    std::string s(bytes.begin() + static_cast<long>(pos),
                  bytes.begin() + static_cast<long>(pos + len));
    pos += len;
    return s;
  }
};

}  // namespace

std::vector<uint8_t> Relation::Serialize() const {
  std::vector<uint8_t> out;
  PutString(&out, name_);
  PutU32(&out, static_cast<uint32_t>(schema_.size()));
  for (const Field& f : schema_.fields()) {
    PutString(&out, f.name);
    out.push_back(static_cast<uint8_t>(f.type));
  }
  PutU64(&out, rows_.size());
  for (const Tuple& row : rows_) {
    for (const Value& v : row.values) {
      out.push_back(static_cast<uint8_t>(TypeOf(v)));
      switch (TypeOf(v)) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
          PutU64(&out, static_cast<uint64_t>(std::get<int64_t>(v)));
          break;
        case ValueType::kDouble: {
          double d = std::get<double>(v);
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          PutU64(&out, bits);
          break;
        }
        case ValueType::kString:
          PutString(&out, std::get<std::string>(v));
          break;
      }
    }
  }
  return out;
}

Result<Relation> Relation::Deserialize(const std::vector<uint8_t>& bytes) {
  Reader r{bytes};
  DBM_ASSIGN_OR_RETURN(std::string name, r.String());
  DBM_ASSIGN_OR_RETURN(uint32_t ncols, r.U32());
  std::vector<Field> fields;
  for (uint32_t i = 0; i < ncols; ++i) {
    Field f;
    DBM_ASSIGN_OR_RETURN(f.name, r.String());
    if (r.pos >= bytes.size()) return Status::IoError("truncated type");
    f.type = static_cast<ValueType>(bytes[r.pos++]);
    fields.push_back(std::move(f));
  }
  Relation rel(name, Schema(std::move(fields)));
  DBM_ASSIGN_OR_RETURN(uint64_t nrows, r.U64());
  for (uint64_t i = 0; i < nrows; ++i) {
    Tuple row;
    for (uint32_t c = 0; c < ncols; ++c) {
      if (r.pos >= bytes.size()) return Status::IoError("truncated value");
      auto vt = static_cast<ValueType>(bytes[r.pos++]);
      switch (vt) {
        case ValueType::kNull:
          row.values.emplace_back();
          break;
        case ValueType::kInt: {
          DBM_ASSIGN_OR_RETURN(uint64_t bits, r.U64());
          row.values.emplace_back(static_cast<int64_t>(bits));
          break;
        }
        case ValueType::kDouble: {
          DBM_ASSIGN_OR_RETURN(uint64_t bits, r.U64());
          double d;
          std::memcpy(&d, &bits, sizeof(d));
          row.values.emplace_back(d);
          break;
        }
        case ValueType::kString: {
          DBM_ASSIGN_OR_RETURN(std::string s, r.String());
          row.values.emplace_back(std::move(s));
          break;
        }
      }
    }
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

size_t Relation::PayloadBytes() const {
  size_t bytes = 0;
  for (const Tuple& row : rows_) {
    for (const Value& v : row.values) {
      switch (TypeOf(v)) {
        case ValueType::kNull: bytes += 1; break;
        case ValueType::kInt:
        case ValueType::kDouble: bytes += 9; break;
        case ValueType::kString:
          bytes += 5 + std::get<std::string>(v).size();
          break;
      }
    }
  }
  return bytes;
}

namespace gen {

namespace {
const char* kCities[] = {"london", "paris",  "berlin", "madrid",
                         "rome",   "dublin", "oslo",   "vienna"};
const char* kFirst[] = {"ada",  "alan", "grace", "edsger",
                        "john", "mary", "tim",   "barbara"};
}  // namespace

Relation People(size_t n, uint64_t seed) {
  Schema schema({{"id", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"age", ValueType::kInt},
                 {"city", ValueType::kString}});
  Relation rel("people", schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.values = {
        static_cast<int64_t>(i),
        std::string(kFirst[rng.Uniform(8)]) + "-" + std::to_string(i),
        rng.UniformInt(18, 90),
        std::string(kCities[rng.Uniform(8)]),
    };
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

Relation Orders(size_t n, size_t n_people, double theta, uint64_t seed) {
  Schema schema({{"id", ValueType::kInt},
                 {"person_id", ValueType::kInt},
                 {"amount", ValueType::kDouble},
                 {"day", ValueType::kInt}});
  Relation rel("orders", schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.values = {
        static_cast<int64_t>(i),
        static_cast<int64_t>(rng.Zipf(n_people == 0 ? 1 : n_people, theta)),
        rng.UniformDouble(1.0, 500.0),
        rng.UniformInt(0, 364),
    };
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

Relation SensorReadings(size_t n, uint64_t seed) {
  Schema schema({{"seq", ValueType::kInt},
                 {"temperature", ValueType::kDouble},
                 {"battery", ValueType::kDouble}});
  Relation rel("readings", schema);
  Rng rng(seed);
  double temp = 21.0;
  double battery = 100.0;
  for (size_t i = 0; i < n; ++i) {
    temp += rng.Gaussian(0, 0.15);
    battery = std::max(0.0, battery - rng.UniformDouble() * 0.01);
    Tuple row;
    row.values = {static_cast<int64_t>(i), temp, battery};
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace gen
}  // namespace dbm::data
