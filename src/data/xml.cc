#include "data/xml.h"

#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace dbm::data {

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view src) : src_(src) {}

  Result<XmlNode> Run() {
    SkipWs();
    DBM_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipWs();
    if (pos_ != src_.size()) {
      return Status::ParseError("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_' || src_[pos_] == '-' || src_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected name");
    return std::string(src_.substr(start, pos_ - start));
  }

  Result<XmlNode> ParseElement() {
    if (pos_ >= src_.size() || src_[pos_] != '<') {
      return Status::ParseError("expected '<'");
    }
    ++pos_;
    XmlNode node;
    DBM_ASSIGN_OR_RETURN(node.tag, ParseName());
    // Attributes.
    while (true) {
      SkipWs();
      if (pos_ >= src_.size()) return Status::ParseError("unterminated tag");
      if (src_[pos_] == '/' || src_[pos_] == '>') break;
      DBM_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWs();
      if (pos_ >= src_.size() || src_[pos_] != '=') {
        return Status::ParseError("expected '=' after attribute '" + key +
                                  "'");
      }
      ++pos_;
      SkipWs();
      if (pos_ >= src_.size() || src_[pos_] != '"') {
        return Status::ParseError("expected '\"'");
      }
      ++pos_;
      size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      if (pos_ >= src_.size()) {
        return Status::ParseError("unterminated attribute value");
      }
      node.attributes[key] = std::string(src_.substr(start, pos_ - start));
      ++pos_;
    }
    if (src_[pos_] == '/') {
      ++pos_;
      if (pos_ >= src_.size() || src_[pos_] != '>') {
        return Status::ParseError("expected '>' after '/'");
      }
      ++pos_;
      return node;  // self-closing
    }
    ++pos_;  // '>'
    // Content: text and child elements until </tag>.
    while (true) {
      if (pos_ >= src_.size()) {
        return Status::ParseError("unterminated element <" + node.tag + ">");
      }
      if (src_[pos_] == '<') {
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
          pos_ += 2;
          DBM_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != node.tag) {
            return Status::ParseError("mismatched closing tag </" + close +
                                      "> for <" + node.tag + ">");
          }
          SkipWs();
          if (pos_ >= src_.size() || src_[pos_] != '>') {
            return Status::ParseError("expected '>' in closing tag");
          }
          ++pos_;
          return node;
        }
        DBM_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
        node.children.push_back(std::move(child));
      } else {
        size_t start = pos_;
        while (pos_ < src_.size() && src_[pos_] != '<') ++pos_;
        std::string_view text = src_.substr(start, pos_ - start);
        node.text += std::string(Trim(text));
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
};

void SerializeInto(const XmlNode& node, std::ostringstream* out) {
  *out << "<" << node.tag;
  for (const auto& [k, v] : node.attributes) {
    *out << " " << k << "=\"" << v << "\"";
  }
  if (node.text.empty() && node.children.empty()) {
    *out << "/>";
    return;
  }
  *out << ">" << node.text;
  for (const XmlNode& c : node.children) SerializeInto(c, out);
  *out << "</" << node.tag << ">";
}

}  // namespace

Result<XmlNode> ParseXml(std::string_view source) {
  return XmlParser(source).Run();
}

std::string SerializeXml(const XmlNode& node) {
  std::ostringstream out;
  SerializeInto(node, &out);
  return out.str();
}

XmlNode RowToXml(const Schema& schema, const Tuple& row,
                 const std::string& tag) {
  XmlNode node;
  node.tag = tag;
  for (size_t i = 0; i < schema.size() && i < row.size(); ++i) {
    XmlNode child;
    child.tag = schema.field(i).name;
    child.text = ValueToString(row.at(i));
    node.children.push_back(std::move(child));
  }
  return node;
}

Result<Tuple> XmlToRow(const Schema& schema, const XmlNode& node) {
  Tuple row;
  for (const Field& f : schema.fields()) {
    const XmlNode* child = node.FindChild(f.name);
    if (child == nullptr) {
      return Status::NotFound("fragment <" + node.tag + "> lacks <" + f.name +
                              ">");
    }
    switch (f.type) {
      case ValueType::kInt:
        try {
          row.values.emplace_back(
              static_cast<int64_t>(std::stoll(child->text)));
        } catch (const std::exception&) {
          return Status::ParseError("bad int in <" + f.name + ">: '" +
                                    child->text + "'");
        }
        break;
      case ValueType::kDouble:
        try {
          row.values.emplace_back(std::stod(child->text));
        } catch (const std::exception&) {
          return Status::ParseError("bad double in <" + f.name + ">");
        }
        break;
      case ValueType::kString:
        row.values.emplace_back(child->text);
        break;
      case ValueType::kNull:
        row.values.emplace_back();
        break;
    }
  }
  return row;
}

}  // namespace dbm::data
