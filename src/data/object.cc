#include "data/object.h"

#include "common/strings.h"

namespace dbm::data {

Status ObjectStore::DefineClass(ClassDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("class needs a name");
  }
  if (classes_.count(def.name) > 0) {
    return Status::AlreadyExists("class '" + def.name + "' already defined");
  }
  classes_[def.name] = std::move(def);
  return Status::OK();
}

Result<const ClassDef*> ObjectStore::GetClass(const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("no class '" + name + "'");
  }
  return &it->second;
}

Result<ObjectId> ObjectStore::Create(const std::string& class_name,
                                     std::map<std::string, Value> scalars) {
  DBM_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(class_name));
  Object obj;
  obj.id = next_id_++;
  obj.class_name = class_name;
  for (auto& [field, value] : scalars) {
    const Field* f = def->FindScalar(field);
    if (f == nullptr) {
      return Status::NotFound("class '" + class_name + "' has no scalar '" +
                              field + "'");
    }
    if (!IsNull(value) && TypeOf(value) != f->type) {
      return Status::InvalidArgument(
          "field '" + field + "' expects " + ValueTypeName(f->type) +
          ", got " + ValueTypeName(TypeOf(value)));
    }
    obj.scalars[field] = std::move(value);
  }
  for (const Field& f : def->scalars) {
    if (obj.scalars.count(f.name) == 0) obj.scalars[f.name] = Value{};
  }
  for (const std::string& r : def->references) {
    obj.references[r] = kNullObject;
  }
  ObjectId id = obj.id;
  objects_[id] = std::move(obj);
  return id;
}

Result<const Object*> ObjectStore::Get(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound(StrFormat("no object %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return &it->second;
}

Result<Object*> ObjectStore::GetMutable(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound(StrFormat("no object %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return &it->second;
}

Status ObjectStore::SetScalar(ObjectId id, const std::string& field,
                              Value value) {
  DBM_ASSIGN_OR_RETURN(Object * obj, GetMutable(id));
  DBM_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(obj->class_name));
  const Field* f = def->FindScalar(field);
  if (f == nullptr) {
    return Status::NotFound("class '" + obj->class_name +
                            "' has no scalar '" + field + "'");
  }
  if (!IsNull(value) && TypeOf(value) != f->type) {
    return Status::InvalidArgument("type mismatch for '" + field + "'");
  }
  obj->scalars[field] = std::move(value);
  return Status::OK();
}

Status ObjectStore::SetReference(ObjectId id, const std::string& field,
                                 ObjectId target) {
  DBM_ASSIGN_OR_RETURN(Object * obj, GetMutable(id));
  DBM_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(obj->class_name));
  if (!def->HasReference(field)) {
    return Status::NotFound("class '" + obj->class_name +
                            "' has no reference '" + field + "'");
  }
  if (target != kNullObject) {
    DBM_RETURN_NOT_OK(Get(target).status());
  }
  obj->references[field] = target;
  return Status::OK();
}

Result<Value> ObjectStore::Navigate(ObjectId root,
                                    const std::string& path) const {
  std::vector<std::string> segments = Split(path, '.', /*skip_empty=*/true);
  if (segments.empty()) {
    return Status::InvalidArgument("empty navigation path");
  }
  ObjectId current = root;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    DBM_ASSIGN_OR_RETURN(const Object* obj, Get(current));
    auto ref = obj->references.find(segments[i]);
    if (ref == obj->references.end()) {
      return Status::NotFound("'" + segments[i] + "' is not a reference of " +
                              obj->class_name);
    }
    if (ref->second == kNullObject) {
      return Value{};  // null reference: null result (SQL-style)
    }
    current = ref->second;
  }
  DBM_ASSIGN_OR_RETURN(const Object* leaf, Get(current));
  auto scalar = leaf->scalars.find(segments.back());
  if (scalar == leaf->scalars.end()) {
    return Status::NotFound("'" + segments.back() + "' is not a scalar of " +
                            leaf->class_name);
  }
  return scalar->second;
}

Result<XmlNode> ObjectStore::ToXml(ObjectId id) const {
  DBM_ASSIGN_OR_RETURN(const Object* obj, Get(id));
  XmlNode node;
  node.tag = obj->class_name;
  node.attributes["id"] = std::to_string(obj->id);
  for (const auto& [field, value] : obj->scalars) {
    XmlNode child;
    child.tag = field;
    child.text = ValueToString(value);
    node.children.push_back(std::move(child));
  }
  for (const auto& [field, target] : obj->references) {
    XmlNode child;
    child.tag = field;
    child.attributes["ref"] = std::to_string(target);  // by id: cycle-safe
    node.children.push_back(std::move(child));
  }
  return node;
}

Result<Relation> ObjectStore::Flatten(const std::string& class_name) const {
  DBM_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(class_name));
  std::vector<Field> fields;
  fields.push_back(Field{"id", ValueType::kInt});
  for (const Field& f : def->scalars) fields.push_back(f);
  for (const std::string& r : def->references) {
    fields.push_back(Field{r + "_id", ValueType::kInt});
  }
  Relation rel(class_name, Schema(std::move(fields)));
  for (const auto& [id, obj] : objects_) {
    if (obj.class_name != class_name) continue;
    Tuple row;
    row.values.push_back(static_cast<int64_t>(id));
    for (const Field& f : def->scalars) {
      row.values.push_back(obj.scalars.at(f.name));
    }
    for (const std::string& r : def->references) {
      ObjectId target = obj.references.at(r);
      row.values.push_back(target == kNullObject
                               ? Value{}
                               : Value{static_cast<int64_t>(target)});
    }
    rel.InsertUnchecked(std::move(row));
  }
  return rel;
}

}  // namespace dbm::data
