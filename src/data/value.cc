#include "data/value.h"

#include <sstream>

#include "common/strings.h"

namespace dbm::data {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kDouble;
    case 3: return ValueType::kString;
  }
  return ValueType::kNull;
}

bool IsNull(const Value& v) { return v.index() == 0; }

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0: return "NULL";
    case 1: return std::to_string(std::get<int64_t>(v));
    case 2: {
      std::ostringstream out;
      out << std::get<double>(v);
      return out.str();
    }
    case 3: return std::get<std::string>(v);
  }
  return "?";
}

namespace {
/// Rank for the cross-type total order: null < numbers < strings.
int TypeRank(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull: return 0;
    case ValueType::kInt:
    case ValueType::kDouble: return 1;
    case ValueType::kString: return 2;
  }
  return 3;
}
}  // namespace

int CompareValues(const Value& a, const Value& b) {
  int ra = TypeRank(a), rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      double da = TypeOf(a) == ValueType::kInt
                      ? static_cast<double>(std::get<int64_t>(a))
                      : std::get<double>(a);
      double db = TypeOf(b) == ValueType::kInt
                      ? static_cast<double>(std::get<int64_t>(b))
                      : std::get<double>(b);
      if (da < db) return -1;
      if (da > db) return 1;
      return 0;
    }
    default: {
      const std::string& sa = std::get<std::string>(a);
      const std::string& sb = std::get<std::string>(b);
      return sa.compare(sb) < 0 ? -1 : (sa == sb ? 0 : 1);
    }
  }
}

namespace {
constexpr uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

uint64_t HashNull() { return kFnvBasis; }

uint64_t HashNumeric(double d) {
  if (d == 0.0) d = 0.0;  // normalise -0.0
  return Fnv(&d, sizeof(d), kFnvBasis);
}

uint64_t HashValue(std::string_view s) {
  return Fnv(s.data(), s.size(), kFnvBasis ^ 0x9E3779B97F4A7C15ULL);
}

uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return (seed ^ h) * kFnvPrime + 0x9E3779B97F4A7C15ULL;
}

uint64_t HashValue(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return HashNull();
    case ValueType::kInt:
      // Hash ints through their double representation so that 3 and 3.0
      // (equal under CompareValues) hash identically.
      return HashNumeric(static_cast<double>(std::get<int64_t>(v)));
    case ValueType::kDouble:
      return HashNumeric(std::get<double>(v));
    case ValueType::kString:
      return HashValue(std::string_view(std::get<std::string>(v)));
  }
  return kFnvBasis;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in schema " + ToString());
}

Schema Schema::Join(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields_;
  for (const Field& f : right.fields_) {
    bool clash = false;
    for (const Field& lf : left.fields_) {
      if (lf.name == f.name) {
        clash = true;
        break;
      }
    }
    fields.push_back(Field{clash ? "r." + f.name : f.name, f.type});
  }
  if (fields.size() != left.size() + right.size()) {
    // unreachable; sizes always add up
  }
  // Prefix clashing left-side names too, for symmetry.
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = left.size(); j < fields.size(); ++j) {
      if (fields[j].name == "r." + fields[i].name) {
        fields[i].name = "l." + fields[i].name;
      }
    }
  }
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + ValueTypeName(f.type));
  }
  return "(" + dbm::Join(parts, ", ") + ")";
}

Tuple Tuple::Concat(const Tuple& l, const Tuple& r) {
  Tuple out;
  out.values.reserve(l.size() + r.size());
  out.values.insert(out.values.end(), l.values.begin(), l.values.end());
  out.values.insert(out.values.end(), r.values.begin(), r.values.end());
  return out;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values.size() != other.values.size()) return false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (CompareValues(values[i], other.values[i]) != 0) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(ValueToString(v));
  return "[" + dbm::Join(parts, ", ") + "]";
}

Status CheckTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.size() != schema.size()) {
    return Status::InvalidArgument(StrFormat(
        "tuple arity %zu does not match schema arity %zu", tuple.size(),
        schema.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (IsNull(tuple.at(i))) continue;
    if (TypeOf(tuple.at(i)) != schema.field(i).type) {
      return Status::InvalidArgument(
          "column '" + schema.field(i).name + "' expects " +
          ValueTypeName(schema.field(i).type) + ", got " +
          ValueTypeName(TypeOf(tuple.at(i))));
    }
  }
  return Status::OK();
}

}  // namespace dbm::data
