// Codecs for compressed data versions.
//
// Scenario 2: when the laptop undocks, the optimiser "decides to send a
// compressed version of the data thus using more resources on both the
// sensor and the Laptop while saving communication time". Versions carry
// the codec name ("perhaps with associated decompression code" — Fig 2);
// a swappable codec component ladder also drives the Kendra audio server.

#ifndef DBM_DATA_CODEC_H_
#define DBM_DATA_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace dbm::data {

using Bytes = std::vector<uint8_t>;

class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  virtual Bytes Encode(const Bytes& input) const = 0;
  virtual Result<Bytes> Decode(const Bytes& input) const = 0;
  /// Relative CPU cost per input byte (1.0 = identity), used by the
  /// environment simulator to charge encode/decode time.
  virtual double CpuCostPerByte() const { return 1.0; }
};

/// Pass-through.
class IdentityCodec : public Codec {
 public:
  std::string name() const override { return "identity"; }
  Bytes Encode(const Bytes& input) const override { return input; }
  Result<Bytes> Decode(const Bytes& input) const override { return input; }
  double CpuCostPerByte() const override { return 0.0; }
};

/// PackBits-style run-length encoding. Control byte c: c < 128 introduces
/// a literal run of c+1 bytes; c >= 128 repeats the following byte
/// (c - 126) times. Worst-case overhead is 1 byte per 128 (never blows up
/// on high-entropy data); zero-heavy serialised relations compress well.
class RleCodec : public Codec {
 public:
  std::string name() const override { return "rle"; }
  Bytes Encode(const Bytes& input) const override;
  Result<Bytes> Decode(const Bytes& input) const override;
  double CpuCostPerByte() const override { return 1.5; }
};

/// Delta-encodes the byte stream then RLE-compresses it; wins on slowly
/// drifting numeric streams (the sensor scenario).
class DeltaRleCodec : public Codec {
 public:
  std::string name() const override { return "delta-rle"; }
  Bytes Encode(const Bytes& input) const override;
  Result<Bytes> Decode(const Bytes& input) const override;
  double CpuCostPerByte() const override { return 2.5; }
};

/// LZ77 with a 64 KiB window and greedy hash-chain matching. Token
/// stream: control byte c < 128 introduces a literal run of c+1 bytes;
/// c >= 128 is a match of length (c - 128 + 4) at the 2-byte
/// little-endian back-offset that follows. Wins on text with repeated
/// substrings — the XML sensor stream's tags compress heavily.
class LzCodec : public Codec {
 public:
  std::string name() const override { return "lz"; }
  Bytes Encode(const Bytes& input) const override;
  Result<Bytes> Decode(const Bytes& input) const override;
  double CpuCostPerByte() const override { return 4.0; }
};

/// Finds a codec by name ("identity", "rle", "delta-rle", "lz").
Result<const Codec*> FindCodec(const std::string& name);

}  // namespace dbm::data

#endif  // DBM_DATA_CODEC_H_
