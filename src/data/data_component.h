// The data component of Fig 2: "Data | Metadata | Adaptability Rules |
// Versions". Data components are first-class runtime components — they
// migrate, carry their own switching rules, and expose alternative
// versions for the session manager's BEST/NEAREST placement decisions.

#ifndef DBM_DATA_DATA_COMPONENT_H_
#define DBM_DATA_DATA_COMPONENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/session.h"
#include "component/component.h"
#include "data/relation.h"
#include "data/version.h"

namespace dbm::data {

/// Trigger events (classic DBMS metadata, Fig 2).
enum class TriggerEvent : uint8_t { kInsert, kUpdate, kDelete };

struct Trigger {
  std::string name;
  TriggerEvent event = TriggerEvent::kInsert;
  /// Invoked with the affected tuple.
  std::function<Status(const Tuple&)> body;
};

/// A data component: the unit of data placement and adaptation.
class DataComponent : public component::Component {
 public:
  DataComponent(std::string name, Relation primary,
                std::string home_location)
      : Component(std::move(name), "data-component"),
        primary_(std::move(primary)),
        location_(std::move(home_location)) {
    RefreshStatistics();
  }

  // --- data ---
  const Relation& relation() const { return primary_; }
  const std::string& location() const { return location_; }

  /// Insert with trigger firing and incremental statistics decay.
  Status Insert(Tuple tuple);

  /// Moves the component's home (component migration, §3: "in a highly
  /// adaptive system the component can migrate, as can the data
  /// component").
  void MigrateTo(std::string new_location) {
    location_ = std::move(new_location);
    ++migrations_;
  }
  uint64_t migrations() const { return migrations_; }

  // --- metadata ---
  const RelationStats& statistics() const { return stats_; }
  void RefreshStatistics() { stats_ = primary_.ComputeStatistics(); }
  /// Injects estimation error (scenario 3's stale statistics).
  void PerturbStatistics(double factor) { stats_.PerturbCardinality(factor); }

  Status AddTrigger(Trigger trigger);
  Status DropTrigger(const std::string& name);
  size_t trigger_count() const { return triggers_.size(); }

  // --- adaptability rules ---
  adapt::ConstraintTable& rules() { return rules_; }
  const adapt::ConstraintTable& rules() const { return rules_; }

  // --- versions ---
  VersionStore& versions() { return versions_; }
  const VersionStore& versions() const { return versions_; }

  /// Materialises and stores a version of the current primary at
  /// `location`.
  Status PublishVersion(VersionKind kind, const std::string& location,
                        SimTime as_of, double quality = 1.0,
                        const std::string& codec = "rle");

  // --- state management (migration support) ---
  bool HasState() const override { return true; }
  Status Checkpoint(component::StateBlob* out) const override;
  Status Restore(const component::StateBlob& blob) override;

 private:
  Status FireTriggers(TriggerEvent event, const Tuple& tuple);

  Relation primary_;
  std::string location_;
  RelationStats stats_;
  std::vector<Trigger> triggers_;
  adapt::ConstraintTable rules_;
  VersionStore versions_;
  uint64_t migrations_ = 0;
  uint64_t inserts_since_refresh_ = 0;
};

}  // namespace dbm::data

#endif  // DBM_DATA_DATA_COMPONENT_H_
