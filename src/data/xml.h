// Minimal XML for the sensor-stream scenario ("the sensor's data ... is
// streamed in XML format", §4). Supports elements, attributes and text —
// enough to represent and re-parse sensor readings; no DTDs, entities or
// namespaces.

#ifndef DBM_DATA_XML_H_
#define DBM_DATA_XML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace dbm::data {

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attributes;
  std::string text;  // concatenated character data
  std::vector<XmlNode> children;

  const XmlNode* FindChild(const std::string& tag_) const {
    for (const XmlNode& c : children) {
      if (c.tag == tag_) return &c;
    }
    return nullptr;
  }
  std::string Attr(const std::string& key, const std::string& dflt = "") const {
    auto it = attributes.find(key);
    return it == attributes.end() ? dflt : it->second;
  }
};

/// Parses a single XML document (one root element).
Result<XmlNode> ParseXml(std::string_view source);

/// Serialises a node (and subtree) to text.
std::string SerializeXml(const XmlNode& node);

/// Converts one relational row into the sensor-stream XML fragment, e.g.
/// <reading seq="4"><temperature>21.3</temperature>...</reading>.
XmlNode RowToXml(const Schema& schema, const Tuple& row,
                 const std::string& tag = "reading");

/// Parses a sensor-stream fragment back to a row of `schema`.
Result<Tuple> XmlToRow(const Schema& schema, const XmlNode& node);

}  // namespace dbm::data

#endif  // DBM_DATA_XML_H_
