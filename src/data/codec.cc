#include "data/codec.h"

namespace dbm::data {

Bytes RleCodec::Encode(const Bytes& input) const {
  Bytes out;
  size_t i = 0;
  const size_t n = input.size();
  auto run_len = [&](size_t at) {
    size_t k = 1;
    while (at + k < n && input[at + k] == input[at] && k < 129) ++k;
    return k;
  };
  while (i < n) {
    size_t k = run_len(i);
    if (k >= 3) {
      // Repeat run: control 128..255 encodes lengths 2..129.
      out.push_back(static_cast<uint8_t>(128 + (k - 2)));
      out.push_back(input[i]);
      i += k;
      continue;
    }
    // Literal run: extend until a run of >= 3 starts or 128 bytes emitted.
    size_t start = i;
    while (i < n && (i - start) < 128) {
      if (run_len(i) >= 3) break;
      ++i;
    }
    out.push_back(static_cast<uint8_t>((i - start) - 1));
    out.insert(out.end(), input.begin() + static_cast<long>(start),
               input.begin() + static_cast<long>(i));
  }
  return out;
}

Result<Bytes> RleCodec::Decode(const Bytes& input) const {
  Bytes out;
  size_t i = 0;
  while (i < input.size()) {
    uint8_t c = input[i++];
    if (c < 128) {
      size_t len = static_cast<size_t>(c) + 1;
      if (i + len > input.size()) {
        return Status::IoError("rle: truncated literal run");
      }
      out.insert(out.end(), input.begin() + static_cast<long>(i),
                 input.begin() + static_cast<long>(i + len));
      i += len;
    } else {
      if (i >= input.size()) {
        return Status::IoError("rle: truncated repeat run");
      }
      size_t len = static_cast<size_t>(c) - 126;  // 2..129
      out.insert(out.end(), len, input[i++]);
    }
  }
  return out;
}

Bytes DeltaRleCodec::Encode(const Bytes& input) const {
  Bytes delta(input.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    delta[i] = static_cast<uint8_t>(input[i] - prev);
    prev = input[i];
  }
  return RleCodec().Encode(delta);
}

Result<Bytes> DeltaRleCodec::Decode(const Bytes& input) const {
  DBM_ASSIGN_OR_RETURN(Bytes delta, RleCodec().Decode(input));
  Bytes out(delta.size());
  uint8_t prev = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    out[i] = static_cast<uint8_t>(delta[i] + prev);
    prev = out[i];
  }
  return out;
}

Bytes LzCodec::Encode(const Bytes& input) const {
  Bytes out;
  const size_t n = input.size();
  constexpr size_t kMinMatch = 4;
  constexpr size_t kMaxMatch = 131;  // 128 + 3 control values
  constexpr size_t kWindow = 65535;
  constexpr size_t kHashSize = 1 << 14;
  constexpr int kChain = 16;

  // Hash chains over 3-byte prefixes.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(n, -1);
  auto hash3 = [&](size_t i) {
    uint32_t h = input[i] | (input[i + 1] << 8) | (input[i + 2] << 16);
    return (h * 2654435761u) >> 18;  // top 14 bits
  };

  auto flush_literals = [&](size_t from, size_t to) {
    while (from < to) {
      size_t len = std::min<size_t>(128, to - from);
      out.push_back(static_cast<uint8_t>(len - 1));
      out.insert(out.end(), input.begin() + static_cast<long>(from),
                 input.begin() + static_cast<long>(from + len));
      from += len;
    }
  };

  size_t i = 0, lit_start = 0;
  while (i < n) {
    size_t best_len = 0, best_off = 0;
    if (i + kMinMatch <= n && i + 2 < n) {
      uint32_t h = hash3(i);
      int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain++ < kChain) {
        size_t off = i - static_cast<size_t>(cand);
        if (off > kWindow) break;
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len &&
               input[static_cast<size_t>(cand) + len] == input[i + len]) {
          ++len;
        }
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_off = off;
        }
        cand = prev[static_cast<size_t>(cand)];
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals(lit_start, i);
      out.push_back(static_cast<uint8_t>(128 + (best_len - kMinMatch)));
      out.push_back(static_cast<uint8_t>(best_off & 0xFF));
      out.push_back(static_cast<uint8_t>(best_off >> 8));
      // Index the covered positions so later matches can reference them.
      size_t stop = std::min(i + best_len, n >= 2 ? n - 2 : 0);
      for (size_t j = i; j < stop; ++j) {
        uint32_t h = hash3(j);
        prev[j] = head[h];
        head[h] = static_cast<int64_t>(j);
      }
      i += best_len;
      lit_start = i;
    } else {
      if (i + 2 < n) {
        uint32_t h = hash3(i);
        prev[i] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      ++i;
    }
  }
  flush_literals(lit_start, n);
  return out;
}

Result<Bytes> LzCodec::Decode(const Bytes& input) const {
  Bytes out;
  size_t i = 0;
  while (i < input.size()) {
    uint8_t c = input[i++];
    if (c < 128) {
      size_t len = static_cast<size_t>(c) + 1;
      if (i + len > input.size()) {
        return Status::IoError("lz: truncated literal run");
      }
      out.insert(out.end(), input.begin() + static_cast<long>(i),
                 input.begin() + static_cast<long>(i + len));
      i += len;
    } else {
      if (i + 2 > input.size()) {
        return Status::IoError("lz: truncated match token");
      }
      size_t len = static_cast<size_t>(c) - 128 + 4;
      size_t off = input[i] | (static_cast<size_t>(input[i + 1]) << 8);
      i += 2;
      if (off == 0 || off > out.size()) {
        return Status::IoError("lz: match offset out of range");
      }
      size_t start = out.size() - off;
      for (size_t j = 0; j < len; ++j) {
        out.push_back(out[start + j]);  // overlapping copies are legal
      }
    }
  }
  return out;
}

Result<const Codec*> FindCodec(const std::string& name) {
  static const IdentityCodec identity;
  static const RleCodec rle;
  static const DeltaRleCodec delta_rle;
  static const LzCodec lz;
  if (name == "identity") return static_cast<const Codec*>(&identity);
  if (name == "rle") return static_cast<const Codec*>(&rle);
  if (name == "delta-rle") return static_cast<const Codec*>(&delta_rle);
  if (name == "lz") return static_cast<const Codec*>(&lz);
  return Status::NotFound("no codec '" + name + "'");
}

}  // namespace dbm::data
