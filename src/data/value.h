// Values, schemas and tuples — the relational face of the heterogeneous
// data model. The paper's data components hold "OO structured data ... or
// a relational table ... or an XML stream"; relations live here, XML in
// xml.h, and objects in object.h.

#ifndef DBM_DATA_VALUE_H_
#define DBM_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace dbm::data {

enum class ValueType : uint8_t { kNull, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// A single relational value. Null is the monostate alternative.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

ValueType TypeOf(const Value& v);
bool IsNull(const Value& v);
std::string ValueToString(const Value& v);

/// Three-valued-free comparison: nulls sort first, numeric types compare
/// numerically across int/double, strings lexicographically. Comparing a
/// number with a string is an error surfaced as InvalidArgument by callers
/// that need it; here numbers sort before strings (deterministic total
/// order for sorting and hashing).
int CompareValues(const Value& a, const Value& b);

/// FNV-1a hash of a value (for hash joins and grouping).
uint64_t HashValue(const Value& v);

/// Hash of a string payload, identical to HashValue over a string Value —
/// the columnar kernels and GroupAccumulator hash string_views directly so
/// string keys never materialise a temporary std::string on the hot path.
uint64_t HashValue(std::string_view s);

/// Cell-level primitives behind HashValue, exposed so the batch kernels
/// (query/batch.cc) hash contiguous columns without building a Value:
/// numerics hash through their double image (3 and 3.0 hash alike, -0.0
/// normalised), nulls hash to the FNV basis.
uint64_t HashNull();
uint64_t HashNumeric(double d);

/// Order-sensitive combiner for multi-column keys (group-by hashing).
uint64_t HashCombine(uint64_t seed, uint64_t h);

/// A named, typed column.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the named column.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Concatenation (for join outputs). Duplicate names get the side
  /// prefixes "l." / "r.".
  static Schema Join(const Schema& left, const Schema& right);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A row. Positions correspond to the governing schema.
struct Tuple {
  std::vector<Value> values;

  Tuple() = default;
  explicit Tuple(std::vector<Value> v) : values(std::move(v)) {}

  size_t size() const { return values.size(); }
  const Value& at(size_t i) const { return values[i]; }

  /// Concatenation for join output.
  static Tuple Concat(const Tuple& l, const Tuple& r);

  bool operator==(const Tuple& other) const;
  std::string ToString() const;
};

/// Validates that a tuple's value types match the schema (null allowed in
/// any column).
Status CheckTuple(const Schema& schema, const Tuple& tuple);

}  // namespace dbm::data

#endif  // DBM_DATA_VALUE_H_
