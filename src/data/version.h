// Data versions (Fig 2: "the list of versions is indications of where
// alternatives can be found. Versions are not necessarily exact replicas;
// they could be compressed versions of the data (perhaps with associated
// decompression code) or be out-of-date. They also could be lower quality
// versions or summaries of the data.")

#ifndef DBM_DATA_VERSION_H_
#define DBM_DATA_VERSION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "data/codec.h"
#include "data/relation.h"

namespace dbm::data {

enum class VersionKind : uint8_t {
  kPrimary,     // the authoritative copy
  kReplica,     // exact copy on another node
  kCompressed,  // codec-encoded copy (smaller transfer, CPU to decode)
  kStale,       // older snapshot ("the ability to cope with slightly
                // out-of-date data", §1)
  kSummary,     // sampled / lower-quality version
};

const char* VersionKindName(VersionKind k);

/// Where and what an alternative version is.
struct VersionDescriptor {
  std::string id;        // unique within the data component
  VersionKind kind = VersionKind::kPrimary;
  std::string location;  // device/node holding it
  SimTime as_of = 0;     // snapshot time (staleness = now - as_of)
  double quality = 1.0;  // 1.0 = full fidelity
  std::string codec = "identity";
  size_t payload_bytes = 0;
};

/// A materialised version: descriptor + the (possibly encoded) payload.
struct MaterializedVersion {
  VersionDescriptor descriptor;
  Bytes payload;

  /// Decodes and deserialises back to a relation.
  Result<Relation> Open() const;
};

/// Builds a version of `primary` according to `kind`:
///  * kPrimary / kReplica / kStale → exact serialisation
///  * kCompressed → encode with `codec`
///  * kSummary → Sample(quality) then serialise
Result<MaterializedVersion> Materialize(const Relation& primary,
                                        VersionKind kind,
                                        const std::string& location,
                                        SimTime as_of, double quality = 1.0,
                                        const std::string& codec = "rle",
                                        uint64_t seed = 42);

/// A set of materialised versions of one logical datum, addressable by id.
class VersionStore {
 public:
  Status Put(MaterializedVersion version);
  Result<const MaterializedVersion*> Get(const std::string& id) const;
  Status Drop(const std::string& id);

  std::vector<const VersionDescriptor*> Catalogue() const;

  /// Versions held at a location.
  std::vector<const VersionDescriptor*> At(const std::string& location) const;

  size_t size() const { return versions_.size(); }
  size_t TotalBytes() const;

 private:
  std::map<std::string, MaterializedVersion> versions_;
};

}  // namespace dbm::data

#endif  // DBM_DATA_VERSION_H_
