// In-memory relations with attribute statistics (the "standard metadata
// found in traditional databases e.g. attribute statistics, triggers" of
// Fig 2). Statistics can be deliberately perturbed — scenario 3 (intra-
// query adaptation) depends on the optimiser starting from wrong numbers.

#ifndef DBM_DATA_RELATION_H_
#define DBM_DATA_RELATION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/value.h"

namespace dbm::data {

/// Equi-width histogram over a numeric column.
struct Histogram {
  double lo = 0;
  double hi = 0;
  std::vector<uint64_t> buckets;

  /// Estimated fraction of values ≤ x.
  double SelectivityLe(double x) const;
  /// Estimated fraction of values = x (uniform-within-bucket assumption).
  double SelectivityEq(double x) const;
  uint64_t total() const;
};

/// Per-column statistics.
struct ColumnStats {
  uint64_t count = 0;
  uint64_t nulls = 0;
  double min = 0;
  double max = 0;
  uint64_t distinct_estimate = 0;
  Histogram histogram;
};

/// Relation-level statistics.
struct RelationStats {
  uint64_t row_count = 0;
  std::map<std::string, ColumnStats> columns;

  /// Multiplies every cardinality by `factor` — the knob for producing the
  /// inaccurate estimates that trigger mid-query re-optimisation.
  void PerturbCardinality(double factor);
};

/// One column of a relation's cached columnar image: per-row type tags
/// plus contiguous typed arrays. Only the arrays the column actually uses
/// are populated (an all-int column leaves `doubles`/`strings` empty).
/// String cells are views into the owning rows' std::string storage —
/// valid until the relation is mutated.
struct ColumnVector {
  ValueType decl = ValueType::kNull;       // declared type (schema)
  std::vector<uint8_t> tags;               // ValueType per row
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string_view> strings;
};

/// The whole-relation columnar image the batch kernels scan: the same
/// data as rows(), transposed once into contiguous arrays so a morsel is
/// a slice of flat memory instead of a walk over variant-of-string rows.
struct ColumnarView {
  size_t rows = 0;
  std::vector<ColumnVector> columns;  // one per schema field
};

/// A row-store relation.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // The columnar cache is an internal mutex-guarded lazily-built image;
  // copies and moves carry the rows and drop the cache (it rebuilds on
  // first use).
  Relation(const Relation& other)
      : name_(other.name_), schema_(other.schema_), rows_(other.rows_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      name_ = other.name_;
      schema_ = other.schema_;
      rows_ = other.rows_;
      InvalidateColumnar();
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        rows_(std::move(other.rows_)) {}
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      schema_ = std::move(other.schema_);
      rows_ = std::move(other.rows_);
      InvalidateColumnar();
    }
    return *this;
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Appends a type-checked row.
  Status Insert(Tuple tuple);
  /// Appends without checking (bulk load of trusted data).
  void InsertUnchecked(Tuple tuple) {
    rows_.push_back(std::move(tuple));
    InvalidateColumnar();
  }

  /// Columnar image of the relation, built lazily on first use and cached
  /// until the next mutation. String cells are views into the row store;
  /// the reference (and the views) stay valid while the relation is alive
  /// and unmutated. Thread-safe to call concurrently from scan workers.
  const ColumnarView& Columnar() const;

  /// Computes fresh statistics (histogram_buckets per numeric column).
  RelationStats ComputeStatistics(size_t histogram_buckets = 16) const;

  /// Uniform row sample of about `fraction` of rows — the "summary /
  /// lower-quality version" materialisation.
  Relation Sample(double fraction, uint64_t seed) const;

  /// Byte-serialisation (versions, codecs, and network transfer sizing).
  std::vector<uint8_t> Serialize() const;
  static Result<Relation> Deserialize(const std::vector<uint8_t>& bytes);

  /// Approximate in-memory payload size in bytes.
  size_t PayloadBytes() const;

 private:
  void InvalidateColumnar() {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    columnar_.reset();
  }

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  mutable std::mutex columnar_mu_;
  mutable std::unique_ptr<ColumnarView> columnar_;
};

/// Deterministic synthetic relation generators used across tests, benches
/// and examples.
namespace gen {

/// "people(id:int, name:string, age:int, city:string)" with `n` rows.
Relation People(size_t n, uint64_t seed);

/// "orders(id:int, person_id:int, amount:double, day:int)"; person_id
/// references People(n_people) with Zipf skew `theta`.
Relation Orders(size_t n, size_t n_people, double theta, uint64_t seed);

/// Sensor readings "readings(seq:int, temperature:double, battery:double)".
Relation SensorReadings(size_t n, uint64_t seed);

}  // namespace gen

}  // namespace dbm::data

#endif  // DBM_DATA_RELATION_H_
