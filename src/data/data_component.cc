#include "data/data_component.h"

namespace dbm::data {

Status DataComponent::Insert(Tuple tuple) {
  DBM_RETURN_NOT_OK(FireTriggers(TriggerEvent::kInsert, tuple));
  DBM_RETURN_NOT_OK(primary_.Insert(std::move(tuple)));
  // Statistics decay: the row count is tracked incrementally, but value
  // distributions drift until the next refresh — the paper's optimiser
  // adapts precisely because such metadata is "not quite accurate enough".
  ++stats_.row_count;
  ++inserts_since_refresh_;
  return Status::OK();
}

Status DataComponent::AddTrigger(Trigger trigger) {
  for (const Trigger& t : triggers_) {
    if (t.name == trigger.name) {
      return Status::AlreadyExists("trigger '" + trigger.name +
                                   "' already defined");
    }
  }
  triggers_.push_back(std::move(trigger));
  return Status::OK();
}

Status DataComponent::DropTrigger(const std::string& name) {
  for (auto it = triggers_.begin(); it != triggers_.end(); ++it) {
    if (it->name == name) {
      triggers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no trigger '" + name + "'");
}

Status DataComponent::FireTriggers(TriggerEvent event, const Tuple& tuple) {
  for (const Trigger& t : triggers_) {
    if (t.event != event || !t.body) continue;
    DBM_RETURN_NOT_OK_CTX(t.body(tuple), "trigger '" + t.name + "'");
  }
  return Status::OK();
}

Status DataComponent::PublishVersion(VersionKind kind,
                                     const std::string& location,
                                     SimTime as_of, double quality,
                                     const std::string& codec) {
  DBM_ASSIGN_OR_RETURN(
      MaterializedVersion version,
      Materialize(primary_, kind, location, as_of, quality, codec));
  return versions_.Put(std::move(version));
}

Status DataComponent::Checkpoint(component::StateBlob* out) const {
  out->type = "data-component";
  out->text = location_;
  std::vector<uint8_t> bytes = primary_.Serialize();
  out->words.clear();
  out->words.reserve(bytes.size());
  for (uint8_t b : bytes) out->words.push_back(b);
  return Status::OK();
}

Status DataComponent::Restore(const component::StateBlob& blob) {
  if (blob.type != "data-component") {
    return Status::InvalidArgument("state blob of type '" + blob.type +
                                   "' is not a data component");
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(blob.words.size());
  for (int64_t w : blob.words) bytes.push_back(static_cast<uint8_t>(w));
  DBM_ASSIGN_OR_RETURN(Relation rel, Relation::Deserialize(bytes));
  primary_ = std::move(rel);
  location_ = blob.text;
  RefreshStatistics();
  return Status::OK();
}

}  // namespace dbm::data
