// Object-structured data — the third face of the heterogeneous model.
//
// §4: "Example data could be OO structured data concerned with a person
// or a relational table used for transaction processing or an XML
// stream." Objects have a class, scalar fields and references to other
// objects; an ObjectStore owns them and supports path navigation
// ("person.address.city"), cycle-safe serialisation to XML, and flattening
// into relations so the query substrate can reach object data.

#ifndef DBM_DATA_OBJECT_H_
#define DBM_DATA_OBJECT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "data/xml.h"

namespace dbm::data {

using ObjectId = uint64_t;
constexpr ObjectId kNullObject = 0;

/// A class definition: scalar fields and reference fields.
struct ClassDef {
  std::string name;
  std::vector<Field> scalars;               // name + type
  std::vector<std::string> references;      // field name → any object

  const Field* FindScalar(const std::string& field) const {
    for (const Field& f : scalars) {
      if (f.name == field) return &f;
    }
    return nullptr;
  }
  bool HasReference(const std::string& field) const {
    for (const std::string& r : references) {
      if (r == field) return true;
    }
    return false;
  }
};

/// An object instance.
struct Object {
  ObjectId id = kNullObject;
  std::string class_name;
  std::map<std::string, Value> scalars;
  std::map<std::string, ObjectId> references;
};

class ObjectStore {
 public:
  /// Registers a class; names are unique.
  Status DefineClass(ClassDef def);
  Result<const ClassDef*> GetClass(const std::string& name) const;

  /// Creates an instance of `class_name` with the given scalar values
  /// (type-checked; missing scalars become null).
  Result<ObjectId> Create(const std::string& class_name,
                          std::map<std::string, Value> scalars = {});

  Result<const Object*> Get(ObjectId id) const;
  Result<Object*> GetMutable(ObjectId id);

  /// Sets a scalar (type-checked) or reference field.
  Status SetScalar(ObjectId id, const std::string& field, Value value);
  Status SetReference(ObjectId id, const std::string& field, ObjectId target);

  /// Navigates a dotted path from `root`: intermediate segments must be
  /// reference fields; the last segment is a scalar.
  Result<Value> Navigate(ObjectId root, const std::string& path) const;

  /// Serialises one object (references by id attribute; cycle-safe).
  Result<XmlNode> ToXml(ObjectId id) const;

  /// Flattens all instances of a class into a relation: columns = the
  /// class's scalars plus an "id" column and one "<ref>_id" column per
  /// reference.
  Result<Relation> Flatten(const std::string& class_name) const;

  size_t size() const { return objects_.size(); }

 private:
  std::map<std::string, ClassDef> classes_;
  std::map<ObjectId, Object> objects_;
  ObjectId next_id_ = 1;
};

}  // namespace dbm::data

#endif  // DBM_DATA_OBJECT_H_
