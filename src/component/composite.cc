#include "component/composite.h"

namespace dbm::component {

Status Composite::Export(const std::string& child, const TypeName& child_type,
                         const TypeName& as_type) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr c, children_.Get(child));
  if (!c->Provides(child_type)) {
    return Status::InvalidArgument("child '" + child +
                                   "' does not provide type '" + child_type +
                                   "'");
  }
  if (exports_.count(as_type) > 0) {
    return Status::AlreadyExists("type '" + as_type + "' already exported");
  }
  exports_[as_type] = child;
  AddProvided(as_type);
  return Status::OK();
}

Result<ComponentPtr> Composite::Delegate(const TypeName& exported_type) const {
  auto it = exports_.find(exported_type);
  if (it == exports_.end()) {
    return Status::NotFound("composite '" + name() + "' exports no type '" +
                            exported_type + "'");
  }
  return children_.Get(it->second);
}

}  // namespace dbm::component
