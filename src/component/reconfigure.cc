#include "component/reconfigure.h"

#include <algorithm>
#include <set>

namespace dbm::component {

Status Reconfigurer::Validate(const ReconfigurationPlan& plan) const {
  // Track names added/removed earlier in the same plan so later ops can
  // reference them.
  std::set<std::string> present;
  for (const std::string& n :
       const_cast<Registry*>(registry_)->Names()) {
    present.insert(n);
  }
  for (const ReconfigOp& op : plan.ops) {
    switch (op.kind) {
      case ReconfigOp::Kind::kAdd:
        if (op.component == nullptr) {
          return Status::InvalidArgument("add of null component");
        }
        if (present.count(op.name) > 0) {
          return Status::AlreadyExists("plan adds existing component '" +
                                       op.name + "'");
        }
        present.insert(op.name);
        break;
      case ReconfigOp::Kind::kRemove:
        if (present.count(op.name) == 0) {
          return Status::NotFound("plan removes unknown component '" +
                                  op.name + "'");
        }
        present.erase(op.name);
        break;
      case ReconfigOp::Kind::kRebind: {
        if (present.count(op.name) == 0) {
          return Status::NotFound("plan rebinds unknown component '" +
                                  op.name + "'");
        }
        if (present.count(op.target) == 0) {
          return Status::NotFound("plan rebinds to unknown provider '" +
                                  op.target + "'");
        }
        // Port existence/type checks happen at apply time when the
        // components (possibly added by this plan) are live.
        break;
      }
      case ReconfigOp::Kind::kUnbind:
        if (present.count(op.name) == 0) {
          return Status::NotFound("plan unbinds unknown component '" +
                                  op.name + "'");
        }
        break;
      case ReconfigOp::Kind::kSwap:
        if (present.count(op.name) == 0) {
          return Status::NotFound("plan swaps unknown component '" + op.name +
                                  "'");
        }
        if (op.component == nullptr) {
          return Status::InvalidArgument("swap with null replacement");
        }
        if (op.component->name() != op.name &&
            present.count(op.component->name()) > 0) {
          return Status::AlreadyExists("swap replacement name '" +
                                       op.component->name() +
                                       "' already present");
        }
        present.erase(op.name);
        present.insert(op.component->name());
        break;
    }
  }
  return Status::OK();
}

Status Reconfigurer::Execute(const ReconfigurationPlan& plan) {
  DBM_RETURN_NOT_OK_CTX(Validate(plan), "reconfiguration validation");

  std::vector<std::function<void()>> undo;
  pending_activation_.clear();
  Status failure;
  for (const ReconfigOp& op : plan.ops) {
    Status s;
    switch (op.kind) {
      case ReconfigOp::Kind::kAdd: s = ApplyAdd(op, &undo); break;
      case ReconfigOp::Kind::kRemove: s = ApplyRemove(op, &undo); break;
      case ReconfigOp::Kind::kRebind: s = ApplyRebind(op, &undo); break;
      case ReconfigOp::Kind::kUnbind: s = ApplyUnbind(op, &undo); break;
      case ReconfigOp::Kind::kSwap: s = ApplySwap(op, &undo); break;
    }
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++stats_.ops_applied;
  }

  // Activation phase: incoming components Init/Start only after the whole
  // new structure (including their own bindings) is in place. Each one
  // must then pass its Probe — the first supervised invoke — before the
  // plan may commit; a replacement that starts but cannot serve rolls
  // the switch back instead of becoming the architecture.
  if (failure.ok()) {
    for (const ComponentPtr& c : pending_activation_) {
      Status s;
      if (c->lifecycle() == Lifecycle::kCreated) s = c->DriveInit();
      if (s.ok() && c->lifecycle() != Lifecycle::kActive) s = c->DriveStart();
      if (s.ok()) {
        s = c->Probe();
        for (int retry = 0; !s.ok() && s.IsRetryable() && retry < kProbeRetries;
             ++retry) {
          s = c->Probe();
        }
        if (!s.ok()) s = s.WithContext("post-activation probe");
      }
      if (!s.ok()) {
        failure = s.WithContext("activating '" + c->name() + "'");
        break;
      }
    }
  }

  if (!failure.ok()) {
    // Back the switch off: undo in reverse order.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) (*it)();
    ++stats_.rolled_back;
    return Status::Aborted("reconfiguration rolled back: " +
                           failure.ToString());
  }
  ++stats_.committed;
  return Status::OK();
}

Status Reconfigurer::ApplyAdd(const ReconfigOp& op,
                              std::vector<std::function<void()>>* undo) {
  ComponentPtr c = op.component;
  DBM_RETURN_NOT_OK(registry_->Add(c));
  Registry* reg = registry_;
  undo->push_back([reg, c] {
    if (c->lifecycle() == Lifecycle::kActive) (void)c->DriveStop();
    // Force: a component that refuses to Stop during rollback still goes.
    (void)reg->ForceRemove(c->name());
  });
  pending_activation_.push_back(c);  // started in the activation phase
  return Status::OK();
}

Status Reconfigurer::ApplyRemove(const ReconfigOp& op,
                                 std::vector<std::function<void()>>* undo) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr victim, registry_->Get(op.name));
  bool was_active = victim->lifecycle() == Lifecycle::kActive;
  if (was_active) {
    DBM_RETURN_NOT_OK(victim->DriveStop());
  }
  Status s = registry_->Remove(op.name);
  if (!s.ok()) {
    if (was_active) (void)victim->DriveStart();
    return s;
  }
  Registry* reg = registry_;
  undo->push_back([reg, victim, was_active] {
    (void)reg->Add(victim);
    if (was_active) (void)victim->DriveStart();
  });
  return Status::OK();
}

Status Reconfigurer::ApplyRebind(const ReconfigOp& op,
                                 std::vector<std::function<void()>>* undo) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr owner, registry_->Get(op.name));
  Port* port = owner->FindPort(op.port);
  if (port == nullptr) {
    return Status::NotFound("no port '" + op.port + "' on '" + op.name + "'");
  }
  ComponentPtr previous = port->TargetShared();
  port->Block();
  Status s = registry_->Bind(op.name, op.port, op.target);
  if (!s.ok()) {
    port->Unblock();
    return s;
  }
  port->Unblock();
  undo->push_back([port, previous] {
    port->Block();
    port->SetTarget(previous);
    port->Unblock();
  });
  return Status::OK();
}

Status Reconfigurer::ApplyUnbind(const ReconfigOp& op,
                                 std::vector<std::function<void()>>* undo) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr owner, registry_->Get(op.name));
  Port* port = owner->FindPort(op.port);
  if (port == nullptr) {
    return Status::NotFound("no port '" + op.port + "' on '" + op.name + "'");
  }
  ComponentPtr previous = port->TargetShared();
  port->Block();
  port->SetTarget(nullptr);
  port->Unblock();
  undo->push_back([port, previous] {
    port->Block();
    port->SetTarget(previous);
    port->Unblock();
  });
  return Status::OK();
}

Status Reconfigurer::ApplySwap(const ReconfigOp& op,
                               std::vector<std::function<void()>>* undo) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr old_c, registry_->Get(op.name));
  ComponentPtr new_c = op.component;

  // Find every port in the system bound to the old provider; these are the
  // quiescence set for this swap.
  std::vector<Port*> inbound;
  for (const std::string& name : registry_->Names()) {
    ComponentPtr c = registry_->Get(name).value();
    for (Port* p : c->Ports()) {
      if (p->Peek() == old_c.get()) inbound.push_back(p);
    }
  }
  for (Port* p : inbound) p->Block();
  auto unblock_all = [&inbound] {
    for (Port* p : inbound) p->Unblock();
  };

  bool was_active = old_c->lifecycle() == Lifecycle::kActive;
  if (was_active) {
    Status s = old_c->DriveStop();
    if (!s.ok()) {
      unblock_all();
      return s;
    }
  }

  // State migration old → new (the State Manager's job in the paper).
  if (old_c->HasState()) {
    StateBlob blob;
    Status s = old_c->Checkpoint(&blob);
    if (s.ok()) s = new_c->Restore(blob);
    if (!s.ok()) {
      if (was_active) (void)old_c->DriveStart();
      unblock_all();
      return s.WithContext("state migration during swap of '" + op.name +
                           "'");
    }
    ++stats_.state_migrations;
  }

  // Detach inbound bindings and retire the old provider first: the
  // replacement may (and in ADL-driven swaps does) reuse its name.
  for (Port* p : inbound) p->SetTarget(nullptr);
  auto reattach_old = [&] {
    for (Port* p : inbound) p->SetTarget(old_c);
  };
  Lifecycle pre_removal = old_c->lifecycle();  // Remove() marks kRemoved
  Status s = registry_->Remove(op.name);
  if (!s.ok()) {
    reattach_old();
    if (was_active) (void)old_c->DriveStart();
    unblock_all();
    return s;
  }

  // Register the replacement; its Init/Start happens in the activation
  // phase once the plan's rebinds have populated its ports.
  s = registry_->Add(new_c);
  if (!s.ok()) {
    (void)registry_->Add(old_c);
    reattach_old();
    if (was_active) (void)old_c->DriveStart();
    unblock_all();
    return s.WithContext("registering replacement in swap of '" + op.name +
                         "'");
  }
  pending_activation_.push_back(new_c);

  for (Port* p : inbound) p->SetTarget(new_c);
  unblock_all();

  Registry* reg = registry_;
  std::vector<Port*> inbound_copy = inbound;
  undo->push_back([reg, old_c, new_c, inbound_copy, was_active,
                   pre_removal] {
    for (Port* p : inbound_copy) p->Block();
    for (Port* p : inbound_copy) p->SetTarget(nullptr);
    if (new_c->lifecycle() == Lifecycle::kActive) (void)new_c->DriveStop();
    (void)reg->ForceRemove(new_c->name());  // may share the old name
    (void)reg->Add(old_c);
    old_c->Reinstate(pre_removal);  // Remove() marked it kRemoved
    if (was_active && old_c->lifecycle() != Lifecycle::kActive) {
      (void)old_c->DriveStart();
    }
    for (Port* p : inbound_copy) p->SetTarget(old_c);
    for (Port* p : inbound_copy) p->Unblock();
  });
  return Status::OK();
}

}  // namespace dbm::component
