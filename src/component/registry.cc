#include "component/registry.h"

#include <algorithm>

namespace dbm::component {

Registry::~Registry() {
  for (auto& [_, c] : components_) {
    for (Port* port : c->Ports()) {
      port->SetTarget(nullptr);
    }
  }
}

Status Registry::Add(ComponentPtr component) {
  if (component == nullptr) {
    return Status::InvalidArgument("null component");
  }
  const std::string& name = component->name();
  if (components_.count(name) > 0) {
    return Status::AlreadyExists("component '" + name + "' already present");
  }
  components_[name] = std::move(component);
  insertion_order_.push_back(name);
  return Status::OK();
}

Status Registry::Remove(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return Status::NotFound("component '" + name + "' not present");
  }
  ComponentPtr victim = it->second;
  if (victim->lifecycle() == Lifecycle::kActive) {
    return Status::FailedPrecondition("component '" + name +
                                      "' is active; quiesce before removal");
  }
  // No dangling bindings may remain.
  for (const auto& [other_name, other] : components_) {
    if (other_name == name) continue;
    for (Port* port : other->Ports()) {
      if (port->Peek() == victim.get()) {
        return Status::FailedPrecondition(
            "component '" + other_name + "' port '" + port->name() +
            "' is still bound to '" + name + "'");
      }
    }
  }
  victim->MarkRemoved();
  components_.erase(it);
  insertion_order_.erase(std::remove(insertion_order_.begin(),
                                     insertion_order_.end(), name),
                         insertion_order_.end());
  return Status::OK();
}

Status Registry::ForceRemove(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return Status::NotFound("component '" + name + "' not present");
  }
  ComponentPtr victim = it->second;
  for (const auto& [other_name, other] : components_) {
    if (other_name == name) continue;
    for (Port* port : other->Ports()) {
      if (port->Peek() == victim.get()) port->SetTarget(nullptr);
    }
  }
  victim->MarkRemoved();
  components_.erase(it);
  insertion_order_.erase(std::remove(insertion_order_.begin(),
                                     insertion_order_.end(), name),
                         insertion_order_.end());
  return Status::OK();
}

Result<ComponentPtr> Registry::Get(const std::string& name) const {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return Status::NotFound("component '" + name + "' not present");
  }
  return it->second;
}

Status Registry::Bind(const std::string& component, const std::string& port,
                      const std::string& provider) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr from, Get(component));
  DBM_ASSIGN_OR_RETURN(ComponentPtr to, Get(provider));
  Port* p = from->FindPort(port);
  if (p == nullptr) {
    return Status::NotFound("no port '" + port + "' on '" + component + "'");
  }
  if (!to->Provides(p->type())) {
    return Status::InvalidArgument("provider '" + provider +
                                   "' does not provide type '" + p->type() +
                                   "' required by port '" + port + "'");
  }
  p->SetTarget(to);
  return Status::OK();
}

Status Registry::Unbind(const std::string& component,
                        const std::string& port) {
  DBM_ASSIGN_OR_RETURN(ComponentPtr from, Get(component));
  Port* p = from->FindPort(port);
  if (p == nullptr) {
    return Status::NotFound("no port '" + port + "' on '" + component + "'");
  }
  p->SetTarget(nullptr);
  return Status::OK();
}

std::vector<ComponentPtr> Registry::Providers(const TypeName& type) const {
  std::vector<ComponentPtr> out;
  for (const auto& [_, c] : components_) {
    if (c->Provides(type)) out.push_back(c);
  }
  return out;
}

ArchitectureSnapshot Registry::Snapshot() const {
  ArchitectureSnapshot snap;
  for (const auto& [name, c] : components_) {
    snap.components.push_back(name);
    std::vector<std::string> types(c->provided().begin(), c->provided().end());
    std::sort(types.begin(), types.end());
    snap.provided[name] = std::move(types);
    for (const Port* port :
         const_cast<Component&>(*c).Ports()) {
      if (port->Peek() != nullptr) {
        snap.bindings.push_back(BindingEdge{name, port->name(),
                                            port->Peek()->name(),
                                            port->type()});
      }
    }
  }
  std::sort(snap.bindings.begin(), snap.bindings.end(),
            [](const BindingEdge& a, const BindingEdge& b) {
              return std::tie(a.from_component, a.from_port) <
                     std::tie(b.from_component, b.from_port);
            });
  return snap;
}

Status Registry::StartAll() {
  for (const std::string& name : insertion_order_) {
    ComponentPtr c = components_.at(name);
    if (c->lifecycle() == Lifecycle::kCreated) {
      DBM_RETURN_NOT_OK(c->DriveInit().WithContext("initialising " + name));
    }
    if (c->lifecycle() == Lifecycle::kInitialised ||
        c->lifecycle() == Lifecycle::kQuiesced) {
      DBM_RETURN_NOT_OK(c->DriveStart().WithContext("starting " + name));
    }
  }
  return Status::OK();
}

Status Registry::StopAll() {
  for (auto it = insertion_order_.rbegin(); it != insertion_order_.rend();
       ++it) {
    ComponentPtr c = components_.at(*it);
    if (c->lifecycle() == Lifecycle::kActive) {
      DBM_RETURN_NOT_OK(c->DriveStop().WithContext("stopping " + *it));
    }
  }
  return Status::OK();
}

std::vector<std::string> Registry::Names() const {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const auto& [name, _] : components_) names.push_back(name);
  return names;
}

}  // namespace dbm::component
