// Composite components.
//
// Paper §3: "Sophisticated adaptive systems can be composed of components
// that in turn are composed of sub-components. In our architecture a
// component consists of both the application logic, the architectural
// description of itself ... and a copy of the switching rules relevant to
// it." A Composite owns an internal registry of children, re-exports
// selected child services as its own provided types (delegation), and
// drives the children's lifecycle with its own. Internal structure can be
// reconfigured without the outside world noticing — the black-box
// boundary the closed-adaptivity model preserves.

#ifndef DBM_COMPONENT_COMPOSITE_H_
#define DBM_COMPONENT_COMPOSITE_H_

#include <map>
#include <string>

#include "component/registry.h"

namespace dbm::component {

class Composite : public Component {
 public:
  Composite(std::string name, TypeName primary_type)
      : Component(std::move(name), std::move(primary_type)) {}

  /// Adds a child to the internal structure.
  Status AddChild(ComponentPtr child) { return children_.Add(std::move(child)); }

  /// Binds child ports within the internal structure.
  Status BindInternal(const std::string& child, const std::string& port,
                      const std::string& provider) {
    return children_.Bind(child, port, provider);
  }

  /// Exports a child's service: the composite now Provides `as_type`, and
  /// Delegate(as_type) resolves to that child.
  Status Export(const std::string& child, const TypeName& child_type,
                const TypeName& as_type);

  /// Resolves an exported type to the providing child (for callers that
  /// obtained the composite through a port and need the real service).
  Result<ComponentPtr> Delegate(const TypeName& exported_type) const;

  /// Direct access to the internal structure (the composite's own
  /// adaptivity manager reconfigures through this).
  Registry& children() { return children_; }
  const Registry& children() const { return children_; }

  // Lifecycle cascades over children, then self.
  Status Init() override { return Status::OK(); }
  Status Start() override { return children_.StartAll(); }
  Status Stop() override { return children_.StopAll(); }

  /// The composite's architectural self-description (§3): a structural
  /// snapshot of its internals.
  ArchitectureSnapshot SelfDescription() const {
    return children_.Snapshot();
  }

 private:
  Registry children_;
  std::map<TypeName, std::string> exports_;  // exported type → child name
};

}  // namespace dbm::component

#endif  // DBM_COMPONENT_COMPOSITE_H_
