// The component registry: the running system's component graph.
//
// Holds every live component, performs type-checked binding, and exports a
// structural snapshot (used by the ADL layer to compare the running
// architecture against a description).

#ifndef DBM_COMPONENT_REGISTRY_H_
#define DBM_COMPONENT_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "component/component.h"

namespace dbm::component {

/// One binding edge in a structural snapshot.
struct BindingEdge {
  std::string from_component;
  std::string from_port;
  std::string to_component;
  TypeName type;
};

/// Structural view of the running system.
struct ArchitectureSnapshot {
  std::vector<std::string> components;            // names, sorted
  std::map<std::string, std::vector<std::string>> provided;  // name → types
  std::vector<BindingEdge> bindings;
};

class Registry {
 public:
  Registry() = default;
  /// Destroying the registry dissolves the architecture: every port of
  /// every held component is unbound. Bindings are strong references, so
  /// cyclic architectures (A→B→A, self-bindings) would otherwise leak —
  /// the registry owns the structure and takes the cycles down with it.
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Adds a component; names are unique.
  Status Add(ComponentPtr component);

  /// Removes a quiesced (or never-started) component. Fails if any other
  /// component's port is still bound to it.
  Status Remove(const std::string& name);

  /// Rollback-path removal: evicts the component regardless of lifecycle
  /// (a component that fails to Stop during a rollback must still leave)
  /// and detaches any ports still bound to it. Only the reconfigurer's
  /// undo machinery should call this.
  Status ForceRemove(const std::string& name);

  Result<ComponentPtr> Get(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return components_.count(name) > 0;
  }

  /// Binds `component`.`port` to `provider`, checking that the provider
  /// provides the port's declared type.
  Status Bind(const std::string& component, const std::string& port,
              const std::string& provider);

  Status Unbind(const std::string& component, const std::string& port);

  /// All components providing `type` (for BEST/NEAREST-style selection).
  std::vector<ComponentPtr> Providers(const TypeName& type) const;

  /// Structural export for ADL comparison.
  ArchitectureSnapshot Snapshot() const;

  /// Drives Init+Start over all components in insertion order.
  Status StartAll();
  /// Drives Stop over all components in reverse insertion order.
  Status StopAll();

  size_t size() const { return components_.size(); }
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ComponentPtr> components_;  // sorted, deterministic
  std::vector<std::string> insertion_order_;
};

}  // namespace dbm::component

#endif  // DBM_COMPONENT_REGISTRY_H_
