// The fine-grained component model.
//
// The paper's architecture dissolves DBMS and OS into "open sets of
// fine-grained components" with concrete boundaries present in the running
// system. This module is that runtime: components declare the service
// types they provide and the ports they require; ports are bound at run
// time and can be *re*bound by the adaptivity manager; a component carries
// its own architectural description (paper §3: a component consists of its
// application logic, the architectural description of itself, its
// switching rules and a lightweight adaptivity manager).
//
// Two component planes exist in this codebase:
//  * src/os: the protection-level plane (segments + ORB) proving the
//    mechanism is cheap — Table 1;
//  * this module: the C++-native plane on which the data-management
//    services (buffer manager, operators, monitors, ...) are built.
// The componentisation bench (A3) measures the cost of this plane's
// indirection against a direct call and against the ORB-protected plane.

#ifndef DBM_COMPONENT_COMPONENT_H_
#define DBM_COMPONENT_COMPONENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbm::component {

/// Service/interface types are identified by name ("getpage", "optimiser",
/// "codec", ...). Bind-time checking compares these names.
using TypeName = std::string;

/// Lifecycle of a component instance.
enum class Lifecycle : uint8_t {
  kCreated,      // constructed, ports unbound
  kInitialised,  // Init() succeeded
  kActive,       // Start() succeeded, serving calls
  kQuiesced,     // Stop() succeeded; safe to rebind/replace
  kRemoved,      // detached from the registry
};

const char* LifecycleName(Lifecycle s);

/// Opaque serialized component state, produced by Checkpoint and consumed
/// by Restore. The State Manager moves these between component versions
/// (and between devices when a component migrates).
struct StateBlob {
  std::string type;  // component type that produced it
  std::vector<int64_t> words;
  std::string text;
};

class Component;

/// A required port: a rebindable, blockable reference to a provider.
///
/// Blocking is the quiescence mechanism: during a reconfiguration the
/// adaptivity manager blocks affected ports, swaps the target, and
/// unblocks. A call arriving while blocked fails with Unavailable (callers
/// retry at the next safe point) rather than reaching a half-switched
/// provider.
class Port {
 public:
  Port(std::string name, TypeName type, bool optional)
      : name_(std::move(name)), type_(std::move(type)), optional_(optional) {}

  const std::string& name() const { return name_; }
  const TypeName& type() const { return type_; }
  bool optional() const { return optional_; }
  bool bound() const { return target_ != nullptr; }
  bool blocked() const { return blocked_; }
  uint64_t call_count() const {
    return calls_.load(std::memory_order_relaxed);
  }

  void Block() { blocked_ = true; }
  void Unblock() { blocked_ = false; }

  /// The current provider, or Unavailable when blocked/unbound.
  Result<Component*> Resolve() {
    if (blocked_) {
      return Status::Unavailable("port '" + name_ +
                                 "' blocked for reconfiguration");
    }
    if (target_ == nullptr) {
      return Status::Unavailable("port '" + name_ + "' is unbound");
    }
    // Relaxed atomic: ports on the parallel plane (buffer → disk/policy)
    // are resolved from many workers at once.
    calls_.fetch_add(1, std::memory_order_relaxed);
    return target_.get();
  }

  /// Provider without counting a call (introspection).
  Component* Peek() const { return target_.get(); }
  std::shared_ptr<Component> TargetShared() const { return target_; }

  /// Rebind target (type checking is done by the registry/owner).
  void SetTarget(std::shared_ptr<Component> target) {
    target_ = std::move(target);
    ++generation_;
  }
  uint64_t generation() const { return generation_; }

 private:
  std::string name_;
  TypeName type_;
  bool optional_;
  bool blocked_ = false;
  std::shared_ptr<Component> target_;
  std::atomic<uint64_t> calls_{0};
  uint64_t generation_ = 0;
};

/// Base class for every runtime component.
///
/// Derived classes declare provided types and required ports in their
/// constructor, implement the lifecycle hooks they need, and expose their
/// service API as ordinary C++ methods reached via `As<T>()`.
class Component : public std::enable_shared_from_this<Component> {
 public:
  Component(std::string name, TypeName primary_type)
      : name_(std::move(name)) {
    provided_.insert(std::move(primary_type));
  }
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  Lifecycle lifecycle() const { return lifecycle_; }

  /// The service types this component provides.
  const std::unordered_set<TypeName>& provided() const { return provided_; }
  bool Provides(const TypeName& type) const {
    return provided_.count(type) > 0;
  }

  /// Declared required ports, keyed by port name.
  Port* FindPort(const std::string& port_name) {
    auto it = ports_.find(port_name);
    return it == ports_.end() ? nullptr : it->second.get();
  }
  const Port* FindPort(const std::string& port_name) const {
    auto it = ports_.find(port_name);
    return it == ports_.end() ? nullptr : it->second.get();
  }
  std::vector<Port*> Ports() {
    std::vector<Port*> out;
    out.reserve(ports_.size());
    for (auto& [_, p] : port_order_helper()) out.push_back(p);
    return out;
  }

  /// Downcast to the concrete service interface.
  template <typename T>
  T* As() {
    return dynamic_cast<T*>(this);
  }

  /// Resolves the provider bound to `port_name` as interface T.
  template <typename T>
  Result<T*> Require(const std::string& port_name) {
    Port* port = FindPort(port_name);
    if (port == nullptr) {
      return Status::NotFound("no port '" + port_name + "' on '" + name_ +
                              "'");
    }
    DBM_ASSIGN_OR_RETURN(Component * target, port->Resolve());
    T* typed = dynamic_cast<T*>(target);
    if (typed == nullptr) {
      return Status::Internal("provider bound to '" + port_name +
                              "' does not implement the expected interface");
    }
    return typed;
  }

  // --- lifecycle hooks (defaults succeed) ---
  virtual Status Init() { return Status::OK(); }
  virtual Status Start() { return Status::OK(); }
  virtual Status Stop() { return Status::OK(); }

  /// Post-activation health probe — the "first supervised invoke" of a
  /// freshly switched-in component. The reconfigurer calls this after
  /// Start and rolls the whole plan back if it fails (transient,
  /// IsRetryable failures get a bounded number of retries first), so a
  /// replacement that activates but cannot actually serve never becomes
  /// the committed architecture.
  virtual Status Probe() { return Status::OK(); }

  // --- state management (for migration / version switch) ---
  virtual bool HasState() const { return false; }
  virtual Status Checkpoint(StateBlob* out) const {
    (void)out;
    return Status::NotImplemented("component '" + name_ + "' is stateless");
  }
  virtual Status Restore(const StateBlob& blob) {
    (void)blob;
    return Status::NotImplemented("component '" + name_ + "' is stateless");
  }

  // --- lifecycle driving (called by the registry / reconfigurer) ---
  Status DriveInit();
  Status DriveStart();
  Status DriveStop();
  void MarkRemoved() { lifecycle_ = Lifecycle::kRemoved; }

  /// Reverse of MarkRemoved for rollback paths: a component re-added to
  /// the registry resumes the lifecycle it held at removal, so it can be
  /// restarted (DriveStart refuses kRemoved).
  void Reinstate(Lifecycle pre_removal) {
    if (lifecycle_ == Lifecycle::kRemoved) lifecycle_ = pre_removal;
  }

 protected:
  /// Adds another provided type (a component may provide several).
  void AddProvided(TypeName type) { provided_.insert(std::move(type)); }

  /// Declares a required port. Call from the derived constructor.
  Port* DeclarePort(const std::string& port_name, TypeName type,
                    bool optional = false) {
    auto port = std::make_unique<Port>(port_name, std::move(type), optional);
    Port* raw = port.get();
    ports_.emplace(port_name, std::move(port));
    port_decl_order_.push_back(port_name);
    return raw;
  }

 private:
  std::vector<std::pair<std::string, Port*>> port_order_helper() {
    std::vector<std::pair<std::string, Port*>> out;
    for (const std::string& n : port_decl_order_) {
      out.emplace_back(n, ports_.at(n).get());
    }
    return out;
  }

  std::string name_;
  std::unordered_set<TypeName> provided_;
  std::unordered_map<std::string, std::unique_ptr<Port>> ports_;
  std::vector<std::string> port_decl_order_;
  Lifecycle lifecycle_ = Lifecycle::kCreated;
};

using ComponentPtr = std::shared_ptr<Component>;

}  // namespace dbm::component

#endif  // DBM_COMPONENT_COMPONENT_H_
