// Transactional reconfiguration.
//
// Paper §3: when adaptivity triggers, the session manager designs an
// alternative component architecture and the Adaptivity Manager "carries
// out the unbinding and rebinding of components ... it must ensure the
// instantiation adheres to transactional style properties. That is, the
// switch can be backed off if something goes wrong."
//
// A ReconfigurationPlan is an ordered list of operations (add, remove,
// rebind, swap). Execute() validates the whole plan against the registry,
// then applies operations one by one while recording undo actions; any
// failure rolls the applied prefix back in reverse order and returns
// Aborted. Ports touched by the plan are blocked for its duration, so
// in-flight callers observe Unavailable (and retry at a safe point) rather
// than a half-switched provider.

#ifndef DBM_COMPONENT_RECONFIGURE_H_
#define DBM_COMPONENT_RECONFIGURE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "component/registry.h"

namespace dbm::component {

/// One reconfiguration step.
struct ReconfigOp {
  enum class Kind {
    kAdd,     // add `component` to the registry (init+start it)
    kRemove,  // quiesce and remove component `name`
    kRebind,  // rebind `name`.`port` to provider `target`
    kUnbind,  // unbind `name`.`port`
    kSwap,    // replace provider `name` with `component`, migrating state
              // and all inbound bindings
  };
  Kind kind;
  std::string name;        // component being removed/rebound/swapped
  std::string port;        // for kRebind
  std::string target;      // for kRebind: new provider name
  ComponentPtr component;  // for kAdd / kSwap: the incoming instance
};

struct ReconfigurationPlan {
  std::vector<ReconfigOp> ops;

  ReconfigurationPlan& Add(ComponentPtr c) {
    ops.push_back({ReconfigOp::Kind::kAdd, c->name(), "", "", std::move(c)});
    return *this;
  }
  ReconfigurationPlan& Remove(std::string name) {
    ops.push_back(
        {ReconfigOp::Kind::kRemove, std::move(name), "", "", nullptr});
    return *this;
  }
  ReconfigurationPlan& Rebind(std::string component, std::string port,
                              std::string provider) {
    ops.push_back({ReconfigOp::Kind::kRebind, std::move(component),
                   std::move(port), std::move(provider), nullptr});
    return *this;
  }
  ReconfigurationPlan& Unbind(std::string component, std::string port) {
    ops.push_back({ReconfigOp::Kind::kUnbind, std::move(component),
                   std::move(port), "", nullptr});
    return *this;
  }
  ReconfigurationPlan& Swap(std::string old_name, ComponentPtr replacement) {
    ops.push_back({ReconfigOp::Kind::kSwap, std::move(old_name), "", "",
                   std::move(replacement)});
    return *this;
  }

  bool empty() const { return ops.empty(); }
};

/// Outcome statistics for instrumentation (bench_fig1_loop reads these).
struct ReconfigStats {
  uint64_t committed = 0;
  uint64_t rolled_back = 0;
  uint64_t ops_applied = 0;
  uint64_t state_migrations = 0;
};

class Reconfigurer {
 public:
  /// Retries granted to a component whose post-activation Probe fails
  /// with a transient (IsRetryable) status before the plan rolls back.
  static constexpr int kProbeRetries = 2;

  explicit Reconfigurer(Registry* registry) : registry_(registry) {}

  /// Validates and applies `plan` transactionally. On failure everything
  /// applied so far is undone and the original architecture restored.
  Status Execute(const ReconfigurationPlan& plan);

  const ReconfigStats& stats() const { return stats_; }

 private:
  Status Validate(const ReconfigurationPlan& plan) const;
  Status ApplyAdd(const ReconfigOp& op,
                  std::vector<std::function<void()>>* undo);
  Status ApplyRemove(const ReconfigOp& op,
                     std::vector<std::function<void()>>* undo);
  Status ApplyRebind(const ReconfigOp& op,
                     std::vector<std::function<void()>>* undo);
  Status ApplyUnbind(const ReconfigOp& op,
                     std::vector<std::function<void()>>* undo);
  Status ApplySwap(const ReconfigOp& op,
                   std::vector<std::function<void()>>* undo);

  Registry* registry_;
  ReconfigStats stats_;
  /// Components added/swapped in by the plan currently executing; they are
  /// initialised and started only after all structural ops succeed.
  std::vector<ComponentPtr> pending_activation_;
};

}  // namespace dbm::component

#endif  // DBM_COMPONENT_RECONFIGURE_H_
