#include "component/component.h"

namespace dbm::component {

const char* LifecycleName(Lifecycle s) {
  switch (s) {
    case Lifecycle::kCreated: return "created";
    case Lifecycle::kInitialised: return "initialised";
    case Lifecycle::kActive: return "active";
    case Lifecycle::kQuiesced: return "quiesced";
    case Lifecycle::kRemoved: return "removed";
  }
  return "?";
}

Status Component::DriveInit() {
  if (lifecycle_ != Lifecycle::kCreated) {
    return Status::FailedPrecondition("Init from state " +
                                      std::string(LifecycleName(lifecycle_)) +
                                      " on '" + name_ + "'");
  }
  for (auto& [pname, port] : ports_) {
    if (!port->optional() && !port->bound()) {
      return Status::FailedPrecondition("required port '" + pname + "' of '" +
                                        name_ + "' unbound at Init");
    }
  }
  DBM_RETURN_NOT_OK(Init());
  lifecycle_ = Lifecycle::kInitialised;
  return Status::OK();
}

Status Component::DriveStart() {
  if (lifecycle_ != Lifecycle::kInitialised &&
      lifecycle_ != Lifecycle::kQuiesced) {
    return Status::FailedPrecondition("Start from state " +
                                      std::string(LifecycleName(lifecycle_)) +
                                      " on '" + name_ + "'");
  }
  DBM_RETURN_NOT_OK(Start());
  lifecycle_ = Lifecycle::kActive;
  return Status::OK();
}

Status Component::DriveStop() {
  if (lifecycle_ == Lifecycle::kQuiesced) return Status::OK();  // idempotent
  if (lifecycle_ != Lifecycle::kActive) {
    return Status::FailedPrecondition("Stop from state " +
                                      std::string(LifecycleName(lifecycle_)) +
                                      " on '" + name_ + "'");
  }
  DBM_RETURN_NOT_OK(Stop());
  lifecycle_ = Lifecycle::kQuiesced;
  return Status::OK();
}

}  // namespace dbm::component
