// Validation, diffing and lowering of ADL configurations.
//
// Validate  — the "validity of change can be evaluated at runtime" check
//             from §3: every instance's type exists, every binding is
//             type-compatible, every mandatory port is bound.
// Diff      — compares two configurations (e.g. DockedSession vs
//             WirelessSession, Fig 5) and yields the instances/bindings to
//             add, remove or retarget.
// Lower     — turns a diff into a transactional ReconfigurationPlan for
//             the runtime registry, given a factory that can instantiate
//             component types.
// Conform   — checks that a running registry's snapshot matches a
//             configuration (the session monitor's structural constraint).

#ifndef DBM_ADL_ARCHITECTURE_H_
#define DBM_ADL_ARCHITECTURE_H_

#include <functional>
#include <string>
#include <vector>

#include "adl/ast.h"
#include "common/result.h"
#include "component/reconfigure.h"
#include "component/registry.h"

namespace dbm::adl {

/// Validates `config` against the component types in `doc`.
Status Validate(const Document& doc, const ConfigurationDecl& config);

/// The structural delta between two valid configurations.
struct ConfigurationDiff {
  std::vector<InstanceDecl> added_instances;
  std::vector<std::string> removed_instances;
  /// Same instance name, different component type: swapped in place (the
  /// runtime Swap migrates state and retargets inbound bindings).
  std::vector<InstanceDecl> replaced_instances;
  /// Bindings to (re)apply: new/retargeted bindings, plus every outbound
  /// binding of an added or replaced instance (whose ports start unbound).
  std::vector<BindDecl> bindings_to_apply;
  /// Bindings present in `from` but deliberately absent in `to`, on
  /// instances that survive unchanged.
  std::vector<BindDecl> bindings_to_drop;

  bool empty() const {
    return added_instances.empty() && removed_instances.empty() &&
           replaced_instances.empty() && bindings_to_apply.empty() &&
           bindings_to_drop.empty();
  }
};

/// Computes from → to. Both configurations must validate against `doc`.
Result<ConfigurationDiff> Diff(const Document& doc,
                               const ConfigurationDecl& from,
                               const ConfigurationDecl& to);

/// Creates runtime components for ADL instances.
using ComponentFactory =
    std::function<Result<component::ComponentPtr>(const InstanceDecl&)>;

/// Lowers a diff onto a reconfiguration plan: add new instances, apply
/// retargeted/new bindings, drop stale bindings, remove old instances (in
/// that order, so removals never strand a bound port).
Result<component::ReconfigurationPlan> LowerDiff(
    const ConfigurationDiff& diff, const ComponentFactory& factory);

/// Instantiates a full configuration into an (empty) registry.
Status Instantiate(const Document& doc, const ConfigurationDecl& config,
                   const ComponentFactory& factory,
                   component::Registry* registry);

/// Structural conformance: does the running snapshot match `config`?
/// Reports the first discrepancy in the error message.
Status Conforms(const Document& doc, const ConfigurationDecl& config,
                const component::ArchitectureSnapshot& snapshot);

}  // namespace dbm::adl

#endif  // DBM_ADL_ARCHITECTURE_H_
