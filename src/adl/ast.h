// AST for the Darwin-style architecture description language.
//
// The paper illustrates its architectures (Figs 4 and 5) in the graphical
// form of Darwin [Magee et al. 95]: components expose *provided* services
// (filled circles) and *required* services (empty circles); configurations
// instantiate component types and bind requirements to provisions. We give
// the language a concrete textual syntax:
//
//   component QueryOptimiser {
//     provide plan : optimiser;
//     require stats : statistics;
//     require net : netdriver optional;
//   }
//
//   configuration DockedSession {
//     inst opt : QueryOptimiser;
//     inst eth : EthernetDriver;
//     bind opt.net -- eth;
//   }
//
// Configurations can be validated, compared (diffed) and lowered onto the
// runtime component registry as transactional reconfiguration plans —
// which is precisely the docked→wireless switchover of Fig 5.

#ifndef DBM_ADL_AST_H_
#define DBM_ADL_AST_H_

#include <map>
#include <string>
#include <vector>

namespace dbm::adl {

/// A provided service: `provide <name> : <type>;` (type defaults to name).
struct ProvideDecl {
  std::string name;
  std::string type;
};

/// A required port: `require <name> : <type> [optional];`.
struct RequireDecl {
  std::string name;
  std::string type;
  bool optional = false;
};

/// `component <Name> { ... }`
struct ComponentTypeDecl {
  std::string name;
  std::vector<ProvideDecl> provides;
  std::vector<RequireDecl> required;

  const RequireDecl* FindRequire(const std::string& port) const {
    for (const RequireDecl& r : required) {
      if (r.name == port) return &r;
    }
    return nullptr;
  }
  bool ProvidesType(const std::string& type) const {
    for (const ProvideDecl& p : provides) {
      if (p.type == type) return true;
    }
    return false;
  }
};

/// `inst <name> : <ComponentType>;`
struct InstanceDecl {
  std::string name;
  std::string type;
};

/// `bind <inst>.<port> -- <inst>;`
struct BindDecl {
  std::string from_instance;
  std::string from_port;
  std::string to_instance;
};

/// `configuration <Name> { ... }`
struct ConfigurationDecl {
  std::string name;
  std::vector<InstanceDecl> instances;
  std::vector<BindDecl> bindings;

  const InstanceDecl* FindInstance(const std::string& name_) const {
    for (const InstanceDecl& i : instances) {
      if (i.name == name_) return &i;
    }
    return nullptr;
  }
};

/// A parsed ADL document.
struct Document {
  std::map<std::string, ComponentTypeDecl> types;
  std::map<std::string, ConfigurationDecl> configurations;
};

}  // namespace dbm::adl

#endif  // DBM_ADL_AST_H_
