#include "adl/parser.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace dbm::adl {

namespace {

enum class TokKind {
  kIdent,
  kLBrace,
  kRBrace,
  kColon,
  kSemi,
  kDot,
  kBindArrow,  // "--"
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '-') {
        out.push_back({TokKind::kBindArrow, "--", line_});
        pos_ += 2;
        continue;
      }
      switch (c) {
        case '{': out.push_back({TokKind::kLBrace, "{", line_}); ++pos_; continue;
        case '}': out.push_back({TokKind::kRBrace, "}", line_}); ++pos_; continue;
        case ':': out.push_back({TokKind::kColon, ":", line_}); ++pos_; continue;
        case ';': out.push_back({TokKind::kSemi, ";", line_}); ++pos_; continue;
        case '.': out.push_back({TokKind::kDot, ".", line_}); ++pos_; continue;
        default: break;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_' || src_[pos_] == '-')) {
          // Allow '-' inside identifiers but not a trailing "--" arrow.
          if (src_[pos_] == '-' && pos_ + 1 < src_.size() &&
              src_[pos_ + 1] == '-') {
            break;
          }
          ++pos_;
        }
        out.push_back(
            {TokKind::kIdent, std::string(src_.substr(start, pos_ - start)),
             line_});
        continue;
      }
      return Status::ParseError(
          StrFormat("line %d: unexpected character '%c'", line_, c));
    }
    out.push_back({TokKind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Document> Run() {
    Document doc;
    while (!At(TokKind::kEnd)) {
      DBM_ASSIGN_OR_RETURN(std::string kw, ExpectIdent());
      if (kw == "component") {
        DBM_ASSIGN_OR_RETURN(ComponentTypeDecl decl, ParseComponent());
        if (doc.types.count(decl.name) > 0) {
          return Err("duplicate component type '" + decl.name + "'");
        }
        doc.types[decl.name] = std::move(decl);
      } else if (kw == "configuration") {
        DBM_ASSIGN_OR_RETURN(ConfigurationDecl decl, ParseConfiguration());
        if (doc.configurations.count(decl.name) > 0) {
          return Err("duplicate configuration '" + decl.name + "'");
        }
        doc.configurations[decl.name] = std::move(decl);
      } else {
        return Err("expected 'component' or 'configuration', got '" + kw +
                   "'");
      }
    }
    return doc;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("line %d: %s", Peek().line, msg.c_str()));
  }

  const Token& Peek() const { return toks_[idx_]; }
  bool At(TokKind k) const { return Peek().kind == k; }
  Token Take() { return toks_[idx_++]; }

  Status Expect(TokKind k, const char* what) {
    if (!At(k)) return Err(std::string("expected ") + what);
    Take();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (!At(TokKind::kIdent)) return Err("expected identifier");
    return Take().text;
  }

  Result<ComponentTypeDecl> ParseComponent() {
    ComponentTypeDecl decl;
    DBM_ASSIGN_OR_RETURN(decl.name, ExpectIdent());
    DBM_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (!At(TokKind::kRBrace)) {
      DBM_ASSIGN_OR_RETURN(std::string kw, ExpectIdent());
      if (kw == "provide") {
        ProvideDecl p;
        DBM_ASSIGN_OR_RETURN(p.name, ExpectIdent());
        if (At(TokKind::kColon)) {
          Take();
          DBM_ASSIGN_OR_RETURN(p.type, ExpectIdent());
        } else {
          p.type = p.name;
        }
        DBM_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
        decl.provides.push_back(std::move(p));
      } else if (kw == "require") {
        RequireDecl r;
        DBM_ASSIGN_OR_RETURN(r.name, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kColon, "':'"));
        DBM_ASSIGN_OR_RETURN(r.type, ExpectIdent());
        if (At(TokKind::kIdent) && Peek().text == "optional") {
          Take();
          r.optional = true;
        }
        DBM_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
        decl.required.push_back(std::move(r));
      } else {
        return Err("expected 'provide' or 'require', got '" + kw + "'");
      }
    }
    Take();  // }
    return decl;
  }

  Result<ConfigurationDecl> ParseConfiguration() {
    ConfigurationDecl decl;
    DBM_ASSIGN_OR_RETURN(decl.name, ExpectIdent());
    DBM_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (!At(TokKind::kRBrace)) {
      DBM_ASSIGN_OR_RETURN(std::string kw, ExpectIdent());
      if (kw == "inst") {
        InstanceDecl inst;
        DBM_ASSIGN_OR_RETURN(inst.name, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kColon, "':'"));
        DBM_ASSIGN_OR_RETURN(inst.type, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
        decl.instances.push_back(std::move(inst));
      } else if (kw == "bind") {
        BindDecl b;
        DBM_ASSIGN_OR_RETURN(b.from_instance, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kDot, "'.'"));
        DBM_ASSIGN_OR_RETURN(b.from_port, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kBindArrow, "'--'"));
        DBM_ASSIGN_OR_RETURN(b.to_instance, ExpectIdent());
        DBM_RETURN_NOT_OK(Expect(TokKind::kSemi, "';'"));
        decl.bindings.push_back(std::move(b));
      } else {
        return Err("expected 'inst' or 'bind', got '" + kw + "'");
      }
    }
    Take();  // }
    return decl;
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view source) {
  Lexer lexer(source);
  DBM_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(std::move(toks));
  return parser.Run();
}

std::string ToSource(const Document& doc) {
  std::ostringstream out;
  for (const auto& [name, type] : doc.types) {
    out << "component " << name << " {\n";
    for (const ProvideDecl& p : type.provides) {
      out << "  provide " << p.name << " : " << p.type << ";\n";
    }
    for (const RequireDecl& r : type.required) {
      out << "  require " << r.name << " : " << r.type
          << (r.optional ? " optional" : "") << ";\n";
    }
    out << "}\n";
  }
  for (const auto& [name, cfg] : doc.configurations) {
    out << "configuration " << name << " {\n";
    for (const InstanceDecl& i : cfg.instances) {
      out << "  inst " << i.name << " : " << i.type << ";\n";
    }
    for (const BindDecl& b : cfg.bindings) {
      out << "  bind " << b.from_instance << "." << b.from_port << " -- "
          << b.to_instance << ";\n";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace dbm::adl
