// Recursive-descent parser for the Darwin-style ADL.

#ifndef DBM_ADL_PARSER_H_
#define DBM_ADL_PARSER_H_

#include <string>
#include <string_view>

#include "adl/ast.h"
#include "common/result.h"

namespace dbm::adl {

/// Parses an ADL document. Errors carry 1-based line numbers. Comments run
/// from `//` to end of line.
Result<Document> Parse(std::string_view source);

/// Pretty-prints a configuration back to ADL text (round-trips through
/// Parse).
std::string ToSource(const Document& doc);

}  // namespace dbm::adl

#endif  // DBM_ADL_PARSER_H_
