#include "adl/architecture.h"

#include <algorithm>
#include <map>
#include <set>

namespace dbm::adl {

Status Validate(const Document& doc, const ConfigurationDecl& config) {
  std::set<std::string> names;
  for (const InstanceDecl& inst : config.instances) {
    if (!names.insert(inst.name).second) {
      return Status::InvalidArgument("duplicate instance '" + inst.name +
                                     "' in configuration '" + config.name +
                                     "'");
    }
    if (doc.types.count(inst.type) == 0) {
      return Status::NotFound("instance '" + inst.name +
                              "' has undeclared type '" + inst.type + "'");
    }
  }

  std::set<std::pair<std::string, std::string>> bound;
  for (const BindDecl& b : config.bindings) {
    const InstanceDecl* from = config.FindInstance(b.from_instance);
    if (from == nullptr) {
      return Status::NotFound("binding from unknown instance '" +
                              b.from_instance + "'");
    }
    const InstanceDecl* to = config.FindInstance(b.to_instance);
    if (to == nullptr) {
      return Status::NotFound("binding to unknown instance '" +
                              b.to_instance + "'");
    }
    const ComponentTypeDecl& from_type = doc.types.at(from->type);
    const RequireDecl* port = from_type.FindRequire(b.from_port);
    if (port == nullptr) {
      return Status::NotFound("type '" + from->type + "' has no port '" +
                              b.from_port + "'");
    }
    const ComponentTypeDecl& to_type = doc.types.at(to->type);
    if (!to_type.ProvidesType(port->type)) {
      return Status::InvalidArgument(
          "binding " + b.from_instance + "." + b.from_port + " -- " +
          b.to_instance + ": '" + to->type + "' does not provide type '" +
          port->type + "'");
    }
    if (!bound.insert({b.from_instance, b.from_port}).second) {
      return Status::InvalidArgument("port " + b.from_instance + "." +
                                     b.from_port + " bound twice");
    }
  }

  // Every mandatory port of every instance must be bound.
  for (const InstanceDecl& inst : config.instances) {
    const ComponentTypeDecl& type = doc.types.at(inst.type);
    for (const RequireDecl& r : type.required) {
      if (!r.optional && bound.count({inst.name, r.name}) == 0) {
        return Status::FailedPrecondition(
            "mandatory port " + inst.name + "." + r.name +
            " is unbound in configuration '" + config.name + "'");
      }
    }
  }
  return Status::OK();
}

Result<ConfigurationDiff> Diff(const Document& doc,
                               const ConfigurationDecl& from,
                               const ConfigurationDecl& to) {
  DBM_RETURN_NOT_OK_CTX(Validate(doc, from), "diff source");
  DBM_RETURN_NOT_OK_CTX(Validate(doc, to), "diff target");

  ConfigurationDiff diff;
  std::map<std::string, std::string> from_types, to_types;
  for (const InstanceDecl& i : from.instances) from_types[i.name] = i.type;
  for (const InstanceDecl& i : to.instances) to_types[i.name] = i.type;

  std::set<std::string> fresh;  // instances whose ports start unbound
  for (const InstanceDecl& i : to.instances) {
    auto it = from_types.find(i.name);
    if (it == from_types.end()) {
      diff.added_instances.push_back(i);
      fresh.insert(i.name);
    } else if (it->second != i.type) {
      diff.replaced_instances.push_back(i);
      fresh.insert(i.name);
    }
  }
  for (const InstanceDecl& i : from.instances) {
    if (to_types.count(i.name) == 0) diff.removed_instances.push_back(i.name);
  }

  auto key = [](const BindDecl& b) {
    return b.from_instance + "." + b.from_port;
  };
  std::map<std::string, const BindDecl*> from_binds, to_binds;
  for (const BindDecl& b : from.bindings) from_binds[key(b)] = &b;
  for (const BindDecl& b : to.bindings) to_binds[key(b)] = &b;

  for (const BindDecl& b : to.bindings) {
    auto it = from_binds.find(key(b));
    // Reapply when new, retargeted, or originating from a fresh instance.
    // (A binding whose *target* was replaced in place needs no rebind: the
    // runtime Swap retargets inbound ports itself.)
    if (it == from_binds.end() || it->second->to_instance != b.to_instance ||
        fresh.count(b.from_instance) > 0) {
      diff.bindings_to_apply.push_back(b);
    }
  }
  for (const BindDecl& b : from.bindings) {
    if (to_binds.count(key(b)) == 0 && to_types.count(b.from_instance) > 0 &&
        fresh.count(b.from_instance) == 0) {
      diff.bindings_to_drop.push_back(b);
    }
  }
  return diff;
}

Result<component::ReconfigurationPlan> LowerDiff(
    const ConfigurationDiff& diff, const ComponentFactory& factory) {
  component::ReconfigurationPlan plan;
  for (const InstanceDecl& inst : diff.added_instances) {
    DBM_ASSIGN_OR_RETURN(component::ComponentPtr c, factory(inst));
    plan.Add(std::move(c));
  }
  for (const InstanceDecl& inst : diff.replaced_instances) {
    DBM_ASSIGN_OR_RETURN(component::ComponentPtr c, factory(inst));
    plan.Swap(inst.name, std::move(c));
  }
  for (const BindDecl& b : diff.bindings_to_apply) {
    plan.Rebind(b.from_instance, b.from_port, b.to_instance);
  }
  for (const BindDecl& b : diff.bindings_to_drop) {
    plan.Unbind(b.from_instance, b.from_port);
  }
  for (const std::string& name : diff.removed_instances) {
    plan.Remove(name);
  }
  return plan;
}

Status Instantiate(const Document& doc, const ConfigurationDecl& config,
                   const ComponentFactory& factory,
                   component::Registry* registry) {
  DBM_RETURN_NOT_OK(Validate(doc, config));
  for (const InstanceDecl& inst : config.instances) {
    DBM_ASSIGN_OR_RETURN(component::ComponentPtr c, factory(inst));
    DBM_RETURN_NOT_OK(registry->Add(std::move(c)));
  }
  for (const BindDecl& b : config.bindings) {
    DBM_RETURN_NOT_OK(
        registry->Bind(b.from_instance, b.from_port, b.to_instance));
  }
  return Status::OK();
}

Status Conforms(const Document& doc, const ConfigurationDecl& config,
                const component::ArchitectureSnapshot& snapshot) {
  DBM_RETURN_NOT_OK(Validate(doc, config));

  std::set<std::string> described;
  for (const InstanceDecl& inst : config.instances) {
    described.insert(inst.name);
    if (std::find(snapshot.components.begin(), snapshot.components.end(),
                  inst.name) == snapshot.components.end()) {
      return Status::ConstraintBroken("described instance '" + inst.name +
                                      "' missing from running system");
    }
    // The running component must actually BE the described type (its
    // provided set carries the component-type name).
    auto prov = snapshot.provided.find(inst.name);
    if (prov == snapshot.provided.end() ||
        std::find(prov->second.begin(), prov->second.end(), inst.type) ==
            prov->second.end()) {
      return Status::ConstraintBroken("running component '" + inst.name +
                                      "' is not an instance of type '" +
                                      inst.type + "'");
    }
  }
  for (const std::string& name : snapshot.components) {
    if (described.count(name) == 0) {
      return Status::ConstraintBroken("running component '" + name +
                                      "' not in described architecture");
    }
  }

  std::map<std::pair<std::string, std::string>, std::string> live;
  for (const component::BindingEdge& e : snapshot.bindings) {
    live[{e.from_component, e.from_port}] = e.to_component;
  }
  for (const BindDecl& b : config.bindings) {
    auto it = live.find({b.from_instance, b.from_port});
    if (it == live.end()) {
      return Status::ConstraintBroken("described binding " + b.from_instance +
                                      "." + b.from_port + " is unbound");
    }
    if (it->second != b.to_instance) {
      return Status::ConstraintBroken(
          "binding " + b.from_instance + "." + b.from_port + " targets '" +
          it->second + "', description says '" + b.to_instance + "'");
    }
  }
  return Status::OK();
}

}  // namespace dbm::adl
