// Cycle accounting for the virtual CPU.
//
// Table 1 of the paper reports RPC costs in *CPU cycles*. The whole OS
// substrate therefore accounts costs in cycles on a deterministic ledger
// rather than in wall-clock time. Each charged cost carries a label so
// benchmarks can print a per-mechanism breakdown (trap vs copy vs segment
// load etc.).

#ifndef DBM_OS_CYCLES_H_
#define DBM_OS_CYCLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbm::os {

using Cycles = uint64_t;

/// Accumulates cycles, optionally tracking a labelled breakdown.
///
/// Labels are expected to be string literals: the hot path aggregates by
/// pointer over a short flat array (no hashing, no string construction —
/// this sits under every ORB invocation). Distinct pointers with equal
/// text are merged when breakdown() materialises the sorted view.
class CycleLedger {
 public:
  explicit CycleLedger(bool track_breakdown = true)
      : track_breakdown_(track_breakdown) {}

  void Charge(Cycles c, const char* label) {
    total_ += c;
    if (!track_breakdown_) return;
    for (Item& item : items_) {
      if (item.label == label) {
        item.cycles += c;
        return;
      }
    }
    items_.push_back(Item{label, c});
  }
  void Charge(Cycles c) { total_ += c; }

  Cycles total() const { return total_; }

  /// Labelled cycle totals, insertion-independent (sorted by label).
  std::map<std::string, Cycles> breakdown() const {
    std::map<std::string, Cycles> out;
    for (const Item& item : items_) out[item.label] += item.cycles;
    return out;
  }

  void Reset() {
    total_ = 0;
    items_.clear();
  }

 private:
  struct Item {
    const char* label;
    Cycles cycles;
  };
  bool track_breakdown_;
  Cycles total_ = 0;
  std::vector<Item> items_;  // one entry per distinct charge site
};

/// Architectural cost constants for the simulated IA32-like machine.
/// Values follow the paper's narrative: a segment-register load is a
/// privileged 3-cycle operation; mode switches via trap are expensive.
struct MachineCosts {
  Cycles segment_register_load = 3;   // paper: "only 3 cycles on a Pentium"
  Cycles near_call = 5;
  Cycles near_return = 5;
  Cycles trap_entry = 107;            // int/sysenter microcoded entry
  Cycles trap_exit = 107;
  Cycles register_save = 30;          // full integer register file
  Cycles register_restore = 30;
  Cycles tlb_flush = 500;             // CR3 reload on address-space switch
  Cycles tlb_refill_per_page = 25;    // walk cost charged on first touch
  Cycles cache_line_copy = 8;         // 32-byte line, warm cache
  Cycles scheduler_dispatch = 400;    // pick-next + queue maintenance
  Cycles basic_alu = 1;
  Cycles memory_access = 2;           // L1 hit
};

/// Default machine used by all models; benches may override fields to run
/// sensitivity sweeps.
inline const MachineCosts& DefaultMachineCosts() {
  static const MachineCosts costs;
  return costs;
}

/// One line of a cost-model breakdown (for reporting).
struct CostItem {
  std::string label;
  Cycles cycles;
  int count;  // how many times the item occurs per RPC
  Cycles Total() const { return cycles * static_cast<Cycles>(count); }
};

}  // namespace dbm::os

#endif  // DBM_OS_CYCLES_H_
