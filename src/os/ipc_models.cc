#include "os/ipc_models.h"

namespace dbm::os {

namespace {

/// Charges a breakdown onto a ledger and returns the total.
Cycles ChargeAll(const std::vector<CostItem>& items, CycleLedger* ledger) {
  Cycles total = 0;
  for (const CostItem& item : items) {
    Cycles t = item.Total();
    if (ledger != nullptr) ledger->Charge(t, item.label.c_str());
    total += t;
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// BSD: client write() + blocked read() on a pipe, server symmetrical.
// Four syscalls, two copies through the kernel, two sleep/wakeup pairs and
// two full context switches whose dominant cost is TLB/cache refill.
// ---------------------------------------------------------------------------
std::vector<CostItem> BsdIpcModel::Breakdown() const {
  return {
      {"syscall trap+validate+file layer", 2600, 4},   // 10,400
      {"copyin/copyout through kernel", 1800, 2},      //  3,600
      {"sleep/wakeup queue handling", 4500, 2},        //  9,000
      {"process context switch + TLB/cache refill", 16000, 2},  // 32,000
  };                                                   // = 55,000
}

Result<Cycles> BsdIpcModel::NullRpc() {
  return ChargeAll(Breakdown(), nullptr);
}

// ---------------------------------------------------------------------------
// Mach 2.5: mach_msg send+receive each way.
// ---------------------------------------------------------------------------
std::vector<CostItem> MachIpcModel::Breakdown() const {
  return {
      {"trap entry/exit", 214, 2},          //   428
      {"message header validation", 150, 2},//   300
      {"port rights lookup", 250, 2},       //   500
      {"message copyin/copyout", 300, 2},   //   600
      {"scheduler handoff", 330, 2},        //   660
      {"address-space switch", 256, 2},     //   512
  };                                        // = 3,000
}

Result<Cycles> MachIpcModel::NullRpc() {
  return ChargeAll(Breakdown(), nullptr);
}

// ---------------------------------------------------------------------------
// L4: short-path IPC, registers only, two kernel entries per round trip.
// ---------------------------------------------------------------------------
std::vector<CostItem> L4IpcModel::Breakdown() const {
  return {
      {"trap entry/exit", 214, 2},              // 428
      {"register message transfer", 28, 2},     //  56
      {"thread + address-space switch", 90, 2}, // 180
      {"ipc path bookkeeping", 1, 1},           //   1
  };                                            // = 665
}

Result<Cycles> L4IpcModel::NullRpc() {
  return ChargeAll(Breakdown(), nullptr);
}

// ---------------------------------------------------------------------------
// Go!: live execution. A client component with one required port bound to a
// null server; NullRpc() invokes the client's port through the ORB exactly
// as a running component would (the VCPU executes the callee's `ret`).
// ---------------------------------------------------------------------------
GoIpcModel::GoIpcModel() : system_(std::make_unique<GoSystem>()) {
  auto server = system_->LoadWithService(images::NullServer());
  if (!server.ok()) return;
  null_iface_ = server->second;

  auto client = system_->LoadWithService(images::Forwarder(
      "client", HashInterfaceType("null-service")));
  if (!client.ok()) return;
  client_ = client->first;
  forward_iface_ = client->second;
  (void)system_->BindPort(client_, 0, null_iface_);
}

Result<Cycles> GoIpcModel::NullRpc() {
  if (client_ == kInvalidComponent) {
    return Status::FailedPrecondition("Go! system failed to initialise");
  }
  CycleLedger& ledger = system_->ledger();
  Cycles before = ledger.total();
  // Invoke the client's bound port directly: this is precisely the path a
  // running component takes on kCallPort (whose 5-cycle near call the VCPU
  // charges when executing the instruction; here the ORB charges it via
  // the breakdown's vcpu:execute entries of the client body).
  DBM_RETURN_NOT_OK(system_->orb().Call(forward_iface_));
  Cycles total = ledger.total() - before;
  // Call(forward_iface_) runs client body {callport; ret} which performs
  // the inner null RPC; subtract the outer host->client envelope so the
  // figure is one component-to-component RPC: outer near-call + outer
  // dispatch + client's own ret. The inner RPC is what Table 1 reports.
  return total - EnvelopeCycles();
}

Cycles GoIpcModel::EnvelopeCycles() const {
  const OrbCosts& c = system_->orb().costs();
  const Cycles seg = 3 * DefaultMachineCosts().segment_register_load;
  // Outer near call + outer dispatch + the client body's own `ret` + outer
  // return path. Identical in form to one null RPC, as expected: the host
  // call uses the same mechanism.
  return c.near_call + (c.iface_lookup + c.access_check + c.save_context +
                        seg + c.arg_setup) +
         OpCost(Op::kRet) + (seg + c.restore_context + c.orb_exit);
}

std::vector<CostItem> GoIpcModel::Breakdown() const {
  const OrbCosts& c = system_->orb().costs();
  const Cycles seg = 3 * DefaultMachineCosts().segment_register_load;
  return {
      {"caller near call (kCallPort)", OpCost(Op::kCallPort), 1},
      {"ORB interface lookup", c.iface_lookup, 1},
      {"ORB access/type check", c.access_check, 1},
      {"save caller context", c.save_context, 1},
      {"load callee segment registers", seg, 1},
      {"argument window setup", c.arg_setup, 1},
      {"callee ret", OpCost(Op::kRet), 1},
      {"reload caller segment registers", seg, 1},
      {"restore caller context", c.restore_context, 1},
      {"ORB exit", c.orb_exit, 1},
  };  // = 73
}

std::vector<std::unique_ptr<IpcModel>> MakeTable1Models() {
  std::vector<std::unique_ptr<IpcModel>> models;
  models.push_back(std::make_unique<BsdIpcModel>());
  models.push_back(std::make_unique<MachIpcModel>());
  models.push_back(std::make_unique<L4IpcModel>());
  models.push_back(std::make_unique<GoIpcModel>());
  return models;
}

}  // namespace dbm::os
