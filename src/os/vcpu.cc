#include "os/vcpu.h"

#include "common/strings.h"

namespace dbm::os {

Status Vcpu::Run(ThreadContext ctx, uint64_t max_instructions) {
  auto it = text_map_.find(ctx.code);
  if (it == text_map_.end()) {
    return Status::ProtectionFault(
        StrFormat("no text mapped for code selector %u", ctx.code));
  }
  const Program& text = *it->second;

  if (call_depth_ >= kMaxCallDepth) {
    return Status::ResourceExhausted("thread-migration call depth exceeded");
  }
  ++call_depth_;
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&call_depth_};

  uint64_t executed = 0;
  while (true) {
    if (executed++ >= max_instructions) {
      return Status::ResourceExhausted(
          StrFormat("instruction budget (%llu) exhausted in component %u",
                    static_cast<unsigned long long>(max_instructions),
                    ctx.component));
    }
    if (ctx.pc >= text.size()) {
      return Status::ProtectionFault(
          StrFormat("pc %u ran off text section (size %zu)", ctx.pc,
                    text.size()));
    }
    const Instr& ins = text[ctx.pc];
    ledger_->Charge(OpCost(ins.op), "vcpu:execute");

    if (IsPrivileged(ins.op) && !ctx.privileged) {
      return Status::ProtectionFault(
          StrFormat("privileged instruction '%s' at pc %u in unprivileged "
                    "component %u (scanner bypass?)",
                    OpName(ins.op), ctx.pc, ctx.component));
    }

    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kMovImm:
        regs_[ins.a] = ins.imm;
        break;
      case Op::kMov:
        regs_[ins.a] = regs_[ins.b];
        break;
      case Op::kAdd:
        regs_[ins.a] = regs_[ins.b] + regs_[ins.c];
        break;
      case Op::kSub:
        regs_[ins.a] = regs_[ins.b] - regs_[ins.c];
        break;
      case Op::kMul:
        regs_[ins.a] = regs_[ins.b] * regs_[ins.c];
        break;
      case Op::kLoad: {
        auto r = memory_->Read(
            ctx.data, static_cast<uint32_t>(regs_[ins.b] + ins.imm));
        if (!r.ok()) return r.status();
        regs_[ins.a] = *r;
        break;
      }
      case Op::kStore: {
        DBM_RETURN_NOT_OK(memory_->Write(
            ctx.data, static_cast<uint32_t>(regs_[ins.b] + ins.imm),
            regs_[ins.a]));
        break;
      }
      case Op::kJmp:
        ctx.pc = static_cast<uint32_t>(ins.imm);
        continue;
      case Op::kJz:
        if (regs_[ins.a] == 0) {
          ctx.pc = static_cast<uint32_t>(ins.imm);
          continue;
        }
        break;
      case Op::kCallPort: {
        if (!port_handler_) {
          return Status::FailedPrecondition("no port handler installed");
        }
        DBM_RETURN_NOT_OK(port_handler_(
            ctx.component, static_cast<uint32_t>(ins.imm)));
        break;
      }
      case Op::kRet:
      case Op::kHalt:
        return Status::OK();
      case Op::kLoadSegment:
      case Op::kEnableInts:
      case Op::kDisableInts:
      case Op::kIoPort:
        // Privileged ops are modelled as no-ops beyond their cycle cost:
        // their architectural effects (selector reloads) are performed by
        // the ORB through native state, not through the ISA.
        break;
    }
    ++ctx.pc;
  }
}

}  // namespace dbm::os
