// Interrupt management outside the core (§5.1).
//
// "Ideally any service that has nothing to do with component management
// (e.g. interrupt and device management) would be handled outside that
// core." In this zero-kernel design an interrupt is just an event that
// causes the ORB to invoke a *handler interface* registered for the line;
// the dispatcher itself is an ordinary (trusted) component holding a
// vector table. Handlers run as thread-migrating calls, so the cost of
// taking an interrupt is the cost of one ORB invocation plus the line's
// bookkeeping — no mode switch exists to pay for.

#ifndef DBM_OS_INTERRUPTS_H_
#define DBM_OS_INTERRUPTS_H_

#include <deque>
#include <vector>

#include "common/result.h"
#include "os/orb.h"

namespace dbm::os {

using IrqLine = uint32_t;

/// Per-line statistics.
struct IrqStats {
  uint64_t raised = 0;
  uint64_t dispatched = 0;
  uint64_t dropped_masked = 0;
  Cycles cycles = 0;
};

/// The interrupt dispatcher: a vector table mapping lines to component
/// interfaces, with per-line masking and a pending queue for interrupts
/// raised while masked (level-triggered semantics: at most one pending).
class InterruptController {
 public:
  InterruptController(Orb* orb, CycleLedger* ledger, size_t lines = 32)
      : orb_(orb), ledger_(ledger), table_(lines) {}

  size_t line_count() const { return table_.size(); }

  /// Installs `handler` (a registered interface) on `line`.
  Status Attach(IrqLine line, InterfaceId handler);
  Status Detach(IrqLine line);

  Status Mask(IrqLine line);
  Status Unmask(IrqLine line);  // dispatches a pended interrupt, if any
  Result<bool> IsMasked(IrqLine line) const;

  /// Raises `line`: dispatches immediately when unmasked (the handler
  /// runs as an ORB call), otherwise pends it.
  Status Raise(IrqLine line);

  Result<const IrqStats*> Stats(IrqLine line) const;
  uint64_t total_dispatched() const { return total_dispatched_; }

  /// Cycle cost of the dispatcher's own bookkeeping per interrupt
  /// (vector fetch + mask test). The handler's ORB call costs ~73 on top.
  static constexpr Cycles kDispatchOverhead = 11;

 private:
  struct Line {
    InterfaceId handler = kInvalidInterface;
    bool masked = false;
    bool pending = false;
    IrqStats stats;
  };

  Status Dispatch(Line* line);
  Result<Line*> GetLine(IrqLine line);

  Orb* orb_;
  CycleLedger* ledger_;
  std::vector<Line> table_;
  uint64_t total_dispatched_ = 0;
};

}  // namespace dbm::os

#endif  // DBM_OS_INTERRUPTS_H_
