#include "os/orb.h"

#include "common/strings.h"
#include "obs/tracectx.h"

namespace dbm::os {

InterfaceId Orb::RegisterInterface(ComponentId component,
                                   const InterfaceDecl& decl, Selector code,
                                   Selector data, Selector stack) {
  InterfaceRecord rec{};
  rec.component = component;
  rec.entry_pc = decl.entry_pc;
  rec.code_seg = code;
  rec.data_seg = data;
  rec.stack_seg = stack;
  rec.type = decl.type;
  rec.flags = 1;  // present
  rec.name_ref = static_cast<uint32_t>(names_.size());
  names_.push_back(decl.name);
  table_.push_back(rec);
  ++live_interfaces_;
  return static_cast<InterfaceId>(table_.size() - 1);
}

Status Orb::RevokeInterface(InterfaceId id) {
  if (id == kInvalidInterface || id >= table_.size()) {
    return Status::NotFound(StrFormat("no interface %u", id));
  }
  if ((table_[id].flags & 1) == 0) {
    return Status::FailedPrecondition(
        StrFormat("interface %u already revoked", id));
  }
  table_[id].flags &= ~1u;
  --live_interfaces_;
  return Status::OK();
}

void Orb::InstallPortTable(ComponentId component, size_t port_count) {
  port_tables_[component] =
      std::vector<InterfaceId>(port_count, kInvalidInterface);
}

void Orb::RemovePortTable(ComponentId component) {
  port_tables_.erase(component);
}

Status Orb::Bind(ComponentId component, uint32_t port_index,
                 InterfaceId iface, TypeHash required_type) {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end()) {
    return Status::NotFound(
        StrFormat("component %u has no port table", component));
  }
  if (port_index >= it->second.size()) {
    return Status::OutOfRange(
        StrFormat("port %u out of range for component %u", port_index,
                  component));
  }
  const InterfaceRecord* rec = Lookup(iface);
  if (rec == nullptr || (rec->flags & 1) == 0) {
    return Status::NotFound(StrFormat("interface %u not registered", iface));
  }
  if (rec->type != required_type) {
    return Status::InvalidArgument(StrFormat(
        "type mismatch binding port %u of component %u: required %08x, "
        "interface '%s' provides %08x",
        port_index, component, required_type,
        InterfaceName(iface).c_str(), rec->type));
  }
  it->second[port_index] = iface;
  return Status::OK();
}

Status Orb::Unbind(ComponentId component, uint32_t port_index) {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end() || port_index >= it->second.size()) {
    return Status::NotFound(
        StrFormat("no port %u on component %u", port_index, component));
  }
  it->second[port_index] = kInvalidInterface;
  return Status::OK();
}

InterfaceId Orb::BoundTo(ComponentId component, uint32_t port_index) const {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end() || port_index >= it->second.size()) {
    return kInvalidInterface;
  }
  return it->second[port_index];
}

const InterfaceRecord* Orb::Lookup(InterfaceId id) const {
  if (id == kInvalidInterface || id >= table_.size()) return nullptr;
  return &table_[id];
}

const std::string& Orb::InterfaceName(InterfaceId id) const {
  static const std::string kUnknown = "<unknown>";
  const InterfaceRecord* rec = Lookup(id);
  if (rec == nullptr || rec->name_ref >= names_.size()) return kUnknown;
  return names_[rec->name_ref];
}

Status Orb::Invoke(ComponentId caller, uint32_t port_index) {
  InterfaceId iface = BoundTo(caller, port_index);
  if (iface == kInvalidInterface) {
    return Status::Unavailable(
        StrFormat("port %u of component %u is unbound", port_index, caller));
  }
  const InterfaceRecord& rec = table_[iface];
  if ((rec.flags & 1) == 0) {
    return Status::Unavailable(
        StrFormat("interface '%s' has been revoked",
                  InterfaceName(iface).c_str()));
  }
  return InvokeRecord(rec);
}

Status Orb::Call(InterfaceId iface) {
  const InterfaceRecord* rec = Lookup(iface);
  if (rec == nullptr) {
    return Status::NotFound(StrFormat("no interface %u", iface));
  }
  if ((rec->flags & 1) == 0) {
    return Status::Unavailable(
        StrFormat("interface '%s' has been revoked",
                  InterfaceName(iface).c_str()));
  }
  vcpu_->ledger()->Charge(costs_.near_call, "orb:near-call");
  return InvokeRecord(*rec);
}

Status Orb::Call(InterfaceId iface, int64_t a1, int64_t a2, int64_t a3) {
  vcpu_->set_reg(1, a1);
  vcpu_->set_reg(2, a2);
  vcpu_->set_reg(3, a3);
  return Call(iface);
}

Status Orb::InvokeRecord(const InterfaceRecord& rec) {
  CycleLedger* ledger = vcpu_->ledger();
  // The trace context rides the migrating thread across the protection
  // boundary — observability of the simulator, so zero cycles charged.
  obs::SpanScope hop_span(
      rec.name_ref < names_.size() ? names_[rec.name_ref] : "<unknown>",
      "os.orb", ledger);
  ++invocations_;
  obs_invocations_->Add(1);
  obs_segment_reloads_->Add(6);  // 3 selectors out, 3 back
  Cycles call_start = ledger->total();

  // --- call path ---
  ledger->Charge(costs_.iface_lookup, "orb:iface-lookup");
  ledger->Charge(costs_.access_check, "orb:access-check");
  ledger->Charge(costs_.save_context, "orb:save-context");
  ledger->Charge(3 * machine_.segment_register_load, "orb:segment-loads");
  ledger->Charge(costs_.arg_setup, "orb:arg-setup");
  Cycles call_end = ledger->total();

  ThreadContext callee;
  callee.code = rec.code_seg;
  callee.data = rec.data_seg;
  callee.stack = rec.stack_seg;
  callee.pc = rec.entry_pc;
  callee.component = rec.component;
  callee.privileged = false;

  Status body = vcpu_->Run(callee);

  // --- return path (runs even if the callee faulted: the ORB restores the
  // caller's context before propagating the fault) ---
  Cycles ret_start = ledger->total();
  ledger->Charge(3 * machine_.segment_register_load, "orb:segment-loads");
  ledger->Charge(costs_.restore_context, "orb:restore-context");
  ledger->Charge(costs_.orb_exit, "orb:exit");
  obs_hop_cycles_->Record((call_end - call_start) +
                          (ledger->total() - ret_start));
  return body;
}

}  // namespace dbm::os
