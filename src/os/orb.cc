#include "os/orb.h"

#include "common/strings.h"
#include "fault/log.h"
#include "obs/tracectx.h"

namespace dbm::os {

InterfaceId Orb::RegisterInterface(ComponentId component,
                                   const InterfaceDecl& decl, Selector code,
                                   Selector data, Selector stack) {
  InterfaceRecord rec{};
  rec.component = component;
  rec.entry_pc = decl.entry_pc;
  rec.code_seg = code;
  rec.data_seg = data;
  rec.stack_seg = stack;
  rec.type = decl.type;
  rec.flags = 1;  // present
  rec.name_ref = static_cast<uint32_t>(names_.size());
  names_.push_back(decl.name);
  table_.push_back(rec);
  ++live_interfaces_;
  return static_cast<InterfaceId>(table_.size() - 1);
}

Status Orb::RevokeInterface(InterfaceId id) {
  if (id == kInvalidInterface || id >= table_.size()) {
    return Status::NotFound(StrFormat("no interface %u", id));
  }
  if ((table_[id].flags & 1) == 0) {
    return Status::FailedPrecondition(
        StrFormat("interface %u already revoked", id));
  }
  table_[id].flags &= ~1u;
  --live_interfaces_;
  return Status::OK();
}

void Orb::InstallPortTable(ComponentId component, size_t port_count) {
  port_tables_[component] =
      std::vector<InterfaceId>(port_count, kInvalidInterface);
}

void Orb::RemovePortTable(ComponentId component) {
  port_tables_.erase(component);
}

Status Orb::Bind(ComponentId component, uint32_t port_index,
                 InterfaceId iface, TypeHash required_type) {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end()) {
    return Status::NotFound(
        StrFormat("component %u has no port table", component));
  }
  if (port_index >= it->second.size()) {
    return Status::OutOfRange(
        StrFormat("port %u out of range for component %u", port_index,
                  component));
  }
  const InterfaceRecord* rec = Lookup(iface);
  if (rec == nullptr || (rec->flags & 1) == 0) {
    return Status::NotFound(StrFormat("interface %u not registered", iface));
  }
  if (rec->type != required_type) {
    return Status::InvalidArgument(StrFormat(
        "type mismatch binding port %u of component %u: required %08x, "
        "interface '%s' provides %08x",
        port_index, component, required_type,
        InterfaceName(iface).c_str(), rec->type));
  }
  it->second[port_index] = iface;
  return Status::OK();
}

Status Orb::Unbind(ComponentId component, uint32_t port_index) {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end() || port_index >= it->second.size()) {
    return Status::NotFound(
        StrFormat("no port %u on component %u", port_index, component));
  }
  it->second[port_index] = kInvalidInterface;
  return Status::OK();
}

InterfaceId Orb::BoundTo(ComponentId component, uint32_t port_index) const {
  auto it = port_tables_.find(component);
  if (it == port_tables_.end() || port_index >= it->second.size()) {
    return kInvalidInterface;
  }
  return it->second[port_index];
}

const InterfaceRecord* Orb::Lookup(InterfaceId id) const {
  if (id == kInvalidInterface || id >= table_.size()) return nullptr;
  return &table_[id];
}

const std::string& Orb::InterfaceName(InterfaceId id) const {
  static const std::string kUnknown = "<unknown>";
  const InterfaceRecord* rec = Lookup(id);
  if (rec == nullptr || rec->name_ref >= names_.size()) return kUnknown;
  return names_[rec->name_ref];
}

Status Orb::Invoke(ComponentId caller, uint32_t port_index) {
  InterfaceId iface = BoundTo(caller, port_index);
  if (iface == kInvalidInterface) {
    return Status::Unavailable(
        StrFormat("port %u of component %u is unbound", port_index, caller));
  }
  const InterfaceRecord& rec = table_[iface];
  if ((rec.flags & 1) == 0 && supervised_.find(iface) == supervised_.end()) {
    // Unsupervised calls fail fast; supervised ones go through Dispatch
    // so the breaker sees the dead callee and can trip a SWITCH.
    return Status::Unavailable(
        StrFormat("interface '%s' has been revoked",
                  InterfaceName(iface).c_str()));
  }
  return Dispatch(iface, rec);
}

Status Orb::Call(InterfaceId iface) {
  const InterfaceRecord* rec = Lookup(iface);
  if (rec == nullptr) {
    return Status::NotFound(StrFormat("no interface %u", iface));
  }
  if ((rec->flags & 1) == 0 && supervised_.find(iface) == supervised_.end()) {
    return Status::Unavailable(
        StrFormat("interface '%s' has been revoked",
                  InterfaceName(iface).c_str()));
  }
  vcpu_->ledger()->Charge(costs_.near_call, "orb:near-call");
  return Dispatch(iface, *rec);
}

Status Orb::Call(InterfaceId iface, int64_t a1, int64_t a2, int64_t a3) {
  vcpu_->set_reg(1, a1);
  vcpu_->set_reg(2, a2);
  vcpu_->set_reg(3, a3);
  return Call(iface);
}

Status Orb::Dispatch(InterfaceId iface, const InterfaceRecord& rec) {
  if (!supervised_.empty()) {
    auto it = supervised_.find(iface);
    if (it != supervised_.end()) {
      return InvokeSupervised(iface, rec, *it->second);
    }
  }
  if (fault_point_->armed()) return AttemptInvoke(iface, rec, nullptr);
  return InvokeRecord(rec);
}

Status Orb::SetCallPolicy(InterfaceId iface, const CallPolicy& policy) {
  const InterfaceRecord* rec = Lookup(iface);
  if (rec == nullptr || (rec->flags & 1) == 0) {
    return Status::NotFound(
        StrFormat("no live interface %u to supervise", iface));
  }
  auto sup = std::make_unique<Supervision>();
  sup->policy = policy;
  sup->name = InterfaceName(iface);
  fault::CircuitBreaker::Options bopts;
  bopts.failure_threshold =
      policy.breaker_threshold > 0 ? policy.breaker_threshold : 1;
  bopts.cooldown = static_cast<int64_t>(policy.breaker_cooldown);
  sup->breaker = fault::CircuitBreaker(bopts);

  obs::Registry& reg = obs::Registry::Default();
  const std::string prefix = "orb." + sup->name;
  sup->timeouts = &reg.GetCounter(prefix + ".timeouts");
  sup->retries = &reg.GetCounter(prefix + ".retries");
  sup->failures = &reg.GetCounter(prefix + ".failures");
  sup->rejected = &reg.GetCounter(prefix + ".rejected");
  sup->breaker_trips = &reg.GetCounter(prefix + ".breaker_trips");
  sup->breaker_state = &reg.GetGauge(prefix + ".breaker_state");
  sup->breaker_state->Set(0);

  // Transitions become a gauge (the session manager's SWITCH trigger),
  // a counter, and a joinable FaultEvent. `raw` is stable: Supervision
  // lives behind a unique_ptr for exactly this capture.
  Supervision* raw = sup.get();
  raw->breaker.set_on_transition([this, raw](fault::CircuitBreaker::State from,
                                             fault::CircuitBreaker::State to,
                                             int64_t now) {
    raw->breaker_state->Set(static_cast<double>(to));
    if (to == fault::CircuitBreaker::State::kOpen) raw->breaker_trips->Add(1);
    fault::Record(fault::FaultEventKind::kBreaker, "orb." + raw->name,
                  StrFormat("breaker %s -> %s at cycle %lld",
                            fault::CircuitBreaker::StateName(from),
                            fault::CircuitBreaker::StateName(to),
                            static_cast<long long>(now)),
                  FaultNow());
  });
  supervised_[iface] = std::move(sup);
  return Status::OK();
}

int Orb::BreakerState(InterfaceId iface) const {
  auto it = supervised_.find(iface);
  if (it == supervised_.end()) return 0;
  return static_cast<int>(it->second->breaker.state());
}

int Orb::ConsecutiveFailures(InterfaceId iface) const {
  auto it = supervised_.find(iface);
  if (it == supervised_.end()) return 0;
  return it->second->breaker.consecutive_failures();
}

Status Orb::AttemptInvoke(InterfaceId iface, const InterfaceRecord& rec,
                          Supervision* sup) {
  // Retries re-check liveness: an injected crash revokes the interface,
  // so later attempts of the same call fail here rather than resurrect
  // the dead callee.
  if ((rec.flags & 1) == 0) {
    return Status::Unavailable(
        StrFormat("interface '%s' has been revoked",
                  InterfaceName(iface).c_str()));
  }
  CycleLedger* ledger = vcpu_->ledger();
  const Cycles deadline = sup != nullptr ? sup->policy.deadline : 0;
  const Cycles start = ledger->total();
  if (fault_point_->armed()) {
    fault::Decision d = fault_point_->Decide();
    if (d.latency > 0) {
      ledger->Charge(static_cast<Cycles>(d.latency), "orb:injected-latency");
    }
    const std::string& name = InterfaceName(iface);
    if (d.crash) {
      (void)RevokeInterface(iface);
      fault::Record(fault::FaultEventKind::kInjected, "orb.invoke",
                    StrFormat("crash: component behind '%s' died, interface "
                              "revoked",
                              name.c_str()),
                    FaultNow());
      return Status::Unavailable(
          StrFormat("injected crash: component behind '%s' died",
                    name.c_str()));
    }
    if (d.hang) {
      // A hang costs the caller its whole budget (or the cap when no
      // deadline bounds it) before supervision can declare it dead.
      Cycles cost = deadline > 0 ? deadline : CallPolicy::kHangCycles;
      ledger->Charge(cost, "orb:injected-hang");
      fault::Record(fault::FaultEventKind::kInjected, "orb.invoke",
                    StrFormat("hang on '%s' (+%llu cycles)", name.c_str(),
                              static_cast<unsigned long long>(cost)),
                    FaultNow());
      return Status::DeadlineExceeded(
          StrFormat("call to '%s' hung past %llu cycles", name.c_str(),
                    static_cast<unsigned long long>(cost)));
    }
    if (d.error) {
      fault::Record(fault::FaultEventKind::kInjected, "orb.invoke",
                    StrFormat("error on '%s'", name.c_str()), FaultNow());
      return Status::Unavailable(
          StrFormat("injected fault calling '%s'", name.c_str()));
    }
  }
  Status body = InvokeRecord(rec);
  if (body.ok() && deadline > 0 && ledger->total() - start > deadline) {
    return Status::DeadlineExceeded(
        StrFormat("call to '%s' took %llu cycles, budget %llu",
                  InterfaceName(iface).c_str(),
                  static_cast<unsigned long long>(ledger->total() - start),
                  static_cast<unsigned long long>(deadline)));
  }
  return body;
}

Status Orb::InvokeSupervised(InterfaceId iface, const InterfaceRecord& rec,
                             Supervision& sup) {
  CycleLedger* ledger = vcpu_->ledger();
  ledger->Charge(costs_.supervision, "orb:supervision");
  const bool breaker_on = sup.policy.breaker_threshold > 0;
  if (breaker_on &&
      !sup.breaker.Allow(static_cast<int64_t>(ledger->total()))) {
    sup.rejected->Add(1);
    return Status::Unavailable(
        StrFormat("circuit breaker open for interface '%s'",
                  sup.name.c_str()));
  }
  Status last = Status::OK();
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff, deterministically jittered so synchronized
      // callers fan out instead of retrying in lockstep.
      Cycles wait = sup.policy.backoff_base << (attempt - 1);
      if (sup.policy.jitter > 0) {
        double f = 1.0 + sup.policy.jitter * (2.0 * rng_.UniformDouble() - 1.0);
        wait = static_cast<Cycles>(static_cast<double>(wait) * f);
      }
      if (wait > 0) ledger->Charge(wait, "orb:backoff");
      sup.retries->Add(1);
    }
    last = AttemptInvoke(iface, rec, &sup);
    const int64_t now = static_cast<int64_t>(ledger->total());
    if (last.ok()) {
      if (breaker_on) sup.breaker.RecordSuccess(now);
      return last;
    }
    if (last.IsDeadlineExceeded()) sup.timeouts->Add(1);
    if (breaker_on) sup.breaker.RecordFailure(now);
    if (!last.IsRetryable() || attempt >= sup.policy.max_retries) break;
    // A breaker that tripped mid-sequence also ends the retry loop:
    // the threshold spans calls, not just this one.
    if (breaker_on &&
        sup.breaker.state() == fault::CircuitBreaker::State::kOpen) {
      break;
    }
  }
  sup.failures->Add(1);
  return last;
}

Status Orb::InvokeRecord(const InterfaceRecord& rec) {
  CycleLedger* ledger = vcpu_->ledger();
  // The trace context rides the migrating thread across the protection
  // boundary — observability of the simulator, so zero cycles charged.
  obs::SpanScope hop_span(
      rec.name_ref < names_.size() ? names_[rec.name_ref] : "<unknown>",
      "os.orb", ledger);
  ++invocations_;
  obs_invocations_->Add(1);
  obs_segment_reloads_->Add(6);  // 3 selectors out, 3 back
  Cycles call_start = ledger->total();

  // --- call path ---
  ledger->Charge(costs_.iface_lookup, "orb:iface-lookup");
  ledger->Charge(costs_.access_check, "orb:access-check");
  ledger->Charge(costs_.save_context, "orb:save-context");
  ledger->Charge(3 * machine_.segment_register_load, "orb:segment-loads");
  ledger->Charge(costs_.arg_setup, "orb:arg-setup");
  Cycles call_end = ledger->total();

  ThreadContext callee;
  callee.code = rec.code_seg;
  callee.data = rec.data_seg;
  callee.stack = rec.stack_seg;
  callee.pc = rec.entry_pc;
  callee.component = rec.component;
  callee.privileged = false;

  Status body = vcpu_->Run(callee);

  // --- return path (runs even if the callee faulted: the ORB restores the
  // caller's context before propagating the fault) ---
  Cycles ret_start = ledger->total();
  ledger->Charge(3 * machine_.segment_register_load, "orb:segment-loads");
  ledger->Charge(costs_.restore_context, "orb:restore-context");
  ledger->Charge(costs_.orb_exit, "orb:exit");
  obs_hop_cycles_->Record((call_end - call_start) +
                          (ledger->total() - ret_start));
  return body;
}

}  // namespace dbm::os
