// GoSystem: the assembled zero-kernel OS (our reproduction of Go!).
//
// Bundles physical memory, the cycle ledger, the VCPU, the ORB and the
// loader into one substrate object, and wires the VCPU's kCallPort
// instruction to the ORB's thread-migrating Invoke. Everything above this
// layer (component runtime, DBMS services, Patia) runs on a GoSystem.

#ifndef DBM_OS_GO_SYSTEM_H_
#define DBM_OS_GO_SYSTEM_H_

#include <memory>

#include "os/loader.h"
#include "os/memory.h"
#include "os/orb.h"
#include "os/vcpu.h"

namespace dbm::os {

class GoSystem {
 public:
  explicit GoSystem(size_t memory_words = 1 << 20,
                    const MachineCosts& machine = DefaultMachineCosts())
      : memory_(memory_words),
        ledger_(/*track_breakdown=*/true),
        vcpu_(&memory_, &ledger_),
        orb_(&vcpu_, machine),
        loader_(&memory_, &vcpu_, &orb_) {
    vcpu_.set_port_handler(
        [this](ComponentId caller, uint32_t port) {
          return orb_.Invoke(caller, port);
        });
  }

  GoSystem(const GoSystem&) = delete;
  GoSystem& operator=(const GoSystem&) = delete;

  SegmentMemory& memory() { return memory_; }
  CycleLedger& ledger() { return ledger_; }
  Vcpu& vcpu() { return vcpu_; }
  Orb& orb() { return orb_; }
  Loader& loader() { return loader_; }

  /// Loads an image and returns (component id, interface id of its first
  /// provided service) — the common case for tests and benches.
  Result<std::pair<ComponentId, InterfaceId>> LoadWithService(
      const ComponentImage& image) {
    DBM_ASSIGN_OR_RETURN(ComponentId id, loader_.Load(image));
    const LoadedComponent* lc = loader_.Get(id);
    if (lc->provided.empty()) {
      return Status::InvalidArgument("image provides no interface");
    }
    return std::make_pair(id, lc->provided.front());
  }

  /// Binds `client`'s port `port` to `iface`, using the declared port type.
  Status BindPort(ComponentId client, uint32_t port, InterfaceId iface) {
    const LoadedComponent* lc = loader_.Get(client);
    if (lc == nullptr) {
      return Status::NotFound("client not loaded");
    }
    if (port >= lc->image.required.size()) {
      return Status::OutOfRange("port index out of range");
    }
    return orb_.Bind(client, port, iface, lc->image.required[port].type);
  }

 private:
  SegmentMemory memory_;
  CycleLedger ledger_;
  Vcpu vcpu_;
  Orb orb_;
  Loader loader_;
};

/// Canned images used by tests and benchmarks.
namespace images {

/// A service whose body is a single `ret` — the null-RPC callee.
ComponentImage NullServer(const std::string& name = "null-server");

/// A service computing r0 = r1 + r2.
ComponentImage Adder(const std::string& name = "adder");

/// A client with one required port that forwards its call (callport 0; ret).
ComponentImage Forwarder(const std::string& name, TypeHash port_type);

/// A client that calls port 0 `n` times then returns (for throughput runs).
ComponentImage RepeatCaller(const std::string& name, TypeHash port_type,
                            int64_t n);

/// An image containing a privileged instruction (must be rejected).
ComponentImage Malicious(const std::string& name = "malicious");

/// A schedulable task: each call to its "step" interface decrements a
/// persistent counter (initialised to `n`) and returns the remainder in
/// r0 — r0 == 0 signals completion to the scheduler.
ComponentImage CountdownTask(const std::string& name, int64_t n);

}  // namespace images

}  // namespace dbm::os

#endif  // DBM_OS_GO_SYSTEM_H_
