// Memory protection models.
//
// SISR protects components with *segments*: each component instance gets a
// data segment, each component type a code segment, and a segment-register
// load is the (privileged, 3-cycle) context-switch primitive. The baseline
// against which the paper compares is *page-based* protection, whose
// per-process metadata (page tables) and switch cost (TLB flush) are two
// orders of magnitude larger. Both models are implemented here so the
// memory bench (T1b) can compare them directly.

#ifndef DBM_OS_MEMORY_H_
#define DBM_OS_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "os/cycles.h"

namespace dbm::os {

/// Index of a segment descriptor in the descriptor table (a "selector").
using Selector = uint32_t;
constexpr Selector kNullSelector = 0;

enum class SegmentKind : uint8_t { kCode, kData, kStack };

/// A segment descriptor: base/limit protection exactly as IA32 segmentation
/// provides. 8 bytes of metadata per segment, like a real GDT entry.
struct SegmentDescriptor {
  uint64_t base = 0;
  uint32_t limit = 0;  // size in words
  SegmentKind kind = SegmentKind::kData;
  bool present = false;
};

/// Flat physical memory carved into segments. Access checks are performed
/// against the descriptor named by the active selector; an out-of-bounds
/// access is a protection fault. Matches the paper's claim that protection
/// metadata is tiny (a descriptor per segment) compared with page tables.
class SegmentMemory {
 public:
  explicit SegmentMemory(size_t words = 1 << 20) : mem_(words, 0) {}

  /// Allocates a segment of `words` words; returns its selector.
  Result<Selector> Allocate(uint32_t words, SegmentKind kind);

  /// Frees a segment (descriptor slot becomes reusable).
  Status Free(Selector sel);

  /// Reads/writes relative to a segment, enforcing base/limit.
  Result<int64_t> Read(Selector sel, uint32_t offset) const;
  Status Write(Selector sel, uint32_t offset, int64_t value);

  const SegmentDescriptor* Descriptor(Selector sel) const;

  /// Bytes of protection metadata currently in use (descriptor table).
  size_t MetadataBytes() const;

  size_t segment_count() const { return live_segments_; }

 private:
  std::vector<int64_t> mem_;
  std::vector<SegmentDescriptor> table_;
  std::vector<Selector> free_list_;
  uint64_t next_base_ = 0;
  size_t live_segments_ = 0;
};

/// Page-based protection model (the comparator). Only the *metadata and
/// switch-cost shape* matters for the benchmarks: per-address-space page
/// tables sized to the mapped range, and a TLB flush on switch.
class PageMemoryModel {
 public:
  explicit PageMemoryModel(uint32_t page_bytes = 4096,
                           uint32_t pte_bytes = 4)
      : page_bytes_(page_bytes), pte_bytes_(pte_bytes) {}

  struct AddressSpace {
    uint64_t mapped_bytes = 0;
    uint32_t id = 0;
  };

  /// Creates an address space mapping `bytes` of memory.
  AddressSpace CreateAddressSpace(uint64_t bytes) {
    AddressSpace as;
    as.mapped_bytes = bytes;
    as.id = next_id_++;
    total_mapped_ += bytes;
    ++spaces_;
    return as;
  }

  /// Page-table metadata bytes for one address space: one PTE per page,
  /// plus a page-directory page (the two-level x86 layout).
  uint64_t MetadataBytesFor(const AddressSpace& as) const {
    uint64_t pages = (as.mapped_bytes + page_bytes_ - 1) / page_bytes_;
    uint64_t pte_pages =
        (pages * pte_bytes_ + page_bytes_ - 1) / page_bytes_;
    return pages * pte_bytes_ + (pte_pages + 1) * 0 + page_bytes_;
  }

  /// Cycle cost of switching address spaces (CR3 reload + TLB refill for the
  /// working set of `touched_pages`).
  Cycles SwitchCost(uint64_t touched_pages,
                    const MachineCosts& mc = DefaultMachineCosts()) const {
    return mc.tlb_flush + touched_pages * mc.tlb_refill_per_page;
  }

  uint32_t page_bytes() const { return page_bytes_; }

 private:
  uint32_t page_bytes_;
  uint32_t pte_bytes_;
  uint32_t next_id_ = 1;
  uint64_t total_mapped_ = 0;
  size_t spaces_ = 0;
};

}  // namespace dbm::os

#endif  // DBM_OS_MEMORY_H_
