#include "os/memory.h"

#include "common/strings.h"

namespace dbm::os {

Result<Selector> SegmentMemory::Allocate(uint32_t words, SegmentKind kind) {
  if (words == 0) {
    return Status::InvalidArgument("segment size must be > 0");
  }
  if (next_base_ + words > mem_.size()) {
    return Status::ResourceExhausted(
        StrFormat("out of physical memory (%zu words)", mem_.size()));
  }
  Selector sel;
  if (!free_list_.empty()) {
    sel = free_list_.back();
    free_list_.pop_back();
  } else {
    // Selector 0 is the null selector; descriptor slots start at 1.
    if (table_.empty()) table_.emplace_back();
    table_.emplace_back();
    sel = static_cast<Selector>(table_.size() - 1);
  }
  SegmentDescriptor& d = table_[sel];
  d.base = next_base_;
  d.limit = words;
  d.kind = kind;
  d.present = true;
  next_base_ += words;
  ++live_segments_;
  return sel;
}

Status SegmentMemory::Free(Selector sel) {
  if (sel == kNullSelector || sel >= table_.size() || !table_[sel].present) {
    return Status::NotFound(StrFormat("no segment with selector %u", sel));
  }
  table_[sel].present = false;
  free_list_.push_back(sel);
  --live_segments_;
  return Status::OK();
}

Result<int64_t> SegmentMemory::Read(Selector sel, uint32_t offset) const {
  const SegmentDescriptor* d = Descriptor(sel);
  if (d == nullptr) {
    return Status::ProtectionFault(
        StrFormat("read through invalid selector %u", sel));
  }
  if (offset >= d->limit) {
    return Status::ProtectionFault(
        StrFormat("read offset %u exceeds segment limit %u", offset,
                  d->limit));
  }
  return mem_[d->base + offset];
}

Status SegmentMemory::Write(Selector sel, uint32_t offset, int64_t value) {
  const SegmentDescriptor* d = Descriptor(sel);
  if (d == nullptr) {
    return Status::ProtectionFault(
        StrFormat("write through invalid selector %u", sel));
  }
  if (d->kind == SegmentKind::kCode) {
    return Status::ProtectionFault("write to code segment");
  }
  if (offset >= d->limit) {
    return Status::ProtectionFault(
        StrFormat("write offset %u exceeds segment limit %u", offset,
                  d->limit));
  }
  mem_[d->base + offset] = value;
  return Status::OK();
}

const SegmentDescriptor* SegmentMemory::Descriptor(Selector sel) const {
  if (sel == kNullSelector || sel >= table_.size() || !table_[sel].present) {
    return nullptr;
  }
  return &table_[sel];
}

size_t SegmentMemory::MetadataBytes() const {
  // 8 bytes per descriptor-table entry, like a real GDT.
  return table_.size() * 8;
}

}  // namespace dbm::os
