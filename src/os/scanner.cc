#include "os/scanner.h"

#include "common/strings.h"
#include "fault/injector.h"
#include "fault/log.h"

namespace dbm::os {

ScanReport SisrScanner::Scan(const ComponentImage& image) const {
  ScanReport report;
  const Program& text = image.text;
  report.scan_cycles =
      static_cast<Cycles>(text.size()) * kCyclesPerInstruction;

  auto violate = [&report](uint32_t pc, std::string reason) {
    report.violations.push_back(ScanViolation{pc, std::move(reason)});
  };

  // Segment-permission fault, from the scanner's point of view: the
  // image looks like it loads a segment register, so load-time
  // verification rejects what would otherwise have been a run-time
  // protection fault. This is the paper's protection story under test —
  // a corrupted image never reaches the ORB.
  static fault::Point* seg_fault =
      fault::Injector::Default().GetPoint("scanner.segment");
  if (seg_fault->armed() && seg_fault->Decide().error) {
    violate(0, "injected segment-permission fault: image appears to load "
               "a segment register");
    fault::Record(fault::FaultEventKind::kInjected, "scanner.segment",
                  "scan rejected image: injected segment-permission fault",
                  0);
    report.accepted = false;
    return report;
  }

  if (text.empty()) {
    violate(0, "empty text section");
    report.accepted = false;
    return report;
  }

  const auto text_size = static_cast<int64_t>(text.size());
  for (uint32_t pc = 0; pc < text.size(); ++pc) {
    const Instr& ins = text[pc];
    if (IsPrivileged(ins.op) && !image.trusted) {
      violate(pc, StrFormat("privileged instruction '%s' in untrusted image",
                            OpName(ins.op)));
    }
    if (ins.a >= 8 || ins.b >= 8 || ins.c >= 8) {
      violate(pc, "register operand out of range");
    }
    switch (ins.op) {
      case Op::kJmp:
      case Op::kJz:
        if (ins.imm < 0 || ins.imm >= text_size) {
          violate(pc, StrFormat("jump target %lld outside text section",
                                static_cast<long long>(ins.imm)));
        }
        break;
      case Op::kCallPort:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<int64_t>(image.required.size())) {
          violate(pc, StrFormat("callport index %lld not a declared port",
                                static_cast<long long>(ins.imm)));
        }
        break;
      default:
        break;
    }
  }

  // The text must not be able to fall off the end.
  const Instr& last = text.back();
  if (last.op != Op::kRet && last.op != Op::kHalt && last.op != Op::kJmp) {
    violate(static_cast<uint32_t>(text.size() - 1),
            "text section may fall through its end");
  }

  // Entry points must land inside the text.
  for (const InterfaceDecl& decl : image.provides) {
    if (decl.entry_pc >= text.size()) {
      violate(decl.entry_pc,
              StrFormat("entry point of '%s' outside text section",
                        decl.name.c_str()));
    }
  }

  report.accepted = report.violations.empty();
  return report;
}

}  // namespace dbm::os
