// Component images: the unit of loading (and of protection) in the
// zero-kernel OS. An image declares the services it provides (entry points)
// and the ports it requires, mirroring Darwin's provides/requires view of a
// component.

#ifndef DBM_OS_IMAGE_H_
#define DBM_OS_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "os/isa.h"

namespace dbm::os {

/// Hash identifying an interface *type*; bind-time type checking compares
/// these (a required port may only bind to a provided interface of the same
/// type).
using TypeHash = uint32_t;

/// FNV-1a over the interface type name; stable across platforms.
constexpr TypeHash HashInterfaceType(const char* s) {
  uint32_t h = 2166136261u;
  while (*s != '\0') {
    h ^= static_cast<uint32_t>(*s++);
    h *= 16777619u;
  }
  return h;
}

inline TypeHash HashInterfaceType(const std::string& s) {
  return HashInterfaceType(s.c_str());
}

/// A service the component exports: name, entry pc in the text section, and
/// the interface type it implements.
struct InterfaceDecl {
  std::string name;
  uint32_t entry_pc = 0;
  TypeHash type = 0;
};

/// A service the component consumes via kCallPort. The port index in
/// kCallPort's immediate field indexes this list.
struct RequiredPortDecl {
  std::string name;
  TypeHash type = 0;
};

/// A loadable component image.
struct ComponentImage {
  std::string name;
  Program text;
  uint32_t data_words = 64;
  uint32_t stack_words = 64;
  /// Initial contents of the data segment (length must not exceed
  /// data_words; the remainder is zeroed).
  std::vector<int64_t> data_init;
  std::vector<InterfaceDecl> provides;
  std::vector<RequiredPortDecl> required;
  /// Trusted images (the ORB itself, device drivers blessed by the loader)
  /// may contain privileged instructions; everything else must pass the
  /// SISR scan.
  bool trusted = false;
};

/// Identifier of a loaded component instance.
using ComponentId = uint32_t;
constexpr ComponentId kInvalidComponent = 0;

/// Identifier of a registered interface in the ORB's table.
using InterfaceId = uint32_t;
constexpr InterfaceId kInvalidInterface = 0;

}  // namespace dbm::os

#endif  // DBM_OS_IMAGE_H_
