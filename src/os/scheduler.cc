#include "os/scheduler.h"

#include <limits>

namespace dbm::os {

size_t StridePolicy::PickNext(const std::vector<TaskId>& runnable) {
  if (passes_.size() < tickets_.size()) passes_.resize(tickets_.size(), 0);
  size_t best = 0;
  double best_pass = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < runnable.size(); ++i) {
    TaskId id = runnable[i];
    double pass = id < passes_.size() ? passes_[id] : 0;
    if (pass < best_pass) {
      best_pass = pass;
      best = i;
    }
  }
  TaskId chosen = runnable[best];
  uint64_t tickets = chosen < tickets_.size() && tickets_[chosen] > 0
                         ? tickets_[chosen]
                         : 1;
  if (chosen >= passes_.size()) passes_.resize(chosen + 1, 0);
  passes_[chosen] += 1.0 / static_cast<double>(tickets);
  return best;
}

TaskId Scheduler::AddTask(const std::string& name, InterfaceId step_iface) {
  tasks_.push_back(Task{name, step_iface, {}});
  return static_cast<TaskId>(tasks_.size() - 1);
}

bool Scheduler::AllFinished() const {
  for (const Task& t : tasks_) {
    if (!t.stats.finished) return false;
  }
  return true;
}

Result<uint64_t> Scheduler::Run(uint64_t max_dispatches) {
  uint64_t dispatches = 0;
  while (dispatches < max_dispatches) {
    std::vector<TaskId> runnable;
    for (TaskId i = 0; i < tasks_.size(); ++i) {
      if (!tasks_[i].stats.finished) runnable.push_back(i);
    }
    if (runnable.empty()) break;
    size_t pick = policy_->PickNext(runnable);
    if (pick >= runnable.size()) {
      return Status::Internal("policy picked out of range");
    }
    Task& task = tasks_[runnable[pick]];

    Cycles before = vcpu_->ledger()->total();
    DBM_RETURN_NOT_OK_CTX(orb_->Call(task.step),
                          "dispatching task '" + task.name + "'");
    task.stats.cycles += vcpu_->ledger()->total() - before;
    ++task.stats.dispatches;
    ++dispatches;
    if (vcpu_->reg(0) == 0) task.stats.finished = true;
  }
  return dispatches;
}

}  // namespace dbm::os
