// The four protection/IPC models compared in Table 1.
//
// Go! runs *live* on the virtual CPU (a real thread-migrating null RPC
// through the ORB). BSD, Mach 2.5 and L4 are published measurements on
// real hardware we do not have, so they are reproduced as *cost models*:
// each is decomposed into the architectural operations its RPC path
// performs (traps, copies, port lookups, scheduling, address-space
// switches), with per-operation cycle costs calibrated so the totals land
// near the published figures. The reproduced claim is the ordering and the
// orders-of-magnitude gaps, and that each total is the *sum of its
// mechanism's parts* — not a free constant.

#ifndef DBM_OS_IPC_MODELS_H_
#define DBM_OS_IPC_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "os/cycles.h"
#include "os/go_system.h"

namespace dbm::os {

/// A null-RPC cost model.
class IpcModel {
 public:
  virtual ~IpcModel() = default;
  virtual std::string name() const = 0;
  /// Per-RPC cost items (label, cycles, multiplicity).
  virtual std::vector<CostItem> Breakdown() const = 0;
  /// Performs/charges one null RPC round trip; returns its cycle cost.
  virtual Result<Cycles> NullRpc() = 0;
  /// Published Table 1 figure, for reporting alongside the model.
  virtual Cycles PublishedCycles() const = 0;

  /// Sum of the breakdown.
  Cycles ModelledCycles() const {
    Cycles total = 0;
    for (const CostItem& item : Breakdown()) total += item.Total();
    return total;
  }
};

/// BSD (Unix): RPC over a pipe/socket pair. Two blocking syscall round
/// trips, data copies through the kernel, sleep/wakeup scheduling and two
/// full process context switches with TLB and cache refill costs.
class BsdIpcModel : public IpcModel {
 public:
  std::string name() const override { return "BSD (Unix)"; }
  std::vector<CostItem> Breakdown() const override;
  Result<Cycles> NullRpc() override;
  Cycles PublishedCycles() const override { return 55000; }
};

/// Mach 2.5: monolithic-kernel Mach port IPC — trap, message validation,
/// port-rights lookup, message copyin/copyout, scheduler handoff and an
/// address-space switch per direction.
class MachIpcModel : public IpcModel {
 public:
  std::string name() const override { return "Mach 2.5"; }
  std::vector<CostItem> Breakdown() const override;
  Result<Cycles> NullRpc() override;
  Cycles PublishedCycles() const override { return 3000; }
};

/// L4: the optimised short-path IPC — register-only message transfer and a
/// lean thread/address-space switch, but still two kernel entries per
/// round trip.
class L4IpcModel : public IpcModel {
 public:
  std::string name() const override { return "L4"; }
  std::vector<CostItem> Breakdown() const override;
  Result<Cycles> NullRpc() override;
  Cycles PublishedCycles() const override { return 665; }
};

/// Go!: a live null RPC between two loaded components through the ORB on
/// the virtual CPU. The breakdown is read back from the cycle ledger.
class GoIpcModel : public IpcModel {
 public:
  GoIpcModel();
  std::string name() const override { return "Go!"; }
  std::vector<CostItem> Breakdown() const override;
  Result<Cycles> NullRpc() override;
  Cycles PublishedCycles() const override { return 73; }

  GoSystem& system() { return *system_; }

 private:
  /// Cycle cost of the outer host→client envelope around the measured
  /// component-to-component RPC (same mechanism, so same formula).
  Cycles EnvelopeCycles() const;

  std::unique_ptr<GoSystem> system_;
  InterfaceId forward_iface_ = kInvalidInterface;
  InterfaceId null_iface_ = kInvalidInterface;
  ComponentId client_ = kInvalidComponent;
};

/// All four models in Table 1 order.
std::vector<std::unique_ptr<IpcModel>> MakeTable1Models();

}  // namespace dbm::os

#endif  // DBM_OS_IPC_MODELS_H_
