#include "os/isa.h"

#include "common/strings.h"

namespace dbm::os {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMovImm: return "movi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kCallPort: return "callport";
    case Op::kRet: return "ret";
    case Op::kHalt: return "halt";
    case Op::kLoadSegment: return "lseg";
    case Op::kEnableInts: return "sti";
    case Op::kDisableInts: return "cli";
    case Op::kIoPort: return "ioport";
  }
  return "?";
}

std::string Disassemble(const Instr& ins) {
  return StrFormat("%-8s r%d, r%d, r%d, #%lld", OpName(ins.op), ins.a, ins.b,
                   ins.c, static_cast<long long>(ins.imm));
}

}  // namespace dbm::os
