#include "os/go_system.h"

namespace dbm::os::images {

ComponentImage NullServer(const std::string& name) {
  ComponentImage img;
  img.name = name;
  img.text = {Instr{Op::kRet, 0, 0, 0, 0}};
  img.provides = {
      InterfaceDecl{"serve", 0, HashInterfaceType("null-service")}};
  return img;
}

ComponentImage Adder(const std::string& name) {
  ComponentImage img;
  img.name = name;
  img.text = {
      Instr{Op::kAdd, 0, 1, 2, 0},  // r0 = r1 + r2
      Instr{Op::kRet, 0, 0, 0, 0},
  };
  img.provides = {InterfaceDecl{"add", 0, HashInterfaceType("adder")}};
  return img;
}

ComponentImage Forwarder(const std::string& name, TypeHash port_type) {
  ComponentImage img;
  img.name = name;
  img.text = {
      Instr{Op::kCallPort, 0, 0, 0, 0},
      Instr{Op::kRet, 0, 0, 0, 0},
  };
  img.provides = {
      InterfaceDecl{"forward", 0, HashInterfaceType("forwarder")}};
  img.required = {RequiredPortDecl{"downstream", port_type}};
  return img;
}

ComponentImage RepeatCaller(const std::string& name, TypeHash port_type,
                            int64_t n) {
  ComponentImage img;
  img.name = name;
  // r4 = n; while (r4 != 0) { callport 0; r4 -= 1; } ret
  img.text = {
      Instr{Op::kMovImm, 4, 0, 0, n},   // 0: r4 = n
      Instr{Op::kMovImm, 5, 0, 0, 1},   // 1: r5 = 1
      Instr{Op::kJz, 4, 0, 0, 6},       // 2: if r4 == 0 goto 6
      Instr{Op::kCallPort, 0, 0, 0, 0}, // 3: invoke port 0
      Instr{Op::kSub, 4, 4, 5, 0},      // 4: r4 -= 1
      Instr{Op::kJmp, 0, 0, 0, 2},      // 5: loop
      Instr{Op::kRet, 0, 0, 0, 0},      // 6: done
  };
  img.provides = {InterfaceDecl{"run", 0, HashInterfaceType("repeater")}};
  img.required = {RequiredPortDecl{"target", port_type}};
  return img;
}

ComponentImage CountdownTask(const std::string& name, int64_t n) {
  ComponentImage img;
  img.name = name;
  img.text = {
      Instr{Op::kMovImm, 6, 0, 0, 0},   // 0: r6 = 0 (base register)
      Instr{Op::kLoad, 0, 6, 0, 0},     // 1: r0 = data[0]
      Instr{Op::kJz, 0, 0, 0, 6},       // 2: already done -> ret (r0=0)
      Instr{Op::kMovImm, 5, 0, 0, 1},   // 3: r5 = 1
      Instr{Op::kSub, 0, 0, 5, 0},      // 4: r0 -= 1
      Instr{Op::kStore, 0, 6, 0, 0},    // 5: data[0] = r0
      Instr{Op::kRet, 0, 0, 0, 0},      // 6:
  };
  img.data_init = {n};
  img.provides = {InterfaceDecl{"step", 0, HashInterfaceType("task")}};
  return img;
}

ComponentImage Malicious(const std::string& name) {
  ComponentImage img;
  img.name = name;
  img.text = {
      Instr{Op::kLoadSegment, 0, 0, 0, 1},  // forbidden in user code
      Instr{Op::kRet, 0, 0, 0, 0},
  };
  img.provides = {InterfaceDecl{"evil", 0, HashInterfaceType("evil")}};
  return img;
}

}  // namespace dbm::os::images
