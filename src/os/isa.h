// The virtual instruction set executed by component code.
//
// SISR (Software-based Instruction-Set Reduction) works by *scanning* a
// component's text section at load time and rejecting privileged
// instructions, so that all code can then run in a single processor mode.
// To reproduce that mechanism we need an ISA with a privileged subset; this
// small register machine provides it. The encoding is deliberately simple —
// the contribution being reproduced is the scan-then-trust protection
// model, not x86 decoding.

#ifndef DBM_OS_ISA_H_
#define DBM_OS_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbm::os {

/// Opcodes. The privileged subset mirrors the operations the paper calls
/// out: segment-register loads, interrupt control, and port I/O.
enum class Op : uint8_t {
  // --- unprivileged ---
  kNop = 0,
  kMovImm,    // r[a] = imm
  kMov,       // r[a] = r[b]
  kAdd,       // r[a] = r[b] + r[c]
  kSub,       // r[a] = r[b] - r[c]
  kMul,       // r[a] = r[b] * r[c]
  kLoad,      // r[a] = data[r[b] + imm]      (checked against data segment)
  kStore,     // data[r[b] + imm] = r[a]
  kJmp,       // pc = imm
  kJz,        // if (r[a] == 0) pc = imm
  kCallPort,  // invoke required-port #imm via the ORB (thread migration)
  kRet,       // return from component entry point
  kHalt,
  // --- privileged (rejected by the SISR scanner in user components) ---
  kLoadSegment,   // load a segment register — the context-switch primitive
  kEnableInts,    // STI
  kDisableInts,   // CLI
  kIoPort,        // device port access
};

/// True for opcodes only the ORB (trusted) component may contain.
constexpr bool IsPrivileged(Op op) {
  return op == Op::kLoadSegment || op == Op::kEnableInts ||
         op == Op::kDisableInts || op == Op::kIoPort;
}

/// Per-opcode execution cost in cycles.
constexpr uint64_t OpCost(Op op) {
  switch (op) {
    case Op::kNop: return 1;
    case Op::kMovImm: return 1;
    case Op::kMov: return 1;
    case Op::kAdd: return 1;
    case Op::kSub: return 1;
    case Op::kMul: return 3;
    case Op::kLoad: return 2;
    case Op::kStore: return 2;
    case Op::kJmp: return 1;
    case Op::kJz: return 1;
    case Op::kCallPort: return 5;   // near call into the ORB stub
    case Op::kRet: return 5;
    case Op::kHalt: return 1;
    case Op::kLoadSegment: return 3;  // paper: segment reg load = 3 cycles
    case Op::kEnableInts: return 7;
    case Op::kDisableInts: return 7;
    case Op::kIoPort: return 30;
  }
  return 1;
}

/// A decoded instruction. Registers are indices into an 8-register file.
struct Instr {
  Op op = Op::kNop;
  uint8_t a = 0;
  uint8_t b = 0;
  uint8_t c = 0;
  int64_t imm = 0;
};

/// A component text section.
using Program = std::vector<Instr>;

/// Human-readable opcode name (for diagnostics and scanner reports).
const char* OpName(Op op);

/// Disassembles one instruction.
std::string Disassemble(const Instr& ins);

}  // namespace dbm::os

#endif  // DBM_OS_ISA_H_
