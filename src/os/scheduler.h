// A scheduler component for the zero-kernel system.
//
// "A truly component-based OS can be seen as a zero-kernel system, where
// the kernel has been replaced by a set of components that cooperate to
// provide services usually found in traditional kernels" (§5.1). The
// scheduler is one such component: it multiplexes *tasks* (each an
// interface to invoke repeatedly) over the single virtual CPU. Because a
// dispatch is just an ORB call, a "context switch" between tasks costs
// one thread migration — the cycle ledger shows scheduling overhead in
// the same currency as Table 1.
//
// Policies are swappable (round-robin and stride/priority), exercising
// the same replace-a-policy-component pattern as the buffer manager.

#ifndef DBM_OS_SCHEDULER_H_
#define DBM_OS_SCHEDULER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "os/orb.h"

namespace dbm::os {

using TaskId = uint32_t;

struct TaskStats {
  uint64_t dispatches = 0;
  Cycles cycles = 0;
  bool finished = false;
};

/// Scheduling policy interface.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual const char* name() const = 0;
  /// Chooses among runnable task indices (non-empty).
  virtual size_t PickNext(const std::vector<TaskId>& runnable) = 0;
};

/// Round-robin over runnable tasks.
class RoundRobinPolicy : public SchedulingPolicy {
 public:
  const char* name() const override { return "round-robin"; }
  size_t PickNext(const std::vector<TaskId>& runnable) override {
    return next_++ % runnable.size();
  }

 private:
  size_t next_ = 0;
};

/// Stride scheduling: tasks with higher tickets run proportionally more.
class StridePolicy : public SchedulingPolicy {
 public:
  explicit StridePolicy(std::vector<uint64_t> tickets)
      : tickets_(std::move(tickets)) {}
  const char* name() const override { return "stride"; }
  size_t PickNext(const std::vector<TaskId>& runnable) override;

 private:
  std::vector<uint64_t> tickets_;
  std::vector<double> passes_;
};

/// The scheduler component: dispatches each task's interface via the ORB
/// for one quantum; a task is done when its run returns r0 == 0.
class Scheduler {
 public:
  Scheduler(Orb* orb, Vcpu* vcpu, std::unique_ptr<SchedulingPolicy> policy)
      : orb_(orb), vcpu_(vcpu), policy_(std::move(policy)) {}

  /// Registers a task; `step_iface` is invoked once per quantum and its
  /// r0 return value is "more work remaining?" (0 = finished).
  TaskId AddTask(const std::string& name, InterfaceId step_iface);

  /// Runs until all tasks finish or `max_dispatches` quanta have run.
  /// Returns the number of dispatches performed.
  Result<uint64_t> Run(uint64_t max_dispatches);

  const TaskStats& stats(TaskId id) const { return tasks_[id].stats; }
  const std::string& task_name(TaskId id) const { return tasks_[id].name; }
  size_t task_count() const { return tasks_.size(); }
  bool AllFinished() const;

  /// Swap the policy mid-run (the adaptation hook).
  void SetPolicy(std::unique_ptr<SchedulingPolicy> policy) {
    policy_ = std::move(policy);
  }
  const char* policy_name() const { return policy_->name(); }

 private:
  struct Task {
    std::string name;
    InterfaceId step;
    TaskStats stats;
  };

  Orb* orb_;
  Vcpu* vcpu_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::vector<Task> tasks_;
};

}  // namespace dbm::os

#endif  // DBM_OS_SCHEDULER_H_
