// The virtual CPU.
//
// Executes component text with cycle accounting. There is exactly one
// processor mode (that is the point of SISR); a "context switch" is a
// reload of the code/data/stack selectors in the thread context, and the
// ORB is the only party that performs it. The VCPU still *checks*
// privileged opcodes at execute time as defence in depth — the scanner is
// the protection mechanism, the runtime check exists so tests can prove a
// scanner bypass would be caught rather than silently honoured.

#ifndef DBM_OS_VCPU_H_
#define DBM_OS_VCPU_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "os/cycles.h"
#include "os/image.h"
#include "os/isa.h"
#include "os/memory.h"

namespace dbm::os {

/// The architectural thread state: selectors + pc. Loading new selectors
/// IS the context switch (3 cycles per segment register on the modelled
/// Pentium).
struct ThreadContext {
  Selector code = kNullSelector;
  Selector data = kNullSelector;
  Selector stack = kNullSelector;
  uint32_t pc = 0;
  ComponentId component = kInvalidComponent;
  bool privileged = false;
};

class Vcpu {
 public:
  /// Handler invoked on kCallPort: (port index) → status. Installed by the
  /// ORB; it performs the thread-migrating invocation.
  using PortHandler =
      std::function<Status(ComponentId caller, uint32_t port_index)>;

  Vcpu(SegmentMemory* memory, CycleLedger* ledger)
      : memory_(memory), ledger_(ledger) {}

  /// Associates a code segment with its (immutable) text section.
  void MapText(Selector code_seg, const Program* text) {
    text_map_[code_seg] = text;
  }
  void UnmapText(Selector code_seg) { text_map_.erase(code_seg); }

  void set_port_handler(PortHandler handler) {
    port_handler_ = std::move(handler);
  }

  /// Runs `ctx` until kRet/kHalt or fault. `max_instructions` bounds
  /// runaway loops. Registers persist across Run calls — they are the
  /// argument/return-value passing convention (r0 = return value,
  /// r1..r3 = arguments), exactly the register-window style the paper's
  /// thread-migrating RPC uses.
  Status Run(ThreadContext ctx, uint64_t max_instructions = 1 << 20);

  int64_t reg(int i) const { return regs_[static_cast<size_t>(i)]; }
  void set_reg(int i, int64_t v) { regs_[static_cast<size_t>(i)] = v; }

  CycleLedger* ledger() { return ledger_; }
  SegmentMemory* memory() { return memory_; }

  /// Depth of nested thread-migrating calls currently on this thread.
  int call_depth() const { return call_depth_; }

 private:
  SegmentMemory* memory_;
  CycleLedger* ledger_;
  std::unordered_map<Selector, const Program*> text_map_;
  PortHandler port_handler_;
  std::array<int64_t, 8> regs_ = {};
  int call_depth_ = 0;

  static constexpr int kMaxCallDepth = 64;
};

}  // namespace dbm::os

#endif  // DBM_OS_VCPU_H_
