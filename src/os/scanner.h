// The SISR load-time code scanner.
//
// SISR removes the kernel/user mode distinction: instead of trapping
// privileged operations at run time, the loader *scans* a component's text
// section and refuses to load code containing privileged instructions or
// malformed control flow. Once loaded, the code can run at full speed with
// no mode switches — protection has been paid for once, at load time.

#ifndef DBM_OS_SCANNER_H_
#define DBM_OS_SCANNER_H_

#include <string>
#include <vector>

#include "os/cycles.h"
#include "os/image.h"
#include "os/isa.h"

namespace dbm::os {

/// One scanner finding.
struct ScanViolation {
  uint32_t pc = 0;
  std::string reason;
};

/// Result of scanning an image.
struct ScanReport {
  bool accepted = false;
  std::vector<ScanViolation> violations;
  /// Load-time cost of the scan itself; amortised over the component's
  /// lifetime (this is the ablation in bench_componentisation).
  Cycles scan_cycles = 0;
};

/// Scans component text for:
///  * privileged opcodes (kLoadSegment, kEnableInts, kDisableInts, kIoPort)
///    in untrusted images;
///  * jump targets outside the text section;
///  * kCallPort immediates outside the declared required-port list;
///  * register operands outside the 8-register file;
///  * a text section that can fall off the end (last instruction must be a
///    terminator or unconditional jump).
class SisrScanner {
 public:
  /// Cycles charged per instruction scanned (one pass, table-driven).
  static constexpr Cycles kCyclesPerInstruction = 2;

  ScanReport Scan(const ComponentImage& image) const;
};

}  // namespace dbm::os

#endif  // DBM_OS_SCANNER_H_
