// The component loader: the point at which SISR protection is established.
//
// Loading = scan (reject privileged/malformed code) → allocate code/data/
// stack segments → map text → register provided interfaces with the ORB →
// install the required-port table. After load, nothing can go wrong that
// segmentation will not catch; there is no kernel mode to re-enter.

#ifndef DBM_OS_LOADER_H_
#define DBM_OS_LOADER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "os/image.h"
#include "os/memory.h"
#include "os/orb.h"
#include "os/scanner.h"
#include "os/vcpu.h"

namespace dbm::os {

/// A loaded component instance: its protection state plus the registered
/// interface ids.
struct LoadedComponent {
  ComponentId id = kInvalidComponent;
  ComponentImage image;  // owns the text the VCPU executes
  Selector code = kNullSelector;
  Selector data = kNullSelector;
  Selector stack = kNullSelector;
  std::vector<InterfaceId> provided;  // parallel to image.provides
};

class Loader {
 public:
  Loader(SegmentMemory* memory, Vcpu* vcpu, Orb* orb)
      : memory_(memory), vcpu_(vcpu), orb_(orb) {}

  /// Scans and loads `image`. Fails with ProtectionFault (carrying the
  /// scanner's first violation) if the scan rejects it.
  Result<ComponentId> Load(const ComponentImage& image);

  /// Revokes interfaces, unbinds ports, unmaps text, frees segments.
  Status Unload(ComponentId id);

  const LoadedComponent* Get(ComponentId id) const;

  /// Finds a provided interface by name on a loaded component.
  Result<InterfaceId> FindInterface(ComponentId id,
                                    const std::string& name) const;

  /// Total load-time scan cost so far (for the amortisation ablation).
  Cycles total_scan_cycles() const { return total_scan_cycles_; }
  size_t loaded_count() const { return components_.size(); }

 private:
  SegmentMemory* memory_;
  Vcpu* vcpu_;
  Orb* orb_;
  SisrScanner scanner_;
  std::unordered_map<ComponentId, std::unique_ptr<LoadedComponent>>
      components_;
  ComponentId next_id_ = 1;
  Cycles total_scan_cycles_ = 0;
};

}  // namespace dbm::os

#endif  // DBM_OS_LOADER_H_
