// The ORB: the only privileged component in the zero-kernel system.
//
// Components invoke services on one another by indirecting through the ORB,
// which performs the protected intra-machine RPC by *migrating the thread*:
// it saves the caller's selectors, loads the callee's code/data/stack
// selectors (3 cycles per segment register on the modelled Pentium), runs
// the callee, and restores the caller on return. Because the SISR scanner
// guarantees no user component contains segment-register loads, this
// indirection is the sole way to cross a protection boundary — the ORB is
// "the nearest part of the OS analogous to a kernel".
//
// Interface registrations cost exactly 32 bytes each (the paper's §5.1
// figure); Orb::MetadataBytes() exposes this for the memory benchmark.

#ifndef DBM_OS_ORB_H_
#define DBM_OS_ORB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "os/cycles.h"
#include "os/image.h"
#include "os/vcpu.h"

namespace dbm::os {

/// A registered interface. Exactly 32 bytes — the per-interface protection
/// metadata cost reported in the paper. Debug names live in a side table
/// that is not protection state.
struct InterfaceRecord {
  ComponentId component;  // owning component instance
  uint32_t entry_pc;      // entry point within the code segment
  Selector code_seg;
  Selector data_seg;
  Selector stack_seg;
  TypeHash type;          // bind-time type check token
  uint32_t flags;         // bit 0: present/valid
  uint32_t name_ref;      // index into the debug name table
};
static_assert(sizeof(InterfaceRecord) == 32,
              "the paper's claim is 32 bytes per interface");

/// Fixed dispatch costs of the ORB fast path. Together with the three
/// segment-register loads each way (3 cycles each) and the callee's
/// call/ret instructions, a null RPC totals ~73 cycles — Table 1's Go! row.
struct OrbCosts {
  Cycles near_call = 5;        // caller's call into the ORB stub
  Cycles iface_lookup = 12;    // indexed fetch of the 32-byte record
  Cycles access_check = 6;     // present bit + type token compare
  Cycles save_context = 8;     // caller selectors + pc to the ORB stack
  Cycles arg_setup = 6;        // register-window argument pass
  Cycles restore_context = 8;
  Cycles orb_exit = 5;         // return to caller
};

class Orb {
 public:
  explicit Orb(Vcpu* vcpu,
               const MachineCosts& machine = DefaultMachineCosts())
      : vcpu_(vcpu), machine_(machine) {
    // Slot 0 is the invalid interface.
    table_.push_back(InterfaceRecord{});
    names_.push_back("<invalid>");
    // Metric handles resolve once here; InvokeRecord only touches atomics.
    obs::Registry& reg = obs::Registry::Default();
    obs_invocations_ = &reg.GetCounter("os.orb.invocations");
    obs_segment_reloads_ = &reg.GetCounter("os.orb.segment_reloads");
    obs_hop_cycles_ = &reg.GetHistogram("os.orb.hop_cycles");
  }

  /// Registers a provided interface; returns its id.
  InterfaceId RegisterInterface(ComponentId component,
                                const InterfaceDecl& decl, Selector code,
                                Selector data, Selector stack);

  /// Marks an interface invalid; in-flight lookups start failing with
  /// Unavailable. Used by the reconfiguration engine during a switch.
  Status RevokeInterface(InterfaceId id);

  /// Declares a component's required-port table (sized at load time).
  void InstallPortTable(ComponentId component, size_t port_count);
  void RemovePortTable(ComponentId component);

  /// Binds `component`'s required port `port_index` to `iface`, checking
  /// interface types. Rebinding over an existing binding is allowed (it is
  /// how adaptation swaps implementations).
  Status Bind(ComponentId component, uint32_t port_index, InterfaceId iface,
              TypeHash required_type);

  /// Unbinds a port; subsequent calls through it fail with Unavailable.
  Status Unbind(ComponentId component, uint32_t port_index);

  /// Current binding of a port (kInvalidInterface if unbound).
  InterfaceId BoundTo(ComponentId component, uint32_t port_index) const;

  /// Thread-migrating invocation from a running component (kCallPort).
  /// The caller's near-call cost was already charged by the VCPU.
  Status Invoke(ComponentId caller, uint32_t port_index);

  /// Host-initiated invocation (the host acts as a trusted caller);
  /// charges the near-call itself so the full path costs the same 73
  /// cycles as a component-to-component null RPC.
  Status Call(InterfaceId iface);

  /// Call with up to three register arguments; r0 holds the return value
  /// afterwards (read it from the VCPU).
  Status Call(InterfaceId iface, int64_t a1, int64_t a2 = 0, int64_t a3 = 0);

  const InterfaceRecord* Lookup(InterfaceId id) const;
  const std::string& InterfaceName(InterfaceId id) const;

  /// Protection metadata held by the ORB, in bytes (32 per interface).
  size_t MetadataBytes() const {
    return live_interfaces_ * sizeof(InterfaceRecord);
  }
  size_t interface_count() const { return live_interfaces_; }

  const OrbCosts& costs() const { return costs_; }
  uint64_t invocation_count() const { return invocations_; }

 private:
  Status InvokeRecord(const InterfaceRecord& rec);

  Vcpu* vcpu_;
  MachineCosts machine_;
  OrbCosts costs_;
  std::vector<InterfaceRecord> table_;
  std::vector<std::string> names_;
  std::unordered_map<ComponentId, std::vector<InterfaceId>> port_tables_;
  size_t live_interfaces_ = 0;
  uint64_t invocations_ = 0;

  // Observability handles (owned by the global registry; see orb ctor).
  // The hop histogram records the ORB's *own* per-hop cycles — dispatch +
  // both segment-load legs, callee excluded — so chained calls (Fig 6)
  // contribute one flat sample per hop rather than nested totals.
  obs::Counter* obs_invocations_;
  obs::Counter* obs_segment_reloads_;
  obs::Histogram* obs_hop_cycles_;
};

}  // namespace dbm::os

#endif  // DBM_OS_ORB_H_
