// The ORB: the only privileged component in the zero-kernel system.
//
// Components invoke services on one another by indirecting through the ORB,
// which performs the protected intra-machine RPC by *migrating the thread*:
// it saves the caller's selectors, loads the callee's code/data/stack
// selectors (3 cycles per segment register on the modelled Pentium), runs
// the callee, and restores the caller on return. Because the SISR scanner
// guarantees no user component contains segment-register loads, this
// indirection is the sole way to cross a protection boundary — the ORB is
// "the nearest part of the OS analogous to a kernel".
//
// Interface registrations cost exactly 32 bytes each (the paper's §5.1
// figure); Orb::MetadataBytes() exposes this for the memory benchmark.

#ifndef DBM_OS_ORB_H_
#define DBM_OS_ORB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "fault/breaker.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "os/cycles.h"
#include "os/image.h"
#include "os/vcpu.h"

namespace dbm::os {

/// A registered interface. Exactly 32 bytes — the per-interface protection
/// metadata cost reported in the paper. Debug names live in a side table
/// that is not protection state.
struct InterfaceRecord {
  ComponentId component;  // owning component instance
  uint32_t entry_pc;      // entry point within the code segment
  Selector code_seg;
  Selector data_seg;
  Selector stack_seg;
  TypeHash type;          // bind-time type check token
  uint32_t flags;         // bit 0: present/valid
  uint32_t name_ref;      // index into the debug name table
};
static_assert(sizeof(InterfaceRecord) == 32,
              "the paper's claim is 32 bytes per interface");

/// Fixed dispatch costs of the ORB fast path. Together with the three
/// segment-register loads each way (3 cycles each) and the callee's
/// call/ret instructions, a null RPC totals ~73 cycles — Table 1's Go! row.
struct OrbCosts {
  Cycles near_call = 5;        // caller's call into the ORB stub
  Cycles iface_lookup = 12;    // indexed fetch of the 32-byte record
  Cycles access_check = 6;     // present bit + type token compare
  Cycles save_context = 8;     // caller selectors + pc to the ORB stack
  Cycles arg_setup = 6;        // register-window argument pass
  Cycles restore_context = 8;
  Cycles orb_exit = 5;         // return to caller
  /// Supervision tax: deadline/breaker bookkeeping on a policied call
  /// (a table-indexed load + two compares). Charged only when the
  /// interface has a CallPolicy — the bare 73-cycle hop is untouched.
  Cycles supervision = 2;
};

/// Per-interface call policy for supervised invocation. All times are
/// simulated cycles (the ORB's native time base). Defaults give a
/// deadline-less, breaker-guarded call with two retries.
struct CallPolicy {
  /// Per-attempt cycle budget; an attempt consuming more fails with
  /// DeadlineExceeded. 0 = no deadline (hangs then cost kHangCycles).
  Cycles deadline = 0;
  /// Retries after the first attempt, on IsRetryable() failures only.
  int max_retries = 2;
  /// Backoff before retry k is `backoff_base << (k-1)` cycles, ±jitter.
  Cycles backoff_base = 16;
  /// Fraction of the backoff randomised (deterministically, from the
  /// ORB's fixed-seed Rng) to de-synchronise retry storms.
  double jitter = 0.25;
  /// Consecutive failed *attempts* that trip the breaker open. 0
  /// disables the breaker for this interface.
  int breaker_threshold = 3;
  /// Open → half-open (single probe admitted) after this many cycles.
  Cycles breaker_cooldown = 2000;
  /// What an injected hang costs when no deadline bounds it.
  static constexpr Cycles kHangCycles = 10000;
};

class Orb {
 public:
  explicit Orb(Vcpu* vcpu,
               const MachineCosts& machine = DefaultMachineCosts())
      : vcpu_(vcpu), machine_(machine) {
    // Slot 0 is the invalid interface.
    table_.push_back(InterfaceRecord{});
    names_.push_back("<invalid>");
    // Metric handles resolve once here; InvokeRecord only touches atomics.
    obs::Registry& reg = obs::Registry::Default();
    obs_invocations_ = &reg.GetCounter("os.orb.invocations");
    obs_segment_reloads_ = &reg.GetCounter("os.orb.segment_reloads");
    obs_hop_cycles_ = &reg.GetHistogram("os.orb.hop_cycles");
    fault_point_ = fault::Injector::Default().GetPoint("orb.invoke");
  }

  /// Registers a provided interface; returns its id.
  InterfaceId RegisterInterface(ComponentId component,
                                const InterfaceDecl& decl, Selector code,
                                Selector data, Selector stack);

  /// Marks an interface invalid; in-flight lookups start failing with
  /// Unavailable. Used by the reconfiguration engine during a switch.
  Status RevokeInterface(InterfaceId id);

  /// Declares a component's required-port table (sized at load time).
  void InstallPortTable(ComponentId component, size_t port_count);
  void RemovePortTable(ComponentId component);

  /// Binds `component`'s required port `port_index` to `iface`, checking
  /// interface types. Rebinding over an existing binding is allowed (it is
  /// how adaptation swaps implementations).
  Status Bind(ComponentId component, uint32_t port_index, InterfaceId iface,
              TypeHash required_type);

  /// Unbinds a port; subsequent calls through it fail with Unavailable.
  Status Unbind(ComponentId component, uint32_t port_index);

  /// Current binding of a port (kInvalidInterface if unbound).
  InterfaceId BoundTo(ComponentId component, uint32_t port_index) const;

  /// Thread-migrating invocation from a running component (kCallPort).
  /// The caller's near-call cost was already charged by the VCPU.
  Status Invoke(ComponentId caller, uint32_t port_index);

  /// Host-initiated invocation (the host acts as a trusted caller);
  /// charges the near-call itself so the full path costs the same 73
  /// cycles as a component-to-component null RPC.
  Status Call(InterfaceId iface);

  /// Call with up to three register arguments; r0 holds the return value
  /// afterwards (read it from the VCPU).
  Status Call(InterfaceId iface, int64_t a1, int64_t a2 = 0, int64_t a3 = 0);

  const InterfaceRecord* Lookup(InterfaceId id) const;
  const std::string& InterfaceName(InterfaceId id) const;

  /// Protection metadata held by the ORB, in bytes (32 per interface).
  size_t MetadataBytes() const {
    return live_interfaces_ * sizeof(InterfaceRecord);
  }
  size_t interface_count() const { return live_interfaces_; }

  const OrbCosts& costs() const { return costs_; }
  uint64_t invocation_count() const { return invocations_; }

  // --- Supervised invocation -------------------------------------------

  /// Attaches `policy` to `iface`: every subsequent Invoke/Call through
  /// it runs under deadline + retry + circuit-breaker supervision, with
  /// outcomes on the registry as `orb.<iface-name>.{timeouts,retries,
  /// failures,rejected,breaker_trips}` and `.breaker_state` (0 closed,
  /// 1 half-open, 2 open). Unpolicied interfaces keep the bare fast
  /// path.
  Status SetCallPolicy(InterfaceId iface, const CallPolicy& policy);

  /// Current breaker state of `iface` (0 closed / 1 half-open / 2 open;
  /// closed when unsupervised) — the gauge the session manager reads to
  /// SWITCH to a fallback provider.
  int BreakerState(InterfaceId iface) const;

  /// Consecutive failed attempts (testing / gauges).
  int ConsecutiveFailures(InterfaceId iface) const;

  /// Sim-time source stamped onto fault-log events (the ORB itself runs
  /// on cycles, not SimTime). Unset → events carry 0.
  void set_now_fn(std::function<SimTime()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

 private:
  /// Per-supervised-interface runtime state. Metric handles resolve at
  /// SetCallPolicy so the per-call path only touches atomics.
  struct Supervision {
    CallPolicy policy;
    fault::CircuitBreaker breaker;
    std::string name;  // interface debug name ("orb.<name>.*" metrics)
    obs::Counter* timeouts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* failures = nullptr;   // calls failed after all retries
    obs::Counter* rejected = nullptr;   // calls refused by an open breaker
    obs::Counter* breaker_trips = nullptr;
    obs::Gauge* breaker_state = nullptr;
  };

  Status InvokeRecord(const InterfaceRecord& rec);
  /// Routes a validated interface through supervision / injection / the
  /// bare path — the single dispatch chokepoint behind Invoke and Call.
  Status Dispatch(InterfaceId iface, const InterfaceRecord& rec);
  /// One attempt: injector verdict, the hop itself, deadline check.
  /// `sup` is null on unsupervised calls.
  Status AttemptInvoke(InterfaceId iface, const InterfaceRecord& rec,
                       Supervision* sup);
  Status InvokeSupervised(InterfaceId iface, const InterfaceRecord& rec,
                          Supervision& sup);
  SimTime FaultNow() const { return now_fn_ ? now_fn_() : 0; }

  Vcpu* vcpu_;
  MachineCosts machine_;
  OrbCosts costs_;
  std::vector<InterfaceRecord> table_;
  std::vector<std::string> names_;
  std::unordered_map<ComponentId, std::vector<InterfaceId>> port_tables_;
  size_t live_interfaces_ = 0;
  uint64_t invocations_ = 0;

  // Observability handles (owned by the global registry; see orb ctor).
  // The hop histogram records the ORB's *own* per-hop cycles — dispatch +
  // both segment-load legs, callee excluded — so chained calls (Fig 6)
  // contribute one flat sample per hop rather than nested totals.
  obs::Counter* obs_invocations_;
  obs::Counter* obs_segment_reloads_;
  obs::Histogram* obs_hop_cycles_;

  // Fault plane. The "orb.invoke" point handle is resolved once; with
  // nothing armed and no policies installed, Dispatch adds one empty-map
  // check and one relaxed load to the hop path.
  fault::Point* fault_point_;
  std::unordered_map<InterfaceId, std::unique_ptr<Supervision>> supervised_;
  Rng rng_{0x0b5e55ed0b5e55edull};  // fixed seed: deterministic jitter
  std::function<SimTime()> now_fn_;
};

}  // namespace dbm::os

#endif  // DBM_OS_ORB_H_
