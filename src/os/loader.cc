#include "os/loader.h"

#include "common/strings.h"

namespace dbm::os {

Result<ComponentId> Loader::Load(const ComponentImage& image) {
  ScanReport report = scanner_.Scan(image);
  total_scan_cycles_ += report.scan_cycles;
  if (!report.accepted) {
    const ScanViolation& first = report.violations.front();
    return Status::ProtectionFault(
        StrFormat("image '%s' rejected by SISR scan (%zu violations; first: "
                  "pc %u: %s)",
                  image.name.c_str(), report.violations.size(), first.pc,
                  first.reason.c_str()));
  }

  auto lc = std::make_unique<LoadedComponent>();
  lc->image = image;

  DBM_ASSIGN_OR_RETURN(
      lc->code, memory_->Allocate(
                    static_cast<uint32_t>(image.text.size()),
                    SegmentKind::kCode));
  auto cleanup_code = [&] { (void)memory_->Free(lc->code); };
  auto data = memory_->Allocate(image.data_words, SegmentKind::kData);
  if (!data.ok()) {
    cleanup_code();
    return data.status();
  }
  lc->data = *data;
  auto stack = memory_->Allocate(image.stack_words, SegmentKind::kStack);
  if (!stack.ok()) {
    cleanup_code();
    (void)memory_->Free(lc->data);
    return stack.status();
  }
  lc->stack = *stack;

  if (image.data_init.size() > image.data_words) {
    (void)memory_->Free(lc->code);
    (void)memory_->Free(lc->data);
    (void)memory_->Free(lc->stack);
    return Status::InvalidArgument("data_init larger than data segment");
  }
  for (size_t i = 0; i < image.data_init.size(); ++i) {
    DBM_RETURN_NOT_OK(memory_->Write(lc->data, static_cast<uint32_t>(i),
                                     image.data_init[i]));
  }

  lc->id = next_id_++;
  vcpu_->MapText(lc->code, &lc->image.text);
  orb_->InstallPortTable(lc->id, lc->image.required.size());
  for (const InterfaceDecl& decl : lc->image.provides) {
    lc->provided.push_back(
        orb_->RegisterInterface(lc->id, decl, lc->code, lc->data, lc->stack));
  }

  ComponentId id = lc->id;
  components_[id] = std::move(lc);
  return id;
}

Status Loader::Unload(ComponentId id) {
  auto it = components_.find(id);
  if (it == components_.end()) {
    return Status::NotFound(StrFormat("component %u not loaded", id));
  }
  LoadedComponent& lc = *it->second;
  for (InterfaceId iface : lc.provided) {
    (void)orb_->RevokeInterface(iface);
  }
  orb_->RemovePortTable(id);
  vcpu_->UnmapText(lc.code);
  DBM_RETURN_NOT_OK(memory_->Free(lc.code));
  DBM_RETURN_NOT_OK(memory_->Free(lc.data));
  DBM_RETURN_NOT_OK(memory_->Free(lc.stack));
  components_.erase(it);
  return Status::OK();
}

const LoadedComponent* Loader::Get(ComponentId id) const {
  auto it = components_.find(id);
  return it == components_.end() ? nullptr : it->second.get();
}

Result<InterfaceId> Loader::FindInterface(ComponentId id,
                                          const std::string& name) const {
  const LoadedComponent* lc = Get(id);
  if (lc == nullptr) {
    return Status::NotFound(StrFormat("component %u not loaded", id));
  }
  for (size_t i = 0; i < lc->image.provides.size(); ++i) {
    if (lc->image.provides[i].name == name) return lc->provided[i];
  }
  return Status::NotFound(StrFormat("component '%s' provides no '%s'",
                                    lc->image.name.c_str(), name.c_str()));
}

}  // namespace dbm::os
