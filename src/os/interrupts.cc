#include "os/interrupts.h"

#include "common/strings.h"

namespace dbm::os {

Result<InterruptController::Line*> InterruptController::GetLine(
    IrqLine line) {
  if (line >= table_.size()) {
    return Status::OutOfRange(StrFormat("no interrupt line %u", line));
  }
  return &table_[line];
}

Status InterruptController::Attach(IrqLine line, InterfaceId handler) {
  DBM_ASSIGN_OR_RETURN(Line * l, GetLine(line));
  if (orb_->Lookup(handler) == nullptr) {
    return Status::NotFound(
        StrFormat("handler interface %u not registered", handler));
  }
  if (l->handler != kInvalidInterface) {
    return Status::AlreadyExists(
        StrFormat("line %u already has a handler", line));
  }
  l->handler = handler;
  return Status::OK();
}

Status InterruptController::Detach(IrqLine line) {
  DBM_ASSIGN_OR_RETURN(Line * l, GetLine(line));
  if (l->handler == kInvalidInterface) {
    return Status::NotFound(StrFormat("line %u has no handler", line));
  }
  l->handler = kInvalidInterface;
  l->pending = false;
  return Status::OK();
}

Status InterruptController::Mask(IrqLine line) {
  DBM_ASSIGN_OR_RETURN(Line * l, GetLine(line));
  l->masked = true;
  return Status::OK();
}

Status InterruptController::Unmask(IrqLine line) {
  DBM_ASSIGN_OR_RETURN(Line * l, GetLine(line));
  l->masked = false;
  if (l->pending) {
    l->pending = false;
    return Dispatch(l);
  }
  return Status::OK();
}

Result<bool> InterruptController::IsMasked(IrqLine line) const {
  if (line >= table_.size()) {
    return Status::OutOfRange(StrFormat("no interrupt line %u", line));
  }
  return table_[line].masked;
}

Status InterruptController::Raise(IrqLine line) {
  DBM_ASSIGN_OR_RETURN(Line * l, GetLine(line));
  ++l->stats.raised;
  if (l->handler == kInvalidInterface) {
    return Status::FailedPrecondition(
        StrFormat("interrupt %u raised with no handler attached", line));
  }
  if (l->masked) {
    l->pending = true;  // level-triggered: coalesces
    ++l->stats.dropped_masked;
    return Status::OK();
  }
  return Dispatch(l);
}

Status InterruptController::Dispatch(Line* line) {
  ledger_->Charge(kDispatchOverhead, "irq:dispatch");
  line->stats.cycles += kDispatchOverhead;
  Cycles before = ledger_->total();
  Status s = orb_->Call(line->handler);
  line->stats.cycles += ledger_->total() - before;
  if (s.ok()) {
    ++line->stats.dispatched;
    ++total_dispatched_;
  }
  return s;
}

Result<const IrqStats*> InterruptController::Stats(IrqLine line) const {
  if (line >= table_.size()) {
    return Status::OutOfRange(StrFormat("no interrupt line %u", line));
  }
  return &table_[line].stats;
}

}  // namespace dbm::os
