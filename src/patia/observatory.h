// Registers the Observatory endpoints as Patia service agents, so the
// machine's observability state is served over the same adaptive path as
// any other atom: /obs/metrics, /obs/timeseries, /obs/decisions,
// /obs/health and /obs/query?q=... become dynamic atoms whose bodies are
// rendered by obs::ServeObservatory at request time. Content generation
// lives in src/obs/observatory.h; this file is only the Fig-7 wiring.

#ifndef DBM_PATIA_OBSERVATORY_H_
#define DBM_PATIA_OBSERVATORY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "patia/patia.h"

namespace dbm::patia {

struct ObservatoryAgentOptions {
  /// Atom ids for the five endpoints, allocated from here upward.
  int first_atom_id = 9000;
};

/// Registers the /obs/* endpoints on `nodes` (all must be AddNode'd).
/// Returns the names of the registered atoms.
Result<std::vector<std::string>> RegisterObservatory(
    PatiaServer* server, const std::vector<std::string>& nodes,
    ObservatoryAgentOptions options = {});

}  // namespace dbm::patia

#endif  // DBM_PATIA_OBSERVATORY_H_
