// The flash-crowd front door: Patia's bounded, batching admission plane.
//
// PatiaServer::Request is an open invitation — every accepted request
// lands in an unbounded per-node queue, which under a flash crowd is the
// collapse mode (latency grows without limit while throughput stays
// flat). The front door closes the invitation: a bounded admission queue
// is the ONLY place requests wait, and everything past its limits is
// refused at the door, cheaply, before it can cost anything downstream.
// The shape follows rippled's TaskQueue (bounded queue + worker pool +
// refuse-over-limit), adapted to the simulated request plane.
//
// Four mechanisms, in request order:
//
//   backpressure  — at most session_inflight_limit admitted requests per
//                   client session; the (closed-loop) session is told to
//                   back off, which is what actually flattens a crowd.
//   shedding      — a shed level in [0,100] drops that percentage of
//                   arrivals (deterministic error-diffusion, not a coin
//                   flip). The level is NOT set by code: Table-2 rules
//                   over derived.* trend gauges decide it through the
//                   same session/adaptivity managers as every other
//                   adaptation in the repo (AddShedRule).
//   bounded queue — queue_capacity caps waiting requests; overflow is
//                   refused (counted separately from rule-driven sheds).
//   batching      — a periodic tick drains up to batch_max requests,
//                   amortising one supervised ORB invocation over the
//                   whole batch and fanning admission work over the
//                   query WorkerPool. service_credit caps
//                   dispatched-but-incomplete requests so Patia's
//                   internal queues stay near-empty and the bounded
//                   queue stays the only queue.
//
// The overload path reuses the PR-4 supervision machinery: the batch
// invocation runs under a CallPolicy (deadline, retries, breaker), and
// the breaker state is published on the bus ("frontdoor.breaker") where
// PatiaServer::EnableDegradation can watch it.

#ifndef DBM_PATIA_FRONTDOOR_H_
#define DBM_PATIA_FRONTDOOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adapt/derived.h"
#include "adapt/session.h"
#include "net/loadgen.h"
#include "obs/tracectx.h"
#include "os/go_system.h"
#include "patia/patia.h"
#include "query/pool.h"

namespace dbm::patia {

struct FrontDoorOptions {
  /// Waiting requests the admission queue holds; arrivals past this are
  /// refused (Unavailable).
  size_t queue_capacity = 256;
  /// Admitted-but-incomplete requests one session may have; past this
  /// the session is pushed back (ResourceExhausted).
  uint32_t session_inflight_limit = 8;
  /// Requests drained per dispatch tick, sharing one ORB invocation.
  size_t batch_max = 32;
  SimTime dispatch_interval = Millis(1);
  /// Dispatched-but-incomplete requests across all sessions; dispatch
  /// stops at this credit so Patia's internal queues stay bounded too.
  size_t service_credit = 64;
  /// WorkerPool width for the per-batch admission stage.
  size_t admission_dop = 4;
  /// Run the per-batch supervised ORB invocation (cycle-accounted).
  bool use_orb = true;
  /// Memory for the batch-service component's GoSystem.
  size_t orb_memory_words = 1 << 16;
  /// Supervision for the batch invocation; breaker state is published
  /// as the "frontdoor.breaker" bus metric.
  os::CallPolicy orb_policy;
};

class FrontDoor : public net::RequestSink {
 public:
  /// `pool` may be null: the process-wide WorkerPool::Default() is used.
  FrontDoor(PatiaServer* server, net::Network* network,
            adapt::MetricBus* bus, FrontDoorOptions options,
            query::WorkerPool* pool = nullptr);

  /// The admission verdict (see RequestSink). OK admits into the queue;
  /// `done` fires exactly once when Patia finishes (or fails) the
  /// request. Refusals never fire `done`.
  Status Submit(uint64_t session, const std::string& client,
                const std::string& resource, DoneFn done) override;

  /// Starts the periodic dispatch/adaptation tick.
  void Start();
  /// Stops admitting; dispatch keeps running until the queue and all
  /// outstanding requests drain, then the tick stops rescheduling.
  void Stop();
  /// One dispatch + gauge-publish + derived + constraint-check cycle.
  /// Start() calls this every dispatch_interval; tests may drive it
  /// directly.
  Status Tick();

  /// Attaches a Table-2 shedding rule for subject "frontdoor". Targets
  /// must be "shed.<percent>"; when the rule fires, the chosen target's
  /// percentage becomes the shed level, e.g.
  ///   If derived.admission.depth.mean > 96 and admission.shed_level < 50
  ///     then SWITCH(shed.0, shed.50)
  Status AddShedRule(int id, std::string_view rule_text, int priority = 0);

  /// Registers an extra derived trend gauge recomputed each Tick (the
  /// constructor installs depth mean/max and latency p99 by default).
  void AddDerived(const adapt::DerivedSpec& spec);

  struct Stats {
    uint64_t submitted = 0;      // every Submit call
    uint64_t admitted = 0;       // entered the queue
    uint64_t completed = 0;      // done fired, served
    uint64_t failed = 0;         // done fired, not served
    uint64_t shed_rule = 0;      // refused by the shed level
    uint64_t shed_overflow = 0;  // refused by a full queue
    uint64_t shed_stopped = 0;   // refused after Stop()
    uint64_t backpressured = 0;  // refused by the per-session limit
    uint64_t batches = 0;
    uint64_t invoke_failures = 0;  // batch ORB invocations that failed
    uint64_t depth_peak = 0;
    uint64_t outstanding_peak = 0;
  };

  const Stats& stats() const { return stats_; }
  size_t depth() const { return queue_.size(); }
  size_t outstanding() const { return outstanding_; }
  int shed_level() const { return shed_level_; }
  bool accepting() const { return accepting_; }
  /// True once Stop() has been called and nothing is queued or in
  /// flight.
  bool Drained() const {
    return !accepting_ && queue_.empty() && outstanding_ == 0;
  }
  int BreakerState() const;
  adapt::SessionManager& session() { return *session_; }
  adapt::AdaptivityManager& adaptivity() { return *adaptivity_; }

 private:
  struct Pending {
    uint64_t session = 0;
    std::string client;
    std::string resource;
    DoneFn done;
    SimTime enqueued_at = 0;
    uint64_t route_hint = 0;  // batch-stage fingerprint (WorkerPool)
    obs::TraceId trace;  // enclosing trace at Submit (invalid if unsampled)
  };

  /// End-to-end attribution for one finished request, threaded from
  /// admission through dispatch to completion and recorded as an
  /// obs::RequestProfile (queue / dispatch / exec split by trace id).
  struct RequestTiming {
    SimTime enqueued_at = 0;
    SimTime dispatched_at = 0;
    uint64_t dispatch_us = 0;  // amortised batch-ORB share
    obs::TraceId trace;
    std::string resource;
  };

  void DispatchBatch(SimTime now);
  /// Returns the invocation's cycle cost (0 when the ORB is absent).
  uint64_t InvokeBatchService();
  void OnRequestDone(uint64_t session, const RequestTiming& timing,
                     DoneFn done, bool served, SimTime completed_at);
  void SetShedLevel(int level, SimTime at);
  void PublishGauges(SimTime now);
  void ScheduleTick();

  PatiaServer* server_;
  net::Network* network_;
  adapt::MetricBus* bus_;
  FrontDoorOptions options_;
  query::WorkerPool* pool_;

  std::deque<Pending> queue_;
  std::unordered_map<uint64_t, uint32_t> inflight_;  // session → admitted
  size_t outstanding_ = 0;  // dispatched, completion pending
  bool accepting_ = true;
  bool ticking_ = false;
  int shed_level_ = 0;
  int shed_acc_ = 0;  // error-diffusion accumulator for the shed level
  Stats stats_;

  // Fig-1 machinery for the "frontdoor" subject.
  adapt::ConstraintTable constraints_;
  std::shared_ptr<adapt::AdaptivityManager> adaptivity_;
  std::shared_ptr<adapt::SessionManager> session_;
  adapt::NumericTargetScorer scorer_;
  adapt::DerivedPublisher derived_;

  // Batch service substrate (one supervised call per batch).
  std::unique_ptr<os::GoSystem> go_;
  os::InterfaceId batch_iface_ = 0;

  adapt::MetricBus::Channel* depth_ch_ = nullptr;       // admission.depth
  adapt::MetricBus::Channel* shed_level_ch_ = nullptr;  // admission.shed_level
  adapt::MetricBus::Channel* breaker_ch_ = nullptr;     // frontdoor.breaker
  obs::Gauge* obs_depth_ = nullptr;
  obs::Gauge* obs_shed_level_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_backpressure_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_invoke_cycles_ = nullptr;
  obs::Counter* obs_invoke_failures_ = nullptr;
  obs::Histogram* obs_batch_ = nullptr;
  obs::Histogram* obs_queue_wait_us_ = nullptr;
  obs::Histogram* obs_latency_us_ = nullptr;
};

}  // namespace dbm::patia

#endif  // DBM_PATIA_FRONTDOOR_H_
