#include "patia/observatory.h"

#include "obs/observatory.h"

namespace dbm::patia {

namespace {

const char* const kEndpoints[] = {
    "/obs/metrics", "/obs/timeseries", "/obs/decisions", "/obs/faults",
    "/obs/health",  "/obs/profile",    "/obs/query",     "/obs/history",
    "/obs/flight",
};

}  // namespace

Result<std::vector<std::string>> RegisterObservatory(
    PatiaServer* server, const std::vector<std::string>& nodes,
    ObservatoryAgentOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("null server");
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("observatory needs at least one node");
  }
  std::vector<std::string> registered;
  int id = options.first_atom_id;
  for (const char* endpoint : kEndpoints) {
    Atom atom;
    atom.id = id++;
    atom.name = endpoint;
    atom.type = "text";
    // Nominal size only — the generated body prices the transfer.
    atom.variants = {{std::string(endpoint), 0}};
    DBM_RETURN_NOT_OK(server->RegisterDynamicAtom(
        std::move(atom), nodes,
        [server](const std::string& resource, SimTime now) {
          auto body = obs::ServeObservatory(resource, now);
          if (body.ok()) return *std::move(body);
          return std::string("{\"error\":\"") + body.status().message() +
                 "\"}";
        }));
    registered.push_back(endpoint);
  }
  return registered;
}

}  // namespace dbm::patia
