#include "patia/patia.h"

#include <algorithm>

#include "fault/log.h"
#include "obs/blackbox/log.h"
#include "obs/health.h"

namespace dbm::patia {

PatiaServer::PatiaServer(net::Network* network, adapt::MetricBus* bus)
    : network_(network), bus_(bus), derived_(bus) {
  obs::Registry& reg = obs::Registry::Default();
  obs_requests_ = &reg.GetCounter("patia.requests");
  obs_migrations_ = &reg.GetCounter("patia.agent.migrations");
  obs_latency_us_ = &reg.GetHistogram("patia.request.latency_us");
  processor_util_ch_ = bus_->GetChannel("processor-util");
  adaptivity_ = std::make_shared<adapt::AdaptivityManager>("patia-am");
  state_ = std::make_shared<adapt::StateManager>("patia-state");
  session_ =
      std::make_shared<adapt::SessionManager>("patia-sm", bus_, &constraints_);
  session_->FindPort("adaptivity")->SetTarget(adaptivity_);
  session_->FindPort("state")->SetTarget(state_);

  // The catch-all handler implements SWITCH: migrate the subject atom's
  // service agent (processing state moves through the State Manager) so
  // subsequent requests are served elsewhere.
  adaptivity_->RegisterHandler(
      "", [this](const adapt::AdaptationRequest& req) -> Status {
        if (!req.decision.chosen.has_value()) {
          return Status::InvalidArgument("decision without a target");
        }
        auto atom_it = atoms_by_name_.find(req.subject);
        if (atom_it == atoms_by_name_.end()) {
          return Status::NotFound("no atom '" + req.subject + "'");
        }
        int atom_id = atom_it->second;
        const std::string target_node = req.decision.chosen->node();
        DBM_RETURN_NOT_OK(network_->GetDevice(target_node).status());
        auto agent_it = agents_.find(atom_id);
        if (agent_it == agents_.end()) {
          return Status::NotFound("no agent for atom " +
                                  std::to_string(atom_id));
        }
        ServiceAgent& agent = *agent_it->second;
        if (req.decision.migrate_state) {
          component::StateBlob blob;
          DBM_RETURN_NOT_OK(agent.Checkpoint(&blob));
          DBM_RETURN_NOT_OK(state_->Save(agent.name(), std::move(blob)));
        }
        agent.MigrateTo(target_node);
        obs_migrations_->Add(1);
        // The scorer's notion of "current" follows the agent.
        auto scorer_it = scorers_.find(atom_id);
        if (scorer_it != scorers_.end()) {
          scorer_it->second->set_current(*req.decision.chosen);
        }
        return Status::OK();
      });
}

Status PatiaServer::AddNode(const std::string& name, NodeOptions options) {
  DBM_RETURN_NOT_OK(network_->GetDevice(name).status());
  if (nodes_.count(name) > 0) {
    return Status::AlreadyExists("node '" + name + "' already added");
  }
  nodes_[name] = NodeState{options, 0, {}};
  // Monitor + gauge for this node's utilisation (Fig 1 pipeline).
  auto monitor = net::MakeLoadMonitor(network_, name);
  auto gauge = std::make_shared<adapt::Gauge>(
      name + ".util-gauge", adapt::GaugeKind::kEwma, bus_, /*alpha=*/0.5);
  gauge->FindPort("source")->SetTarget(monitor);
  gauges_.push_back(std::move(gauge));
  node_util_ch_[name] = bus_->GetChannel(name + ".processor-util");
  return Status::OK();
}

Status PatiaServer::RegisterAtom(Atom atom,
                                 const std::vector<std::string>& nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("atom needs at least one replica node");
  }
  if (atom.variants.empty()) {
    return Status::InvalidArgument("atom '" + atom.name +
                                   "' has no variants");
  }
  for (const std::string& n : nodes) {
    if (nodes_.count(n) == 0) {
      return Status::NotFound("replica node '" + n + "' not added");
    }
  }
  if (atoms_by_name_.count(atom.name) > 0) {
    return Status::AlreadyExists("atom '" + atom.name + "' already present");
  }
  int id = atom.id;
  std::string name = atom.name;
  atoms_by_name_[name] = id;
  replicas_[id] = nodes;
  agents_[id] = std::make_shared<ServiceAgent>("agent-" + name, id, nodes[0]);
  // Resolve the per-variant selection counters now so serving stays
  // string-free ("patia.atom.<name>.variant.<resource>").
  std::map<std::string, obs::Counter*>& counters = variant_counters_[id];
  for (const AtomVariant& v : atom.variants) {
    counters[v.resource] = &obs::Registry::Default().GetCounter(
        "patia.atom." + name + ".variant." + v.resource);
  }
  auto scorer = std::make_unique<net::NetworkScorer>(network_, nodes[0]);
  scorer->set_current(adapt::Target{{nodes[0], name}, {}});
  session_->SetScorer(name, scorer.get());
  scorers_[id] = std::move(scorer);
  atoms_[id] = std::move(atom);
  return Status::OK();
}

Status PatiaServer::AddConstraint(int constraint_id, int atom_id,
                                  std::string_view rule_text, int priority) {
  auto it = atoms_.find(atom_id);
  if (it == atoms_.end()) {
    return Status::NotFound("no atom " + std::to_string(atom_id));
  }
  return constraints_.Add(constraint_id, it->second.name, rule_text,
                          priority);
}

Status PatiaServer::RegisterDynamicAtom(Atom atom,
                                        const std::vector<std::string>& nodes,
                                        ContentFn content) {
  if (content == nullptr) {
    return Status::InvalidArgument("dynamic atom '" + atom.name +
                                   "' needs a content generator");
  }
  int id = atom.id;
  DBM_RETURN_NOT_OK(RegisterAtom(std::move(atom), nodes));
  dynamic_content_[id] = std::move(content);
  return Status::OK();
}

Result<const Atom*> PatiaServer::GetAtom(const std::string& name) const {
  // Dynamic endpoints carry per-request query suffixes
  // ("/obs/query?q=..."): the atom is the part before '?'.
  std::string base = name;
  size_t qpos = base.find('?');
  if (qpos != std::string::npos) base.resize(qpos);
  auto it = atoms_by_name_.find(base);
  if (it == atoms_by_name_.end()) {
    return Status::NotFound("no atom '" + base + "'");
  }
  return &atoms_.at(it->second);
}

Result<ServiceAgent*> PatiaServer::AgentFor(int atom_id) {
  auto it = agents_.find(atom_id);
  if (it == agents_.end()) {
    return Status::NotFound("no agent for atom " + std::to_string(atom_id));
  }
  return it->second.get();
}

double PatiaServer::NodeUtilisation(const std::string& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  return static_cast<double>(it->second.active) /
         std::max(1, it->second.options.service_slots);
}

void PatiaServer::UpdateLoad(const std::string& node) {
  auto device = network_->GetDevice(node);
  if (device.ok()) {
    (*device)->set_load(std::min(1.0, NodeUtilisation(node)));
  }
}

void PatiaServer::BeginServe(const std::string& node,
                             std::function<void()> work) {
  NodeState& ns = nodes_.at(node);
  if (ns.active >= ns.options.service_slots) {
    ns.queue.push_back(std::move(work));
    stats_.queued_peak = std::max(stats_.queued_peak,
                                  static_cast<uint64_t>(ns.queue.size()));
    return;
  }
  ++ns.active;
  UpdateLoad(node);
  work();
}

void PatiaServer::FinishServe(const std::string& node) {
  NodeState& ns = nodes_.at(node);
  if (!ns.queue.empty()) {
    // Hand the slot to the next queued request.
    auto work = std::move(ns.queue.front());
    ns.queue.pop_front();
    work();
    return;
  }
  ns.active = std::max(0, ns.active - 1);
  UpdateLoad(node);
}

Result<std::string> PatiaServer::ChooseNode(const Atom& atom,
                                            const std::string& client) {
  (void)client;
  // The agent's current node wins; a BEST Select rule (constraint 450)
  // can override it per request when present.
  auto decision = session_->Decide(atom.name);
  if (decision.ok() && decision->chosen.has_value() &&
      decision->kind == adapt::ActionKind::kBest) {
    const std::string node = decision->chosen->node();
    if (nodes_.count(node) > 0) return node;
  }
  DBM_ASSIGN_OR_RETURN(ServiceAgent * agent,
                       AgentFor(atoms_by_name_.at(atom.name)));
  return agent->node();
}

void PatiaServer::EnableDegradation(DegradationOptions options) {
  degradation_enabled_ = true;
  degradation_ = std::move(options);
  degradation_breaker_ch_ =
      degradation_.breaker_metric.empty()
          ? nullptr
          : bus_->GetChannel(degradation_.breaker_metric);
  obs_degraded_ = &obs::Registry::Default().GetCounter("patia.degraded");
}

bool PatiaServer::Degraded(const std::string& node) const {
  if (!degradation_enabled_) return false;
  // Breaker open (state gauge 2) anywhere in the serving path sheds.
  if (degradation_breaker_ch_ != nullptr &&
      degradation_breaker_ch_->value >= 2.0) {
    return true;
  }
  // A backed-up black-box flusher sheds too: telemetry durability is
  // part of serving, and the smallest variant buys the flusher air.
  if (degradation_.blackbox_backlog_degrade > 0) {
    obs::blackbox::TelemetryLog* log = obs::blackbox::TelemetryLog::Installed();
    if (log != nullptr &&
        log->BacklogFraction() >= degradation_.blackbox_backlog_degrade) {
      return true;
    }
  }
  return NodeUtilisation(node) >= degradation_.overload_utilisation;
}

Result<std::string> PatiaServer::ChooseVariant(const Atom& atom,
                                               const std::string& client,
                                               const std::string& node) {
  (void)client;
  (void)node;
  // Bandwidth-banded variant rules (constraint 595): any triggered rule
  // whose chosen target names a known variant selects it.
  for (const adapt::Constraint* c : constraints_.ForSubject(atom.name)) {
    if (!c->rule.trigger.has_value()) continue;
    auto scorer_it = scorers_.find(atom.id);
    const adapt::TargetScorer* scorer =
        scorer_it != scorers_.end()
            ? static_cast<const adapt::TargetScorer*>(scorer_it->second.get())
            : nullptr;
    static const adapt::TargetScorer kNullScorer;
    auto d = adapt::Evaluate(c->rule, *bus_,
                             scorer != nullptr ? *scorer : kNullScorer);
    if (!d.ok() || !d->fired || !d->chosen.has_value()) continue;
    if (d->kind == adapt::ActionKind::kSwitch) continue;  // handled by Tick
    std::string resource = d->chosen->resource();
    if (atom.FindVariant(resource) != nullptr) return resource;
  }
  return atom.variants.front().resource;
}

Status PatiaServer::Request(
    const std::string& client, const std::string& atom_name,
    std::function<void(const ServedRequest&)> on_done) {
  DBM_ASSIGN_OR_RETURN(const Atom* atom, GetAtom(atom_name));
  DBM_RETURN_NOT_OK(network_->GetDevice(client).status());
  DBM_ASSIGN_OR_RETURN(std::string node, ChooseNode(*atom, client));
  DBM_ASSIGN_OR_RETURN(std::string resource,
                       ChooseVariant(*atom, client, node));
  const AtomVariant* variant = atom->FindVariant(resource);
  // Load shedding: under an open breaker or node overload, the smallest
  // variant goes out instead of a refusal — degraded beats down.
  if (Degraded(node) && atom->variants.size() > 1 &&
      dynamic_content_.count(atom->id) == 0) {
    const AtomVariant* smallest = variant;
    for (const AtomVariant& v : atom->variants) {
      if (smallest == nullptr || v.bytes < smallest->bytes) smallest = &v;
    }
    if (smallest != variant) {
      variant = smallest;
      resource = smallest->resource;
      obs_degraded_->Add(1);
      fault::Record(fault::FaultEventKind::kDegraded, "patia." + node,
                    "shed load: served '" + resource + "' for atom '" +
                        atom->name + "'",
                    network_->loop()->Now());
    }
  }
  obs_requests_->Add(1);
  auto atom_counters = variant_counters_.find(atom->id);
  if (atom_counters != variant_counters_.end()) {
    auto vc = atom_counters->second.find(resource);
    if (vc != atom_counters->second.end()) vc->second->Add(1);
  }

  SimTime issued = network_->loop()->Now();
  int atom_id = atom->id;
  size_t bytes = variant->bytes;

  // Dynamic atoms generate their body at request time; the body's size
  // (not the variant's nominal byte count) prices the transfer. The full
  // request string — "?query" suffix included — reaches the generator.
  std::shared_ptr<std::string> body;
  auto dyn = dynamic_content_.find(atom_id);
  if (dyn != dynamic_content_.end()) {
    body = std::make_shared<std::string>(dyn->second(atom_name, issued));
    bytes = body->size();
    resource = atom_name;
  }
  SimTime service_time = nodes_.at(node).options.service_time;

  BeginServe(node, [this, client, node, atom_id, resource, bytes, issued,
                    service_time, body, on_done = std::move(on_done)] {
    // CPU service time on the node, then the network transfer.
    network_->loop()->ScheduleAfter(service_time, [this, client, node,
                                                   atom_id, resource, bytes,
                                                   issued, body, on_done] {
      Status s = network_->Transfer(
          node, client, bytes,
          [this, client, node, atom_id, resource, issued, body,
           on_done](SimTime done_at) {
            ServedRequest served;
            served.atom_id = atom_id;
            served.client = client;
            served.served_by = node;
            served.resource = resource;
            served.issued_at = issued;
            served.completed_at = done_at;
            ++stats_.completed;
            ++stats_.served_by_node[node];
            obs_latency_us_->Record(static_cast<uint64_t>(served.Latency()));
            stats_.log.Push(served);
            auto agent = AgentFor(atom_id);
            if (agent.ok()) (*agent)->RecordServe();
            FinishServe(node);
            if (on_done) {
              // The body rides only on the callback's copy, never the log.
              if (body != nullptr) served.body = std::move(*body);
              on_done(served);
            }
          });
      if (!s.ok()) {
        // No route: release the slot; the request is lost.
        FinishServe(node);
      }
    });
  });
  return Status::OK();
}

Status PatiaServer::Tick() {
  SimTime now = network_->loop()->Now();
  for (auto& gauge : gauges_) {
    DBM_RETURN_NOT_OK(gauge->Sample(now));
  }
  // Derived trend gauges ("derived.<metric>.<stat>") recompute before the
  // constraint pass so Table-2 rules can trigger on them this tick.
  derived_.Tick(now);
  // The Table 2 metric name is "processor-util"; republish the serving
  // agents' nodes' utilisation under that name, scoped per atom subject.
  // Channels were resolved at AddNode — this path does not allocate.
  for (const auto& [atom_id, agent] : agents_) {
    auto node_ch = node_util_ch_.find(agent->node());
    double util = node_ch != node_util_ch_.end() ? node_ch->second->value : 0;
    bus_->Publish(processor_util_ch_, util, now);
    DBM_RETURN_NOT_OK(session_->CheckConstraints(now).status());
  }
  // The republished metric bypasses adapt::Gauge, so feed the watchdog
  // directly (per-node gauges record their own samples).
  obs::LoopHealth::Default().Get("processor-util").Sample(now);
  return Status::OK();
}

void PatiaServer::StartTicking(SimTime interval) {
  if (ticking_) return;
  ticking_ = true;
  // Declare the tick cadence to the watchdog: every per-node load gauge
  // and the republished Table-2 metric should now refresh each interval.
  auto& health = obs::LoopHealth::Default();
  health.Expect("processor-util", interval);
  for (const auto& [node, state] : nodes_) {
    (void)state;
    health.Expect(node + ".processor-util", interval);
  }
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, interval, weak] {
    auto self = weak.lock();
    if (self == nullptr) return;
    (void)Tick();
    network_->loop()->ScheduleAfter(interval, [self] { (*self)(); });
  };
  network_->loop()->ScheduleAfter(interval, [tick] { (*tick)(); });
}

Status FlashCrowd::Run(const std::string& client,
                       const std::string& atom_name) {
  DBM_RETURN_NOT_OK(server_->GetAtom(atom_name).status());
  rng_ = std::make_shared<Rng>(options_.seed);
  ScheduleNext(0, client, atom_name, rng_.get());
  return Status::OK();
}

void FlashCrowd::ScheduleNext(SimTime at, const std::string& client,
                              const std::string& atom_name, Rng* rng) {
  if (at > options_.horizon) return;
  double rate = options_.base_rate_per_s;
  if (at >= options_.flash_start && at < options_.flash_end) {
    rate *= options_.flash_multiplier;
  }
  SimTime gap = Seconds(rng->Exponential(rate));
  if (gap < 1) gap = 1;
  SimTime next = at + gap;
  network_->loop()->ScheduleAt(next, [this, next, client, atom_name, rng] {
    ++issued_;
    (void)server_->Request(client, atom_name);
    ScheduleNext(next, client, atom_name, rng);
  });
}

}  // namespace dbm::patia
