#include "patia/frontdoor.h"

#include <cstdlib>
#include <utility>

#include "fault/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace dbm::patia {

FrontDoor::FrontDoor(PatiaServer* server, net::Network* network,
                     adapt::MetricBus* bus, FrontDoorOptions options,
                     query::WorkerPool* pool)
    : server_(server),
      network_(network),
      bus_(bus),
      options_(options),
      pool_(pool != nullptr ? pool : &query::WorkerPool::Default()),
      scorer_([this]() -> std::optional<adapt::Target> {
        return adapt::Target{{"shed", std::to_string(shed_level_)}, {}};
      }),
      derived_(bus) {
  adaptivity_ = std::make_shared<adapt::AdaptivityManager>("frontdoor-am");
  session_ = std::make_shared<adapt::SessionManager>("frontdoor-sm", bus_,
                                                     &constraints_);
  session_->FindPort("adaptivity")->SetTarget(adaptivity_);
  session_->SetScorer("frontdoor", &scorer_);
  adaptivity_->RegisterHandler(
      "frontdoor", [this](const adapt::AdaptationRequest& req) -> Status {
        if (!req.decision.chosen.has_value()) {
          return Status::InvalidArgument("decision without a target");
        }
        const adapt::Target& t = *req.decision.chosen;
        if (t.path.size() != 2 || t.path[0] != "shed") {
          return Status::InvalidArgument(
              "front-door targets must be shed.<percent>, got '" +
              t.ToString() + "'");
        }
        char* end = nullptr;
        long level = std::strtol(t.path[1].c_str(), &end, 10);
        if (end == t.path[1].c_str() || *end != '\0' || level < 0 ||
            level > 100) {
          return Status::InvalidArgument("bad shed percentage '" +
                                         t.path[1] + "'");
        }
        SetShedLevel(static_cast<int>(level), req.at);
        return Status::OK();
      });

  depth_ch_ = bus_->GetChannel("admission.depth");
  shed_level_ch_ = bus_->GetChannel("admission.shed_level");
  breaker_ch_ = bus_->GetChannel("frontdoor.breaker");
  obs::Registry& reg = obs::Registry::Default();
  obs_depth_ = &reg.GetGauge("admission.depth");
  obs_shed_level_ = &reg.GetGauge("admission.shed_level");
  obs_shed_ = &reg.GetCounter("admission.shed");
  obs_backpressure_ = &reg.GetCounter("admission.backpressure");
  obs_batches_ = &reg.GetCounter("admission.batches");
  obs_invoke_cycles_ = &reg.GetCounter("admission.invoke_cycles");
  obs_invoke_failures_ = &reg.GetCounter("admission.invoke_failures");
  obs_batch_ = &reg.GetHistogram("admission.batch");
  obs_queue_wait_us_ = &reg.GetHistogram("patia.queue_wait_us");
  obs_latency_us_ = &reg.GetHistogram("frontdoor.request.latency_us");

  // Default trend gauges the shedding rules trigger on: queue-depth
  // mean and peak over a short window, end-to-end latency p99 over a
  // longer one.
  const SimTime w = options_.dispatch_interval * 100;
  derived_.Add({"admission.depth", adapt::DerivedKind::kMean, w});
  derived_.Add({"admission.depth", adapt::DerivedKind::kMax, w});
  {
    adapt::DerivedSpec p99;
    p99.source = "frontdoor.request.latency_us";
    p99.kind = adapt::DerivedKind::kP99;
    p99.window = w * 2;
    p99.from_histogram = true;
    derived_.Add(p99);
  }

  if (options_.use_orb) {
    go_ = std::make_unique<os::GoSystem>(options_.orb_memory_words);
    auto loaded =
        go_->LoadWithService(os::images::NullServer("frontdoor-batch"));
    if (loaded.ok()) {
      batch_iface_ = loaded->second;
      go_->orb().SetCallPolicy(batch_iface_, options_.orb_policy);
      go_->orb().set_now_fn([this] { return network_->loop()->Now(); });
    } else {
      go_.reset();
    }
  }
}

Status FrontDoor::AddShedRule(int id, std::string_view rule_text,
                              int priority) {
  return constraints_.Add(id, "frontdoor", rule_text, priority);
}

void FrontDoor::AddDerived(const adapt::DerivedSpec& spec) {
  derived_.Add(spec);
}

int FrontDoor::BreakerState() const {
  return go_ != nullptr ? go_->orb().BreakerState(batch_iface_) : 0;
}

Status FrontDoor::Submit(uint64_t session, const std::string& client,
                         const std::string& resource, DoneFn done) {
  ++stats_.submitted;
  if (!accepting_) {
    ++stats_.shed_stopped;
    return Status::Unavailable("front door is stopped");
  }
  // Backpressure before shedding: a session at its in-flight limit is
  // told to back off whatever the shed level says — its existing
  // requests are already in the building.
  uint32_t& inflight = inflight_[session];
  if (inflight >= options_.session_inflight_limit) {
    ++stats_.backpressured;
    obs_backpressure_->Add(1);
    return Status::ResourceExhausted("session at in-flight limit");
  }
  // Rule-driven shedding, error-diffused: level 50 refuses exactly
  // every other arrival, not half of them in expectation.
  shed_acc_ += shed_level_;
  if (shed_acc_ >= 100) {
    shed_acc_ -= 100;
    ++stats_.shed_rule;
    obs_shed_->Add(1);
    return Status::Unavailable("shed by front-door rule");
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.shed_overflow;
    obs_shed_->Add(1);
    return Status::Unavailable("admission queue full");
  }
  ++inflight;
  Pending p;
  p.session = session;
  p.client = client;
  p.resource = resource;
  p.done = std::move(done);
  p.enqueued_at = network_->loop()->Now();
  const obs::TraceContext& ctx = obs::CurrentContext();
  if (ctx.valid()) p.trace = ctx.trace_id;
  queue_.push_back(std::move(p));
  ++stats_.admitted;
  if (queue_.size() > stats_.depth_peak) stats_.depth_peak = queue_.size();
  return Status::OK();
}

void FrontDoor::OnRequestDone(uint64_t session, const RequestTiming& timing,
                              DoneFn done, bool served,
                              SimTime completed_at) {
  --outstanding_;
  auto it = inflight_.find(session);
  if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
  if (served) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  obs_latency_us_->Record(
      static_cast<uint64_t>(completed_at - timing.enqueued_at));
  // End-to-end attribution: the request's whole latency, split where it
  // was actually spent, joined to traces by trace id.
  obs::RequestProfile prof;
  prof.trace_id = timing.trace;
  prof.at_us = static_cast<int64_t>(timing.enqueued_at);
  prof.queue_us =
      static_cast<uint64_t>(timing.dispatched_at - timing.enqueued_at);
  prof.dispatch_us = timing.dispatch_us;
  prof.exec_us = completed_at > timing.dispatched_at
                     ? static_cast<uint64_t>(completed_at -
                                             timing.dispatched_at)
                     : 0;
  prof.total_us =
      static_cast<uint64_t>(completed_at - timing.enqueued_at);
  prof.served = served;
  prof.SetResource(timing.resource);
  obs::ProfilePlane::Default().RecordRequest(prof);
  if (done) {
    net::RequestSink::Completion c;
    c.served = served;
    c.issued_at = timing.enqueued_at;
    c.completed_at = completed_at;
    done(c);
  }
}

uint64_t FrontDoor::InvokeBatchService() {
  if (go_ == nullptr) return 0;
  const os::Cycles before = go_->ledger().total();
  Status s = go_->orb().Call(batch_iface_);
  const uint64_t spent =
      static_cast<uint64_t>(go_->ledger().total() - before);
  obs_invoke_cycles_->Add(spent);
  if (!s.ok()) {
    // A failed batch invocation is a supervision event, not request
    // loss — the breaker opens, degradation watches it, requests still
    // go to Patia.
    ++stats_.invoke_failures;
    obs_invoke_failures_->Add(1);
  }
  return spent;
}

void FrontDoor::DispatchBatch(SimTime now) {
  size_t credit = options_.service_credit > outstanding_
                      ? options_.service_credit - outstanding_
                      : 0;
  size_t n = queue_.size();
  if (n > options_.batch_max) n = options_.batch_max;
  if (n > credit) n = credit;
  if (n == 0) return;

  std::vector<Pending> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++stats_.batches;
  obs_batches_->Add(1);
  obs_batch_->Record(static_cast<uint64_t>(n));
  // One supervised, cycle-accounted ORB invocation covers the whole
  // batch — the per-call overhead every request would otherwise pay.
  // Each request's dispatch_us is its amortised share of the invocation
  // (cycles → µs at the repo's 1000-cycles-per-µs convention).
  const uint64_t invoke_cycles = InvokeBatchService();
  const uint64_t dispatch_us_share = invoke_cycles / n / 1000;
  // Admission-stage work (routing fingerprints) fans out over the
  // query plane's workers. The histograms are lock-free, so recording
  // queue waits from the slices is safe.
  (void)pool_->ParallelFor(
      batch.size(), options_.admission_dop,
      [this, &batch, now](size_t begin, size_t end, size_t) -> Status {
        for (size_t i = begin; i < end; ++i) {
          uint64_t h = 1469598103934665603ull;  // FNV-1a
          for (char c : batch[i].client) h = (h ^ (uint8_t)c) * 1099511628211ull;
          for (char c : batch[i].resource) h = (h ^ (uint8_t)c) * 1099511628211ull;
          batch[i].route_hint = h;
          obs_queue_wait_us_->Record(
              static_cast<uint64_t>(now - batch[i].enqueued_at));
        }
        return Status::OK();
      });
  for (Pending& p : batch) {
    ++outstanding_;
    if (outstanding_ > stats_.outstanding_peak) {
      stats_.outstanding_peak = outstanding_;
    }
    const uint64_t session = p.session;
    RequestTiming timing;
    timing.enqueued_at = p.enqueued_at;
    timing.dispatched_at = now;
    timing.dispatch_us = dispatch_us_share;
    timing.trace = p.trace;
    timing.resource = p.resource;
    DoneFn done = std::move(p.done);
    Status s = server_->Request(
        p.client, p.resource,
        [this, session, timing, done](const ServedRequest& served) {
          OnRequestDone(session, timing, done, /*served=*/true,
                        served.completed_at);
        });
    if (!s.ok()) {
      OnRequestDone(session, timing, std::move(done),
                    /*served=*/false, now);
    }
  }
}

void FrontDoor::SetShedLevel(int level, SimTime at) {
  if (level == shed_level_) return;
  fault::Record(fault::FaultEventKind::kDegraded, "frontdoor.shed",
                "shed level " + std::to_string(shed_level_) + " -> " +
                    std::to_string(level),
                at);
  shed_level_ = level;
  shed_acc_ = 0;
  bus_->Publish(shed_level_ch_, static_cast<double>(level), at);
  obs_shed_level_->Set(static_cast<double>(level));
}

void FrontDoor::PublishGauges(SimTime now) {
  bus_->Publish(depth_ch_, static_cast<double>(queue_.size()), now);
  obs_depth_->Set(static_cast<double>(queue_.size()));
  bus_->Publish(shed_level_ch_, static_cast<double>(shed_level_), now);
  obs_shed_level_->Set(static_cast<double>(shed_level_));
  bus_->Publish(breaker_ch_, static_cast<double>(BreakerState()), now);
}

Status FrontDoor::Tick() {
  const SimTime now = network_->loop()->Now();
  DispatchBatch(now);
  PublishGauges(now);
  derived_.Tick(now);
  DBM_RETURN_NOT_OK(session_->CheckConstraints(now).status());
  return Status::OK();
}

void FrontDoor::ScheduleTick() {
  network_->loop()->ScheduleAfter(options_.dispatch_interval, [this] {
    (void)Tick();
    if (!accepting_ && queue_.empty() && outstanding_ == 0) {
      // Drained after Stop(): the tick stops rescheduling, so a
      // finished world goes quiet instead of ticking forever.
      ticking_ = false;
      return;
    }
    ScheduleTick();
  });
}

void FrontDoor::Start() {
  if (ticking_) return;
  ticking_ = true;
  ScheduleTick();
}

void FrontDoor::Stop() { accepting_ = false; }

}  // namespace dbm::patia
