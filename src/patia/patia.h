// Patia: the adaptive web-data server of §5.2 (Fig 7, Table 2).
//
// Web content is decomposed into Atoms — "the smallest web object that
// cannot be subdivided" — each carried as <a_id, name, type, <constraint>>
// and replicated over nodes. Service agents serve atoms and are *mobile*:
// Table 2's constraint 455 SWITCHes an agent off a node whose processor
// utilisation exceeds 90% (flash crowds), migrating processing state as
// well as data state. Constraint 450 picks the BEST replica per request;
// constraint 595 picks a bandwidth-appropriate variant of a stream.

#ifndef DBM_PATIA_PATIA_H_
#define DBM_PATIA_PATIA_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/derived.h"
#include "adapt/session.h"
#include "common/rng.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace dbm::patia {

/// An atom variant: a deliverable rendering of the atom ("videohalf.ram",
/// "videosmall.ram", "Page1.html") with its payload size.
struct AtomVariant {
  std::string resource;
  size_t bytes = 0;
};

/// Atom = <a_id, name, type, <constraint>> (§5.2).
struct Atom {
  int id = 0;
  std::string name;
  std::string type;  // "html" | "graphic" | "stream" | "button" | "text"
  std::vector<AtomVariant> variants;  // first = default rendering

  const AtomVariant* FindVariant(const std::string& resource) const {
    for (const AtomVariant& v : variants) {
      if (v.resource == resource) return &v;
    }
    return nullptr;
  }
};

/// A served request's outcome.
struct ServedRequest {
  int atom_id = 0;
  std::string client;
  std::string served_by;       // node
  std::string resource;        // variant delivered
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  /// Dynamic-atom response body (observatory endpoints). Filled only on
  /// the copy handed to the request's on_done callback — never retained
  /// in the served-request log.
  std::string body;
  SimTime Latency() const { return completed_at - issued_at; }
};

/// Bounded served-request log: the first `capacity` requests of an epoch
/// are retained, later ones are counted in dropped() — head-keeping, the
/// same overflow discipline as the span/decision rings, so long benches
/// and flash crowds cannot grow memory without limit.
class ServedLog {
 public:
  explicit ServedLog(size_t capacity = 1 << 15) : capacity_(capacity) {}

  void Push(const ServedRequest& r) {
    if (entries_.size() < capacity_) {
      entries_.push_back(r);
    } else {
      ++dropped_;
    }
  }

  std::vector<ServedRequest>::const_iterator begin() const {
    return entries_.begin();
  }
  std::vector<ServedRequest>::const_iterator end() const {
    return entries_.end();
  }
  const ServedRequest& operator[](size_t i) const { return entries_[i]; }
  const ServedRequest& back() const { return entries_.back(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    entries_.clear();
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<ServedRequest> entries_;
  uint64_t dropped_ = 0;
};

/// The mobile service agent: owns the serving of one atom and can migrate
/// between nodes (the SWITCH action saves "not only the data state, but
/// also the processing state").
class ServiceAgent : public component::Component {
 public:
  ServiceAgent(std::string name, int atom_id, std::string home_node)
      : Component(std::move(name), "service-agent"),
        atom_id_(atom_id),
        node_(std::move(home_node)) {}

  int atom_id() const { return atom_id_; }
  const std::string& node() const { return node_; }
  uint64_t served() const { return served_; }
  uint64_t migrations() const { return migrations_; }

  void RecordServe() { ++served_; }
  void MigrateTo(std::string node) {
    node_ = std::move(node);
    ++migrations_;
  }

  bool HasState() const override { return true; }
  Status Checkpoint(component::StateBlob* out) const override {
    out->type = "service-agent";
    out->text = node_;
    out->words = {static_cast<int64_t>(atom_id_),
                  static_cast<int64_t>(served_)};
    return Status::OK();
  }
  Status Restore(const component::StateBlob& blob) override {
    if (blob.type != "service-agent" || blob.words.size() != 2) {
      return Status::InvalidArgument("bad service-agent state blob");
    }
    node_ = blob.text;
    atom_id_ = static_cast<int>(blob.words[0]);
    served_ = static_cast<uint64_t>(blob.words[1]);
    return Status::OK();
  }

 private:
  int atom_id_;
  std::string node_;
  uint64_t served_ = 0;
  uint64_t migrations_ = 0;
};

/// The Patia server: atoms + replicas + agents over the simulated network,
/// driven by the Fig 1 adaptation pipeline.
class PatiaServer {
 public:
  struct NodeOptions {
    /// Requests a node serves concurrently without queueing.
    int service_slots = 4;
    /// Per-request CPU time on the node.
    SimTime service_time = Millis(2);
  };

  struct Stats {
    uint64_t completed = 0;
    uint64_t queued_peak = 0;
    ServedLog log;
    std::map<std::string, uint64_t> served_by_node;
  };

  /// Generates a dynamic atom's response body at serve time. Receives the
  /// requested resource (the atom name plus any "?query" suffix) and the
  /// simulated time of the request.
  using ContentFn = std::function<std::string(const std::string& resource,
                                              SimTime now)>;

  PatiaServer(net::Network* network, adapt::MetricBus* bus);

  /// Declares a serving node (must exist as a network device).
  Status AddNode(const std::string& name, NodeOptions options);

  /// Registers an atom whose replicas live on `nodes` (all of them hold
  /// every variant). A service agent is created on the first node.
  Status RegisterAtom(Atom atom, const std::vector<std::string>& nodes);

  /// Registers an atom whose body is generated per request (observatory
  /// endpoints). The atom needs one variant naming its default resource;
  /// the variant's byte count is ignored — the generated body's size
  /// prices the network transfer. Requests may carry a "?query" suffix
  /// ("/obs/query?q=..."), passed through to `content`.
  Status RegisterDynamicAtom(Atom atom, const std::vector<std::string>& nodes,
                             ContentFn content);

  /// Attaches a Table 2 constraint to an atom by id.
  Status AddConstraint(int constraint_id, int atom_id,
                       std::string_view rule_text, int priority = 0);

  /// Issues a client request for an atom; `on_done` fires at completion.
  Status Request(const std::string& client, const std::string& atom_name,
                 std::function<void(const ServedRequest&)> on_done = nullptr);

  /// One adaptation tick: sample monitors through gauges, evaluate the
  /// constraint table, enact SWITCHes. Call periodically from the loop.
  Status Tick();

  /// Periodic self-driving: schedules Tick() every `interval`.
  void StartTicking(SimTime interval);

  /// Enables the learned oscillation damper on the session manager (§6:
  /// "systems that learn from previous adaptations").
  void EnableHysteresis(adapt::HysteresisOptions options) {
    session_->EnableHysteresis(options);
  }

  /// Graceful degradation: when the watched breaker metric reports open
  /// or a node is overloaded past the threshold, requests for static
  /// multi-variant atoms are served their *smallest* variant — a
  /// compressed/stale page beats a 503. Sheds are counted on
  /// "patia.degraded" and land in the fault log as kDegraded events.
  struct DegradationOptions {
    /// Bus metric watched for breaker state (e.g. an
    /// "ingest-breaker" gauge published from Orb::BreakerState);
    /// value >= 2 (open) sheds. Empty = overload-only.
    std::string breaker_metric;
    /// NodeUtilisation() at or above this sheds (active/slots; queued
    /// work pushes it past 1.0).
    double overload_utilisation = 1.5;
    /// When > 0: the installed black box's ring occupancy (fraction of
    /// TelemetryLog ring capacity waiting for the flusher) at or above
    /// this also degrades — a flusher that cannot keep up means the
    /// machine is outrunning its own durability, so the server sheds
    /// weight rather than drop history. 0 disables the check.
    double blackbox_backlog_degrade = 0.0;
  };
  void EnableDegradation(DegradationOptions options);

  /// True when the next request on `node` would be served degraded.
  bool Degraded(const std::string& node) const;

  const Stats& stats() const { return stats_; }
  adapt::SessionManager& session() { return *session_; }
  adapt::AdaptivityManager& adaptivity() { return *adaptivity_; }
  /// Derived windowed gauges recomputed on every Tick (trend triggers).
  adapt::DerivedPublisher& derived() { return derived_; }
  Result<ServiceAgent*> AgentFor(int atom_id);
  Result<const Atom*> GetAtom(const std::string& name) const;

  /// Current utilisation of a node (active / slots, may exceed 1).
  double NodeUtilisation(const std::string& node) const;

 private:
  struct NodeState {
    NodeOptions options;
    int active = 0;
    std::deque<std::function<void()>> queue;
  };

  void BeginServe(const std::string& node, std::function<void()> work);
  void FinishServe(const std::string& node);
  void UpdateLoad(const std::string& node);
  Result<std::string> ChooseNode(const Atom& atom,
                                 const std::string& client);
  Result<std::string> ChooseVariant(const Atom& atom,
                                    const std::string& client,
                                    const std::string& node);

  net::Network* network_;
  adapt::MetricBus* bus_;
  adapt::ConstraintTable constraints_;
  std::shared_ptr<adapt::AdaptivityManager> adaptivity_;
  std::shared_ptr<adapt::StateManager> state_;
  std::shared_ptr<adapt::SessionManager> session_;
  std::vector<std::shared_ptr<adapt::Gauge>> gauges_;
  adapt::DerivedPublisher derived_;  // bound to bus_ in the constructor

  std::map<std::string, NodeState> nodes_;
  std::map<int, Atom> atoms_;
  std::map<std::string, int> atoms_by_name_;
  std::map<int, std::vector<std::string>> replicas_;
  std::map<int, std::shared_ptr<ServiceAgent>> agents_;
  std::map<int, std::unique_ptr<net::NetworkScorer>> scorers_;
  std::map<int, ContentFn> dynamic_content_;
  Stats stats_;
  bool ticking_ = false;
  /// "processor-util" republish channel, resolved once (Tick republishes
  /// the serving node's utilisation under the Table-2 name every tick —
  /// that path must not allocate).
  adapt::MetricBus::Channel* processor_util_ch_ = nullptr;
  /// Per-node "<node>.processor-util" channels, resolved at AddNode.
  std::map<std::string, adapt::MetricBus::Channel*> node_util_ch_;

  // Per-atom variant-selection counters ("patia.atom.<name>.variant.<res>"),
  // registered with the atom so serving stays string-free.
  std::map<int, std::map<std::string, obs::Counter*>> variant_counters_;
  obs::Counter* obs_requests_;
  obs::Counter* obs_migrations_;
  obs::Histogram* obs_latency_us_;

  bool degradation_enabled_ = false;
  DegradationOptions degradation_;
  adapt::MetricBus::Channel* degradation_breaker_ch_ = nullptr;
  obs::Counter* obs_degraded_ = nullptr;
};

/// Poisson request generator with a flash-crowd window during which the
/// arrival rate multiplies.
class FlashCrowd {
 public:
  struct Options {
    double base_rate_per_s = 20;
    double flash_multiplier = 15;
    SimTime flash_start = Seconds(2);
    SimTime flash_end = Seconds(6);
    SimTime horizon = Seconds(10);
    uint64_t seed = 1234;
  };

  FlashCrowd(PatiaServer* server, net::Network* network, Options options)
      : server_(server), network_(network), options_(options) {}

  /// Schedules the whole request arrival process for `atom_name`, issued
  /// by `client`.
  Status Run(const std::string& client, const std::string& atom_name);

  uint64_t issued() const { return issued_; }

 private:
  void ScheduleNext(SimTime at, const std::string& client,
                    const std::string& atom_name, Rng* rng);

  PatiaServer* server_;
  net::Network* network_;
  Options options_;
  uint64_t issued_ = 0;
  std::shared_ptr<Rng> rng_;
};

}  // namespace dbm::patia

#endif  // DBM_PATIA_PATIA_H_
