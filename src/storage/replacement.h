// Replacement-policy components for the buffer manager.
//
// Policies are components so the adaptivity manager can swap them at run
// time (e.g. from LRU to CLOCK under memory pressure) — a concrete
// instance of "the functionality required at a given time [is] swapped in
// on demand" (§1.2).

#ifndef DBM_STORAGE_REPLACEMENT_H_
#define DBM_STORAGE_REPLACEMENT_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "component/component.h"

namespace dbm::storage {

/// Frame-level replacement policy. Frames are indices into the buffer
/// pool; the buffer manager reports loads/accesses/evictions and asks for
/// victims among unpinned frames.
class ReplacementPolicy : public component::Component {
 public:
  ReplacementPolicy(std::string name, std::string kind)
      : Component(std::move(name), "replacement-policy") {
    AddProvided(std::move(kind));
  }

  virtual void OnLoad(size_t frame) = 0;
  virtual void OnAccess(size_t frame) = 0;
  virtual void OnEvict(size_t frame) = 0;
  /// Chooses an unpinned victim frame. `pinned[f]` marks unavailable
  /// frames. Fails with ResourceExhausted when everything is pinned.
  virtual Result<size_t> PickVictim(const std::vector<bool>& pinned) = 0;
};

/// Least-recently-used.
class LruPolicy : public ReplacementPolicy {
 public:
  explicit LruPolicy(std::string name = "lru")
      : ReplacementPolicy(std::move(name), "policy-lru") {}

  void OnLoad(size_t frame) override { Touch(frame); }
  void OnAccess(size_t frame) override { Touch(frame); }
  void OnEvict(size_t frame) override {
    auto it = where_.find(frame);
    if (it != where_.end()) {
      order_.erase(it->second);
      where_.erase(it);
    }
  }
  Result<size_t> PickVictim(const std::vector<bool>& pinned) override {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (!pinned[*it]) return *it;
    }
    return Status::ResourceExhausted("all buffer frames pinned");
  }

 private:
  void Touch(size_t frame) {
    auto it = where_.find(frame);
    if (it != where_.end()) order_.erase(it->second);
    order_.push_back(frame);
    where_[frame] = std::prev(order_.end());
  }
  std::list<size_t> order_;  // front = least recently used
  std::unordered_map<size_t, std::list<size_t>::iterator> where_;
};

/// CLOCK (second chance): near-LRU behaviour with O(1) access cost.
class ClockPolicy : public ReplacementPolicy {
 public:
  explicit ClockPolicy(std::string name = "clock")
      : ReplacementPolicy(std::move(name), "policy-clock") {}

  void OnLoad(size_t frame) override {
    Ensure(frame);
    referenced_[frame] = true;
  }
  void OnAccess(size_t frame) override {
    Ensure(frame);
    referenced_[frame] = true;
  }
  void OnEvict(size_t frame) override {
    Ensure(frame);
    referenced_[frame] = false;
  }
  Result<size_t> PickVictim(const std::vector<bool>& pinned) override {
    Ensure(pinned.size() == 0 ? 0 : pinned.size() - 1);
    size_t n = referenced_.size();
    if (n == 0) return Status::ResourceExhausted("empty buffer pool");
    for (size_t sweep = 0; sweep < 2 * n; ++sweep) {
      size_t f = hand_;
      hand_ = (hand_ + 1) % n;
      if (f < pinned.size() && pinned[f]) continue;
      if (referenced_[f]) {
        referenced_[f] = false;  // second chance
        continue;
      }
      return f;
    }
    return Status::ResourceExhausted("all buffer frames pinned");
  }

 private:
  void Ensure(size_t frame) {
    if (frame >= referenced_.size()) referenced_.resize(frame + 1, false);
  }
  std::vector<bool> referenced_;
  size_t hand_ = 0;
};

/// FIFO: the cheap baseline (no access tracking at all).
class FifoPolicy : public ReplacementPolicy {
 public:
  explicit FifoPolicy(std::string name = "fifo")
      : ReplacementPolicy(std::move(name), "policy-fifo") {}

  void OnLoad(size_t frame) override { queue_.push_back(frame); }
  void OnAccess(size_t) override {}
  void OnEvict(size_t frame) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == frame) {
        queue_.erase(it);
        return;
      }
    }
  }
  Result<size_t> PickVictim(const std::vector<bool>& pinned) override {
    for (size_t f : queue_) {
      if (!pinned[f]) return f;
    }
    return Status::ResourceExhausted("all buffer frames pinned");
  }

 private:
  std::list<size_t> queue_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_REPLACEMENT_H_
