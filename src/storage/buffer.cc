#include "storage/buffer.h"

namespace dbm::storage {

Result<Page*> BufferManager::GetPage(PageId id) {
  ++stats_.gets;
  obs_gets_->Add(1);
  DBM_ASSIGN_OR_RETURN(ReplacementPolicy * policy,
                       Require<ReplacementPolicy>("policy"));
  auto it = where_.find(id);
  if (it != where_.end()) {
    ++stats_.hits;
    obs_hits_->Add(1);
    obs_hit_rate_->Set(stats_.HitRate());
    size_t frame = it->second;
    policy->OnAccess(frame);
    ++pin_count_[id];
    pinned_[frame] = true;
    return &pool_[frame];
  }

  ++stats_.misses;
  obs_misses_->Add(1);
  obs_hit_rate_->Set(stats_.HitRate());
  DBM_ASSIGN_OR_RETURN(size_t frame, FindFreeOrEvict());
  DBM_ASSIGN_OR_RETURN(DiskComponent * disk, Require<DiskComponent>("disk"));
  DBM_RETURN_NOT_OK(disk->Read(id, &pool_[frame]));
  resident_[frame] = id;
  where_[id] = frame;
  dirty_[frame] = false;
  pin_count_[id] = 1;
  pinned_[frame] = true;
  policy->OnLoad(frame);
  return &pool_[frame];
}

Status BufferManager::Unpin(PageId id, bool dirty) {
  auto it = where_.find(id);
  if (it == where_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(id));
  }
  auto pc = pin_count_.find(id);
  if (pc == pin_count_.end() || pc->second <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page " +
                                      std::to_string(id));
  }
  size_t frame = it->second;
  if (dirty) dirty_[frame] = true;
  if (--pc->second == 0) pinned_[frame] = false;
  return Status::OK();
}

Status BufferManager::FlushAll() {
  DBM_ASSIGN_OR_RETURN(DiskComponent * disk, Require<DiskComponent>("disk"));
  for (size_t f = 0; f < frames_; ++f) {
    if (resident_[f] != kInvalidPage && dirty_[f]) {
      DBM_RETURN_NOT_OK(disk->Write(resident_[f], pool_[f]));
      dirty_[f] = false;
      ++stats_.dirty_writebacks;
      obs_writebacks_->Add(1);
    }
  }
  return Status::OK();
}

Result<size_t> BufferManager::FindFreeOrEvict() {
  for (size_t f = 0; f < frames_; ++f) {
    if (resident_[f] == kInvalidPage) return f;
  }
  DBM_ASSIGN_OR_RETURN(ReplacementPolicy * policy,
                       Require<ReplacementPolicy>("policy"));
  DBM_ASSIGN_OR_RETURN(size_t victim, policy->PickVictim(pinned_));
  if (pinned_[victim]) {
    return Status::Internal("policy picked a pinned victim");
  }
  PageId old = resident_[victim];
  if (dirty_[victim]) {
    DBM_ASSIGN_OR_RETURN(DiskComponent * disk,
                         Require<DiskComponent>("disk"));
    DBM_RETURN_NOT_OK(disk->Write(old, pool_[victim]));
    ++stats_.dirty_writebacks;
    obs_writebacks_->Add(1);
  }
  policy->OnEvict(victim);
  where_.erase(old);
  pin_count_.erase(old);
  resident_[victim] = kInvalidPage;
  dirty_[victim] = false;
  ++stats_.evictions;
  obs_evictions_->Add(1);
  return victim;
}

int BufferManager::PinCount(PageId id) const {
  auto it = pin_count_.find(id);
  return it == pin_count_.end() ? 0 : it->second;
}

Status BufferManager::CheckInvariants() const {
  size_t resident = 0;
  for (size_t f = 0; f < frames_; ++f) {
    PageId id = resident_[f];
    if (id == kInvalidPage) continue;
    ++resident;
    auto it = where_.find(id);
    if (it == where_.end() || it->second != f) {
      return Status::Internal("resident/where mismatch at frame " +
                              std::to_string(f));
    }
    auto pc = pin_count_.find(id);
    int pins = pc == pin_count_.end() ? 0 : pc->second;
    if (pins < 0) return Status::Internal("negative pin count");
    if ((pins > 0) != static_cast<bool>(pinned_[f])) {
      return Status::Internal("pinned bit inconsistent with pin count");
    }
  }
  if (resident != where_.size()) {
    return Status::Internal("where map size mismatch");
  }
  return Status::OK();
}

}  // namespace dbm::storage
