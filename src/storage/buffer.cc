#include "storage/buffer.h"

#include <algorithm>
#include <mutex>

#include "obs/waitstate.h"

namespace dbm::storage {

namespace {

/// Shard-latch guard that declares contended acquisition as latch-wait
/// (obs::WaitState::kLatch) so pool workers blocked here accrue to
/// proc.worker.latch_ns instead of busy time. The uncontended path is a
/// bare try_lock — no extra cost when the latch is free.
class LatchGuard {
 public:
  explicit LatchGuard(std::mutex& mu) : mu_(mu) {
    if (mu_.try_lock()) return;
    obs::WaitStateScope wait(obs::WaitState::kLatch);
    mu_.lock();
  }
  ~LatchGuard() { mu_.unlock(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  std::mutex& mu_;
};

}  // namespace

BufferManager::BufferManager(std::string name, size_t frames, size_t shards)
    : Component(std::move(name), "getpage"),
      frames_(frames),
      pinned_(frames, 0),
      dirty_(frames, 0),
      resident_(frames, kInvalidPage),
      rec_lsn_(frames, 0),
      page_lsn_(frames, 0) {
  DeclarePort("disk", "disk");
  DeclarePort("policy", "replacement-policy");
  pool_.resize(frames);
  size_t n = std::clamp<size_t>(shards, 1, frames == 0 ? 1 : frames);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  obs::Registry& reg = obs::Registry::Default();
  obs_gets_ = &reg.GetCounter("storage.buffer.gets");
  obs_hits_ = &reg.GetCounter("storage.buffer.hits");
  obs_misses_ = &reg.GetCounter("storage.buffer.misses");
  obs_evictions_ = &reg.GetCounter("storage.buffer.evictions");
  obs_writebacks_ = &reg.GetCounter("storage.buffer.dirty_writebacks");
  obs_hit_rate_ = &reg.GetGauge("storage.buffer.hit_rate");
}

Result<Page*> BufferManager::GetPage(PageId id) {
  return GetPageInternal(id, /*fresh=*/false);
}

Result<Page*> BufferManager::GetFreshPage(PageId id) {
  return GetPageInternal(id, /*fresh=*/true);
}

Result<Page*> BufferManager::GetPageInternal(PageId id, bool fresh) {
  DBM_ASSIGN_OR_RETURN(ReplacementPolicy * policy,
                       Require<ReplacementPolicy>("policy"));
  Shard& shard = ShardOf(id);
  LatchGuard lock(shard.mu);
  ++shard.stats.gets;
  obs_gets_->Add(1);
  uint64_t gets = gets_total_.fetch_add(1, std::memory_order_relaxed) + 1;

  auto it = shard.where.find(id);
  if (it != shard.where.end()) {
    ++shard.stats.hits;
    obs_hits_->Add(1);
    uint64_t hits = hits_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs_hit_rate_->Set(static_cast<double>(hits) /
                       static_cast<double>(gets));
    size_t frame = it->second;
    // Recency touch: skipped under contention rather than waited for —
    // the policy degrades to approximate LRU, the hit path stays short.
    if (policy_mu_.try_lock()) {
      policy->OnAccess(frame);
      policy_mu_.unlock();
    }
    ++shard.pin_count[id];
    pinned_[frame] = 1;
    return &pool_[frame];
  }

  ++shard.stats.misses;
  obs_misses_->Add(1);
  obs_hit_rate_->Set(
      static_cast<double>(hits_total_.load(std::memory_order_relaxed)) /
      static_cast<double>(gets));
  DBM_ASSIGN_OR_RETURN(size_t frame,
                       FindFreeOrEvict(id % shards_.size(), shard));
  if (fresh) {
    // Just-allocated page: there are no bytes on disk worth fetching
    // (and a sparse durable disk has no slot to read yet).
    pool_[frame].bytes.fill(0);
    pool_[frame].id = id;
  } else {
    DBM_ASSIGN_OR_RETURN(DiskComponent * disk,
                         Require<DiskComponent>("disk"));
    DBM_RETURN_NOT_OK(disk->Read(id, &pool_[frame]));
  }
  resident_[frame] = id;
  shard.where[id] = frame;
  dirty_[frame] = 0;
  rec_lsn_[frame] = 0;
  page_lsn_[frame] = 0;
  shard.pin_count[id] = 1;
  pinned_[frame] = 1;
  {
    std::lock_guard<std::mutex> policy_lock(policy_mu_);
    policy->OnLoad(frame);
  }
  return &pool_[frame];
}

Status BufferManager::Unpin(PageId id, bool dirty) {
  Shard& shard = ShardOf(id);
  LatchGuard lock(shard.mu);
  auto it = shard.where.find(id);
  if (it == shard.where.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(id));
  }
  auto pc = shard.pin_count.find(id);
  if (pc == shard.pin_count.end() || pc->second <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page " +
                                      std::to_string(id));
  }
  size_t frame = it->second;
  if (dirty) {
    dirty_[frame] = 1;
    // The recovery horizon: the LSN a checkpoint's redo must reach back
    // to. Stamped at first dirtying, cleared by writeback.
    if (wal_ != nullptr && rec_lsn_[frame] == 0) {
      rec_lsn_[frame] = wal_->next_lsn();
    }
  }
  if (--pc->second == 0) pinned_[frame] = 0;
  return Status::OK();
}

Status BufferManager::FlushAll() {
  DBM_ASSIGN_OR_RETURN(DiskComponent * disk, Require<DiskComponent>("disk"));
  // Collect dirty frames first, then flush in ascending page-id order:
  // with a WAL attached the page file after a mid-flush crash is then a
  // clean prefix of the relation, never an arbitrary subset.
  std::vector<std::pair<PageId, size_t>> dirty;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t f = s; f < frames_; f += shards_.size()) {
      // Pinned frames are skipped, like the eviction path: the pin
      // holder mutates pool_[frame] without the shard latch, so a
      // writeback here could snapshot a half-mutated image and stamp it
      // with a valid CRC — recovery would then trust a torn page.
      if (resident_[f] != kInvalidPage && dirty_[f] && !pinned_[f]) {
        dirty.emplace_back(resident_[f], f);
      }
    }
  }
  std::sort(dirty.begin(), dirty.end());
  // Attempt every frame even after a failure and report the first error:
  // one bad write must not leave every later frame dirty.
  Status first_error = Status::OK();
  for (const auto& [id, f] : dirty) {
    Shard& shard = ShardOf(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (resident_[f] != id || !dirty_[f] || pinned_[f]) {
      continue;  // raced: evicted, flushed, or re-pinned
    }
    Status s = WriteBack(disk, f, shard);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status BufferManager::WriteBack(DiskComponent* disk, size_t frame,
                                Shard& shard) {
  PageId id = resident_[frame];
  if (wal_ != nullptr) {
    // WAL-before-writeback: append the image, pass the durability
    // barrier, only then touch the page file. A crash between the two
    // writes leaves a torn slot whose durable image is already in the
    // log — recovery repairs it; the reverse order could not.
    DBM_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendPageImage(id, pool_[frame]));
    DBM_RETURN_NOT_OK(wal_->Durable(lsn));
    DBM_RETURN_NOT_OK(disk->Write(id, pool_[frame], lsn));
    page_lsn_[frame] = lsn;
  } else {
    DBM_RETURN_NOT_OK(disk->Write(id, pool_[frame]));
  }
  dirty_[frame] = 0;
  rec_lsn_[frame] = 0;
  ++shard.stats.dirty_writebacks;
  obs_writebacks_->Add(1);
  return Status::OK();
}

Status BufferManager::CheckpointWal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("CheckpointWal without a wal attached");
  }
  // Fuzzy: no flush is forced. Everything below the min rec_lsn over
  // dirty frames has already been written back, so the log below it is
  // dead weight once the checkpoint record itself is durable.
  Lsn redo = wal_->next_lsn();
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t f = s; f < frames_; f += shards_.size()) {
      if (resident_[f] != kInvalidPage && dirty_[f] && rec_lsn_[f] != 0) {
        redo = std::min(redo, rec_lsn_[f]);
      }
    }
  }
  DBM_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendCheckpoint(redo));
  (void)lsn;
  DBM_RETURN_NOT_OK(wal_->Flush());
  // Data-before-log-truncation, the same rule Recover() follows: the
  // writebacks below `redo` are plain pwrites whose bytes may still sit
  // in the OS page cache. Unlinking the segments that hold their only
  // durable images before fsyncing the page file would let a power loss
  // silently revert committed pages (to an older image with a valid
  // CRC, so not even detectable as DataLoss).
  DBM_ASSIGN_OR_RETURN(DiskComponent * disk, Require<DiskComponent>("disk"));
  DBM_RETURN_NOT_OK(disk->Sync());
  return wal_->TruncateBelow(redo);
}

Result<size_t> BufferManager::FindFreeOrEvict(size_t shard_index,
                                              Shard& shard) {
  const size_t step = shards_.size();
  for (size_t f = shard_index; f < frames_; f += step) {
    if (resident_[f] == kInvalidPage) return f;
  }
  DBM_ASSIGN_OR_RETURN(ReplacementPolicy * policy,
                       Require<ReplacementPolicy>("policy"));
  // The policy sees all frames; mask every frame outside this shard as
  // pinned so the victim is in-shard and no other shard's pin state is
  // read (it is only safe to read under that shard's latch).
  std::vector<bool> masked(frames_, true);
  for (size_t f = shard_index; f < frames_; f += step) {
    masked[f] = pinned_[f] != 0;
  }
  std::lock_guard<std::mutex> policy_lock(policy_mu_);
  DBM_ASSIGN_OR_RETURN(size_t victim, policy->PickVictim(masked));
  if (victim % step != shard_index || pinned_[victim]) {
    return Status::Internal("policy picked an out-of-shard or pinned victim");
  }
  PageId old = resident_[victim];
  if (dirty_[victim]) {
    DBM_ASSIGN_OR_RETURN(DiskComponent * disk,
                         Require<DiskComponent>("disk"));
    DBM_RETURN_NOT_OK(WriteBack(disk, victim, shard));
  }
  policy->OnEvict(victim);
  shard.where.erase(old);
  shard.pin_count.erase(old);
  resident_[victim] = kInvalidPage;
  dirty_[victim] = 0;
  ++shard.stats.evictions;
  obs_evictions_->Add(1);
  return victim;
}

BufferStats BufferManager::stats() const {
  BufferStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.gets += shard->stats.gets;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.dirty_writebacks += shard->stats.dirty_writebacks;
  }
  return total;
}

int BufferManager::PinCount(PageId id) const {
  const Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.pin_count.find(id);
  return it == shard.pin_count.end() ? 0 : it->second;
}

Status BufferManager::CheckInvariants() const {
  // Quiescent-point check: hold every shard latch (in index order) so
  // the whole pool is frozen while we look.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  size_t resident = 0, mapped = 0;
  for (size_t f = 0; f < frames_; ++f) {
    PageId id = resident_[f];
    if (id == kInvalidPage) continue;
    ++resident;
    const Shard& shard = ShardOf(id);
    if (&shard != shards_[f % shards_.size()].get()) {
      return Status::Internal("page " + std::to_string(id) +
                              " resident in out-of-shard frame " +
                              std::to_string(f));
    }
    auto it = shard.where.find(id);
    if (it == shard.where.end() || it->second != f) {
      return Status::Internal("resident/where mismatch at frame " +
                              std::to_string(f));
    }
    auto pc = shard.pin_count.find(id);
    int pins = pc == shard.pin_count.end() ? 0 : pc->second;
    if (pins < 0) return Status::Internal("negative pin count");
    if ((pins > 0) != (pinned_[f] != 0)) {
      return Status::Internal("pinned bit inconsistent with pin count");
    }
  }
  for (const auto& shard : shards_) mapped += shard->where.size();
  if (resident != mapped) {
    return Status::Internal("where map size mismatch");
  }
  return Status::OK();
}

}  // namespace dbm::storage
