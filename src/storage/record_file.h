// A heap file of variable-length records over buffer-managed pages.
//
// Page layout: [u16 record_count][u16 free_offset][records...], each
// record prefixed with a u16 length. Records never span pages; a record
// larger than the page payload is rejected.

#ifndef DBM_STORAGE_RECORD_FILE_H_
#define DBM_STORAGE_RECORD_FILE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer.h"

namespace dbm::storage {

/// Address of a record: page + slot index within the page.
struct RecordId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;
  bool operator==(const RecordId& other) const {
    return page == other.page && slot == other.slot;
  }
};

class RecordFile {
 public:
  /// `buffer` must have its disk/policy ports bound; `disk` allocates the
  /// file's pages.
  RecordFile(BufferManager* buffer, DiskComponent* disk)
      : buffer_(buffer), disk_(disk) {}

  /// Appends a record, allocating a new page when the tail page is full.
  Result<RecordId> Append(const std::vector<uint8_t>& record);

  /// Re-attaches to pages already on the disk after a restart (the WAL
  /// has been replayed by then): walks page ids in order, validates each
  /// page's slot directory, and stops at the first empty or unreadable
  /// page — the relation's clean prefix. Assumes the file owns the
  /// disk's pages 0..n-1 contiguously (one relation per disk, the
  /// load-then-scan discipline).
  Status Attach();

  /// Reads one record.
  Result<std::vector<uint8_t>> Read(const RecordId& id);

  /// Visits every record in file order. The visitor may return false to
  /// stop early.
  Status Scan(
      const std::function<bool(const RecordId&, const std::vector<uint8_t>&)>&
          visitor);

  size_t record_count() const { return record_count_; }
  const std::vector<PageId>& pages() const { return pages_; }

  /// Maximum record payload a page can hold.
  static constexpr size_t kMaxRecord = kPageSize - 4 - 2;

 private:
  BufferManager* buffer_;
  DiskComponent* disk_;
  std::vector<PageId> pages_;
  size_t record_count_ = 0;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_RECORD_FILE_H_
