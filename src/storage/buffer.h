// The buffer manager: the getpage component.

#ifndef DBM_STORAGE_BUFFER_H_
#define DBM_STORAGE_BUFFER_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "component/component.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/replacement.h"

namespace dbm::storage {

struct BufferStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

/// Fixed-size frame pool over a disk component with a pluggable
/// replacement policy. Pages are pinned while in use; eviction only
/// considers unpinned frames; dirty pages are written back on eviction
/// and on FlushAll.
class BufferManager : public component::Component {
 public:
  BufferManager(std::string name, size_t frames)
      : Component(std::move(name), "getpage"),
        frames_(frames),
        pinned_(frames, false),
        dirty_(frames, false),
        resident_(frames, kInvalidPage) {
    DeclarePort("disk", "disk");
    DeclarePort("policy", "replacement-policy");
    pool_.resize(frames);
    obs::Registry& reg = obs::Registry::Default();
    obs_gets_ = &reg.GetCounter("storage.buffer.gets");
    obs_hits_ = &reg.GetCounter("storage.buffer.hits");
    obs_misses_ = &reg.GetCounter("storage.buffer.misses");
    obs_evictions_ = &reg.GetCounter("storage.buffer.evictions");
    obs_writebacks_ = &reg.GetCounter("storage.buffer.dirty_writebacks");
    obs_hit_rate_ = &reg.GetGauge("storage.buffer.hit_rate");
  }

  /// Pins and returns the page. The pointer stays valid until Unpin.
  Result<Page*> GetPage(PageId id);

  /// Releases a pin; `dirty` marks the frame for writeback.
  Status Unpin(PageId id, bool dirty);

  /// Writes back every dirty frame (pinned ones included).
  Status FlushAll();

  const BufferStats& stats() const { return stats_; }
  size_t frame_count() const { return frames_; }
  int PinCount(PageId id) const;

  /// Invariant check used by property tests: every resident entry maps
  /// back to its frame, pin counts are consistent.
  Status CheckInvariants() const;

 private:
  Result<size_t> FindFreeOrEvict();

  size_t frames_;
  std::vector<Page> pool_;
  std::vector<bool> pinned_;   // derived: pin_count_ > 0
  std::vector<bool> dirty_;
  std::vector<PageId> resident_;
  std::unordered_map<PageId, size_t> where_;
  std::unordered_map<PageId, int> pin_count_;
  BufferStats stats_;

  // Registry mirrors of stats_ (all BufferManager instances aggregate).
  obs::Counter* obs_gets_;
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_evictions_;
  obs::Counter* obs_writebacks_;
  obs::Gauge* obs_hit_rate_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_BUFFER_H_
