// The buffer manager: the getpage component.

#ifndef DBM_STORAGE_BUFFER_H_
#define DBM_STORAGE_BUFFER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "component/component.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/replacement.h"
#include "storage/wal.h"

namespace dbm::storage {

struct BufferStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

/// Fixed-size frame pool over a disk component with a pluggable
/// replacement policy. Pages are pinned while in use; eviction only
/// considers unpinned frames; dirty pages are written back on eviction
/// and on FlushAll.
///
/// Concurrency: the pool is split into `shards` latch domains. Page id p
/// lives in shard p % shards, which owns the frames f ≡ p (mod shards) —
/// so parallel scans over different pages mostly take different latches,
/// and a page's whole life cycle (map entry, frame, pin count, dirty
/// bit) happens under exactly one shard mutex. The replacement policy
/// keeps global (all-frame) state behind its own mutex, ordered strictly
/// after the shard mutex; victim searches mask out every frame outside
/// the calling shard, so the policy never reads another shard's pin
/// state. Hit-path recency updates use try_lock — under contention a
/// touch may be skipped (approximate LRU), never blocked on.
/// The default shards=1 is byte-for-byte the old single-threaded
/// behavior.
///
/// Durability (SetWal): with a WAL attached, every writeback obeys
/// WAL-before-writeback — the page image is appended to the log and the
/// durability barrier (Wal::Durable) passed *before* the disk write
/// begins, so the log always covers the page file and a torn slot can
/// always be repaired from a durable image. Each frame carries two LSNs:
/// rec_lsn (first dirtying since the last writeback — the recovery
/// horizon) and page_lsn (the image last written back). The WAL's mutex
/// is ordered strictly after the shard latch, like policy_mu_.
class BufferManager : public component::Component {
 public:
  BufferManager(std::string name, size_t frames, size_t shards = 1);

  /// Pins and returns the page. The pointer stays valid until Unpin.
  Result<Page*> GetPage(PageId id);

  /// GetPage for a page id the caller JUST obtained from
  /// DiskComponent::Allocate: on a miss the frame is zero-filled
  /// instead of read from disk — a freshly allocated page has no bytes
  /// worth fetching. The caller must initialise the page and Unpin it
  /// dirty, or its frame may be evicted and later reads will see an
  /// unwritten slot. Behaves exactly like GetPage when the page is
  /// already resident.
  Result<Page*> GetFreshPage(PageId id);

  /// Releases a pin; `dirty` marks the frame for writeback.
  Status Unpin(PageId id, bool dirty);

  /// Writes back every dirty unpinned frame. Pinned frames are skipped
  /// (as eviction skips them): the pin holder may be mutating the page
  /// without the shard latch, and a writeback would snapshot a torn
  /// image under a valid CRC. Attempts ALL eligible frames even when one
  /// fails, then returns the first error — one bad sector must not leave
  /// every later frame dirty. With a WAL attached, frames flush in
  /// ascending page-id order so the page file after a mid-flush crash is
  /// a clean prefix, not an arbitrary subset.
  Status FlushAll();

  /// Attaches (or detaches, with nullptr) the write-ahead log. Attach
  /// before the first page is dirtied; the buffer does not own the log.
  void SetWal(Wal* wal) { wal_ = wal; }
  Wal* wal() const { return wal_; }

  /// Appends a fuzzy checkpoint: the redo LSN (min rec_lsn across dirty
  /// frames) is logged and fsynced, the page file is synced
  /// (data-before-log-truncation: past writebacks must be durable before
  /// the segments holding their images are unlinked), then segments
  /// wholly below the redo LSN are truncated. No page flush is forced —
  /// that is what makes it fuzzy; clean pages' images are already in the
  /// page file.
  Status CheckpointWal();

  /// Aggregated over shards (by value: the per-shard rows are live).
  BufferStats stats() const;
  size_t frame_count() const { return frames_; }
  size_t shard_count() const { return shards_.size(); }
  int PinCount(PageId id) const;

  /// Invariant check used by property tests: every resident entry maps
  /// back to its frame, pin counts are consistent. Takes every shard
  /// latch — call at quiescent points.
  Status CheckInvariants() const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, size_t> where;
    std::unordered_map<PageId, int> pin_count;
    BufferStats stats;
  };

  Shard& ShardOf(PageId id) { return *shards_[id % shards_.size()]; }
  const Shard& ShardOf(PageId id) const {
    return *shards_[id % shards_.size()];
  }

  /// Finds a free in-shard frame or evicts an unpinned one. Caller holds
  /// the shard mutex.
  Result<size_t> FindFreeOrEvict(size_t shard_index, Shard& shard);

  /// Shared body of GetPage/GetFreshPage; `fresh` zero-fills on a miss
  /// instead of reading from disk.
  Result<Page*> GetPageInternal(PageId id, bool fresh);

  /// Writes frame `frame` back to `disk` (WAL-before-writeback when a
  /// log is attached) and clears its dirty state. Caller holds the shard
  /// mutex of the frame's resident page.
  Status WriteBack(DiskComponent* disk, size_t frame, Shard& shard);

  size_t frames_;
  std::vector<Page> pool_;
  // Frame state. char, not bool: vector<bool> bit-packs neighbours into
  // one byte, which would couple adjacent shards' writes.
  std::vector<char> pinned_;   // derived: pin_count > 0
  std::vector<char> dirty_;
  std::vector<PageId> resident_;
  std::vector<Lsn> rec_lsn_;   // first dirtying since last writeback
  std::vector<Lsn> page_lsn_;  // image last written back
  Wal* wal_ = nullptr;         // not owned; may be null (volatile mode)
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards the (global-state) replacement policy; acquired after a
  /// shard mutex, never before.
  std::mutex policy_mu_;

  /// Instance totals for the hit-rate gauge (relaxed; the per-shard
  /// stats rows are the precise record).
  std::atomic<uint64_t> gets_total_{0};
  std::atomic<uint64_t> hits_total_{0};

  // Registry mirrors of stats (all BufferManager instances aggregate).
  obs::Counter* obs_gets_;
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_evictions_;
  obs::Counter* obs_writebacks_;
  obs::Gauge* obs_hit_rate_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_BUFFER_H_
