// The write-ahead log: durability for the paged store.
//
// PR 8's black box proved the frame/CRC/torn-tail recipe on telemetry;
// this module applies the same recipe to the data plane. The log is a
// directory of segment files ("wal-000001.seg", ...), each starting with
// an 8-byte magic ("DBMWAL01") + u32 version, followed by CRC-framed
// records:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// A payload is either a physical page image (type, LSN, page id, the
// 4096 bytes) or a fuzzy checkpoint (type, LSN, redo LSN). LSNs are
// assigned at append, strictly monotonic across segments, and define
// three watermarks:
//
//   next_lsn     the LSN the next append will take
//   flushed_lsn  last frame fully handed to the OS (write(2) returned)
//   durable_lsn  last frame covered by an fsync — the durability barrier
//
// FsyncPolicy governs how the barrier advances: kNever (it trails until
// an explicit Flush — the deterministic-test mode), kInterval (fsync
// every fsync_interval_bytes), kCommit (Durable(lsn) fsyncs immediately,
// so the WAL-before-writeback barrier is a real fsync per writeback).
//
// Recovery is the torn-tail rule verbatim: scan segments in sequence
// order,
// stop at the first frame that fails its checksum, trust nothing after
// it. Wal::Open physically truncates the torn tail (and unlinks any
// later segments) so new appends never land behind unreadable bytes,
// then resumes LSNs where the trusted prefix ended.
//
// Truncation: once every page dirtied before some redo LSN has been
// written back to the page file, the segments wholly below that LSN are
// dead weight; TruncateBelow unlinks them (fuzzy checkpoints record the
// redo LSN so a restart knows the same thing).

#ifndef DBM_STORAGE_WAL_H_
#define DBM_STORAGE_WAL_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace dbm::fault {
class Point;
}  // namespace dbm::fault

namespace dbm::storage {

/// WAL sequence number. 0 is "no LSN"; the first record gets 1.
using Lsn = uint64_t;

enum class WalFsyncPolicy { kNever, kInterval, kCommit };
const char* WalFsyncPolicyName(WalFsyncPolicy policy);

inline constexpr char kWalMagic[8] = {'D', 'B', 'M', 'W', 'A', 'L',
                                      '0', '1'};
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderBytes = 12;      // magic + u32 version
inline constexpr size_t kWalFrameHeaderBytes = 8;  // u32 len + u32 crc
/// Upper bound on an encoded payload (a page image plus headroom);
/// anything longer on disk is corruption, not a record.
inline constexpr size_t kMaxWalPayloadBytes = kPageSize + 64;

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kCheckpoint = 2,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kPageImage;
  Lsn lsn = 0;
  PageId page = kInvalidPage;   // kPageImage
  Lsn redo_lsn = 0;             // kCheckpoint: replay may start here
  std::vector<uint8_t> image;   // kPageImage: exactly kPageSize bytes
};

/// Appends one complete frame (header + payload) for `rec` to *out.
void EncodeWalFrame(const WalRecord& rec, std::string* out);
/// Decodes the frame at data[0..n). Returns false on a torn or corrupt
/// frame (the torn-tail signal).
bool DecodeWalFrame(const uint8_t* data, size_t n, WalRecord* rec,
                    size_t* frame_bytes);
void EncodeWalHeader(std::string* out);
bool CheckWalHeader(const uint8_t* data, size_t n);

struct WalOptions {
  std::string dir;                 // segment directory (created if absent)
  size_t segment_bytes = 1 << 20;  // rotate past this size
  WalFsyncPolicy fsync = WalFsyncPolicy::kNever;
  uint64_t fsync_interval_bytes = 1 << 16;  // kInterval threshold
};

struct WalStats {
  Lsn next_lsn = 1;
  Lsn flushed_lsn = 0;
  Lsn durable_lsn = 0;
  uint64_t appends = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t checkpoints = 0;
  uint64_t segments_created = 0;
  uint64_t segments_live = 0;
  uint64_t truncated_segments = 0;
  bool dead = false;
};

/// What a scan of a WAL directory found (shared by Wal::Open, recovery
/// and tools/wal_dump).
struct WalScanReport {
  uint64_t segments_scanned = 0;
  uint64_t frames = 0;
  uint64_t bytes_scanned = 0;
  bool truncated = false;              // a torn/corrupt frame ended the scan
  std::string truncated_segment;
  uint64_t truncated_offset = 0;
  uint64_t torn_tail_bytes = 0;        // bytes past the tear, now untrusted
  Lsn max_lsn = 0;                     // highest trusted LSN
  Lsn redo_lsn = 0;                    // from the last checkpoint seen
  uint64_t checkpoints = 0;

  struct Segment {
    std::string path;
    uint64_t frames = 0;
    Lsn first_lsn = 0;
    Lsn last_lsn = 0;
    uint64_t bytes = 0;
  };
  std::vector<Segment> segments;
};

/// Streams every trusted frame under `dir` through `fn` in append order,
/// applying the torn-tail rule: the first bad frame truncates the
/// history there — nothing after it (including whole later segments) is
/// visited. `fn` may return false to stop early. A missing or empty
/// directory is a fresh database, not an error: OK with an empty report.
Status ScanWal(
    const std::string& dir,
    const std::function<bool(const WalRecord& rec,
                             const std::string& segment)>& fn,
    WalScanReport* report);

/// The log itself. All methods are thread-safe behind one internal
/// mutex — the WAL is ordered after the buffer shard latches and takes
/// no lock of any other subsystem.
class Wal {
 public:
  /// Opens (creating the directory if needed). An existing history is
  /// scanned with the torn-tail rule; the torn tail is physically
  /// truncated, later segments unlinked, and LSNs resume after the
  /// trusted prefix. Everything surviving on disk at open counts as
  /// durable (it will be read back by the next recovery scan).
  static Result<std::unique_ptr<Wal>> Open(WalOptions options);
  ~Wal();

  /// Appends a physical page image, returning its LSN. Consults the
  /// `storage.wal.append` fault point: an injected crash writes half a
  /// frame and kills the log — byte-identical to kill -9 mid-append.
  Result<Lsn> AppendPageImage(PageId id, const Page& page);

  /// Appends a fuzzy-checkpoint record carrying the redo LSN (the
  /// lowest rec_lsn across dirty frames; recovery may start replay
  /// there instead of at the log's beginning).
  Result<Lsn> AppendCheckpoint(Lsn redo_lsn);

  /// The WAL-before-writeback barrier: returns once the frame at `lsn`
  /// is durable *per the policy*. kCommit fsyncs immediately; kInterval
  /// and kNever return without forcing (their barrier trails — the
  /// torn-tail rule still bounds what a crash can cost).
  Status Durable(Lsn lsn);

  /// Unconditional fsync (clean shutdown, checkpoints).
  Status Flush();

  /// Unlinks sealed segments whose every frame is below `redo_lsn`.
  Status TruncateBelow(Lsn redo_lsn);

  Lsn next_lsn() const;
  Lsn durable_lsn() const;
  WalStats stats() const;
  std::vector<std::string> SegmentPaths() const;
  const WalOptions& options() const { return options_; }

  /// Registers this log as the flight-recorder "wal" section (the
  /// section reads through Installed(), so a destroyed log never leaves
  /// a dangling capture behind).
  void Install();
  void Uninstall();
  static Wal* Installed();
  std::string FlightSectionJson() const;

 private:
  explicit Wal(WalOptions options);

  Status OpenSegmentLocked();
  void SealSegmentLocked();
  /// fsync of the open segment. On failure the log dies and the durable
  /// barrier does NOT advance — a failed fsync may have dropped the
  /// dirty pages and cannot be safely retried.
  Status FsyncLocked();
  Result<Lsn> AppendLocked(WalRecord* rec);
  Result<Lsn> CommitScratchLocked(Lsn lsn);

  struct Segment {
    std::string path;
    Lsn first_lsn = 0;
    Lsn last_lsn = 0;
    bool sealed = false;
  };

  mutable std::mutex mu_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t segment_seq_ = 0;
  size_t segment_size_ = 0;
  uint64_t segment_frames_ = 0;
  std::deque<Segment> segments_;  // back() is the open segment

  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  uint64_t appends_ = 0;
  uint64_t bytes_ = 0;
  uint64_t bytes_since_fsync_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t segments_created_ = 0;
  uint64_t truncated_segments_ = 0;
  bool dead_ = false;
  std::string scratch_;

  fault::Point* append_point_;

  obs::Counter* m_appends_;
  obs::Counter* m_bytes_;
  obs::Counter* m_fsyncs_;
  obs::Counter* m_checkpoints_;
  obs::Counter* m_truncated_;
  obs::Gauge* m_segments_;
  obs::Gauge* m_durable_lsn_;
  obs::Gauge* m_flush_lag_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_WAL_H_
