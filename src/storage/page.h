// Pages and the simulated disk component.
//
// The paper argues for components "targeted at a finer grain and at lower
// level operations (such as getpage)". This module provides that plane:
// a disk component, swappable replacement-policy components and a buffer
// manager whose getpage path is the measured unit in the componentisation
// bench (A3).

#ifndef DBM_STORAGE_PAGE_H_
#define DBM_STORAGE_PAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "component/component.h"

namespace dbm::storage {

constexpr size_t kPageSize = 4096;
using PageId = uint32_t;
constexpr PageId kInvalidPage = UINT32_MAX;

struct Page {
  PageId id = kInvalidPage;
  std::array<uint8_t, kPageSize> bytes{};
};

/// A simulated disk: an in-memory page array with access counters and a
/// simple cost model (I/O counts stand in for latency; the environment
/// simulator converts counts to time when needed).
///
/// The page operations are virtual so a durable implementation
/// (FileDiskComponent in durable_disk.h) substitutes anywhere a
/// `Require<DiskComponent>("disk")` port resolves — the buffer manager
/// neither knows nor cares whether pages live in RAM or in a segment
/// file. This base class stays the volatile reference implementation.
///
/// Concurrency: Read/Write of *distinct* pages may run concurrently (the
/// sharded buffer manager guarantees a page is ever served by one shard,
/// so same-page races cannot happen through it); the access counters are
/// relaxed atomics. Allocate is NOT thread-safe — relations are loaded
/// before parallel execution starts (load-then-scan discipline), so
/// allocation never races with I/O.
class DiskComponent : public component::Component {
 public:
  explicit DiskComponent(std::string name = "disk")
      : Component(std::move(name), "disk") {}
  virtual ~DiskComponent() = default;

  /// Allocates a fresh zeroed page. Not thread-safe (see above).
  /// Returns kInvalidPage only when the disk can no longer allocate
  /// (a durable implementation whose backing file died).
  virtual PageId Allocate() {
    pages_.emplace_back();
    pages_.back().id = static_cast<PageId>(pages_.size() - 1);
    return pages_.back().id;
  }

  virtual Status Read(PageId id, Page* out) {
    if (id >= pages_.size()) {
      return Status::NotFound("disk read of unallocated page " +
                              std::to_string(id));
    }
    *out = pages_[id];
    reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Writes a page image. `lsn` is the WAL sequence number of the image
  /// being written (0 = unlogged); the volatile disk ignores it, the
  /// durable one persists it per slot so recovery can replay
  /// idempotently by LSN comparison.
  virtual Status Write(PageId id, const Page& page, uint64_t lsn = 0) {
    (void)lsn;
    if (id >= pages_.size()) {
      return Status::NotFound("disk write of unallocated page " +
                              std::to_string(id));
    }
    pages_[id] = page;
    pages_[id].id = id;
    writes_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Durability barrier for completed writes: returns once every prior
  /// Write is on stable storage. The volatile disk has no such storage,
  /// so this is a no-op; the durable one fsyncs the page file. Callers
  /// that unlink WAL segments (checkpoint truncation) MUST pass this
  /// barrier first — the data-before-log-truncation rule.
  virtual Status Sync() { return Status::OK(); }

  virtual size_t page_count() const { return pages_.size(); }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 protected:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};

 private:
  std::vector<Page> pages_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_PAGE_H_
