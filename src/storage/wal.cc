#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32.h"
#include "common/json.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "obs/health.h"
#include "obs/tracectx.h"

namespace dbm::storage {

namespace {

std::atomic<Wal*> g_installed{nullptr};

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool IsSegmentName(const std::string& name) {
  return name.rfind("wal-", 0) == 0 && name.size() > 4 &&
         name.substr(name.size() - 4) == ".seg";
}

/// Parses the zero-padded sequence out of "wal-NNNNNN.seg" (0 on
/// anything malformed — harmless, Open just starts a fresh numbering).
uint64_t SegmentSeq(const std::string& name) {
  if (!IsSegmentName(name)) return 0;
  uint64_t seq = 0;
  for (size_t i = 4; i + 4 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

void Put8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void Put32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void Put64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

struct Cursor {
  const uint8_t* data;
  size_t n;
  size_t pos = 0;

  bool Get8(uint8_t* v) {
    if (pos + 1 > n) return false;
    *v = data[pos++];
    return true;
  }
  bool Get32(uint32_t* v) {
    if (pos + 4 > n) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos += 4;
    *v = out;
    return true;
  }
  bool Get64(uint64_t* v) {
    if (pos + 8 > n) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos += 8;
    *v = out;
    return true;
  }
};

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (IsSegmentName(name)) names.push_back(name);
  }
  // Numeric order, not lexicographic: past sequence 999999 names grow a
  // digit and "wal-1000000.seg" would sort before "wal-999999.seg",
  // which ScanWal's monotonicity check would read as a torn tail.
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              uint64_t sa = SegmentSeq(a), sb = SegmentSeq(b);
              return sa != sb ? sa < sb : a < b;
            });
  return names;
}

}  // namespace

const char* WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kNever: return "never";
    case WalFsyncPolicy::kInterval: return "interval";
    case WalFsyncPolicy::kCommit: return "commit";
  }
  return "?";
}

void EncodeWalHeader(std::string* out) {
  out->append(kWalMagic, sizeof(kWalMagic));
  Put32(out, kWalFormatVersion);
}

bool CheckWalHeader(const uint8_t* data, size_t n) {
  if (n < kWalHeaderBytes) return false;
  if (std::memcmp(data, kWalMagic, sizeof(kWalMagic)) != 0) return false;
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(
                   data[sizeof(kWalMagic) + static_cast<size_t>(i)])
               << (8 * i);
  }
  return version == kWalFormatVersion;
}

void EncodeWalFrame(const WalRecord& rec, std::string* out) {
  std::string payload;
  payload.reserve(rec.type == WalRecordType::kPageImage ? kPageSize + 32
                                                        : 32);
  Put8(&payload, static_cast<uint8_t>(rec.type));
  Put64(&payload, rec.lsn);
  switch (rec.type) {
    case WalRecordType::kPageImage:
      Put32(&payload, rec.page);
      Put32(&payload, static_cast<uint32_t>(rec.image.size()));
      payload.append(reinterpret_cast<const char*>(rec.image.data()),
                     rec.image.size());
      break;
    case WalRecordType::kCheckpoint:
      Put64(&payload, rec.redo_lsn);
      break;
  }
  Put32(out, static_cast<uint32_t>(payload.size()));
  Put32(out, Crc32(reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size()));
  out->append(payload);
}

bool DecodeWalFrame(const uint8_t* data, size_t n, WalRecord* rec,
                    size_t* frame_bytes) {
  if (n < kWalFrameHeaderBytes) return false;
  uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(data[static_cast<size_t>(i)]) << (8 * i);
    crc |= static_cast<uint32_t>(data[4 + static_cast<size_t>(i)])
           << (8 * i);
  }
  if (len > kMaxWalPayloadBytes || kWalFrameHeaderBytes + len > n) {
    return false;
  }
  const uint8_t* payload = data + kWalFrameHeaderBytes;
  if (Crc32(payload, len) != crc) return false;
  Cursor cur{payload, len};
  WalRecord out;
  uint8_t type = 0;
  if (!cur.Get8(&type)) return false;
  if (!cur.Get64(&out.lsn)) return false;
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kPageImage): {
      out.type = WalRecordType::kPageImage;
      uint32_t image_len = 0;
      if (!cur.Get32(&out.page)) return false;
      if (!cur.Get32(&image_len)) return false;
      if (image_len != kPageSize || cur.pos + image_len != len) {
        return false;
      }
      out.image.assign(payload + cur.pos, payload + cur.pos + image_len);
      cur.pos += image_len;
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kCheckpoint):
      out.type = WalRecordType::kCheckpoint;
      if (!cur.Get64(&out.redo_lsn)) return false;
      break;
    default:
      return false;
  }
  if (cur.pos != len) return false;
  *rec = std::move(out);
  *frame_bytes = kWalFrameHeaderBytes + len;
  return true;
}

Status ScanWal(
    const std::string& dir,
    const std::function<bool(const WalRecord& rec,
                             const std::string& segment)>& fn,
    WalScanReport* report) {
  *report = WalScanReport{};
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::OK();  // fresh database: nothing to recover
  }
  std::vector<std::string> names = ListSegments(dir);
  Lsn prev_lsn = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string path = dir + "/" + names[i];
    DBM_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    ++report->segments_scanned;
    report->bytes_scanned += bytes.size();
    WalScanReport::Segment seg;
    seg.path = path;
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    size_t pos = 0;
    bool torn = false;
    if (!CheckWalHeader(data, bytes.size())) {
      torn = true;
    } else {
      pos = kWalHeaderBytes;
      while (pos < bytes.size()) {
        WalRecord rec;
        size_t frame_bytes = 0;
        if (!DecodeWalFrame(data + pos, bytes.size() - pos, &rec,
                            &frame_bytes) ||
            rec.lsn <= prev_lsn) {
          // A bad checksum — or an LSN that runs backwards, which only a
          // stale or spliced segment produces — ends the trusted history.
          torn = true;
          break;
        }
        prev_lsn = rec.lsn;
        seg.bytes += frame_bytes;
        ++seg.frames;
        if (seg.first_lsn == 0) seg.first_lsn = rec.lsn;
        seg.last_lsn = rec.lsn;
        ++report->frames;
        report->max_lsn = rec.lsn;
        if (rec.type == WalRecordType::kCheckpoint) {
          ++report->checkpoints;
          report->redo_lsn = rec.redo_lsn;
        }
        pos += frame_bytes;
        if (fn && !fn(rec, path)) {
          report->segments.push_back(std::move(seg));
          return Status::OK();
        }
      }
    }
    report->segments.push_back(std::move(seg));
    if (torn) {
      // The torn-tail rule: the first untrusted frame ends the history.
      // Whole later segments postdate the tear and cannot be trusted to
      // follow a contiguous prefix, so the scan stops entirely.
      report->truncated = true;
      report->truncated_segment = path;
      report->truncated_offset = pos;
      report->torn_tail_bytes += bytes.size() - pos;
      for (size_t j = i + 1; j < names.size(); ++j) {
        std::error_code size_ec;
        report->torn_tail_bytes += static_cast<uint64_t>(
            std::filesystem::file_size(dir + "/" + names[j], size_ec));
      }
      break;
    }
  }
  return Status::OK();
}

Wal::Wal(WalOptions options)
    : options_(std::move(options)),
      m_appends_(&obs::Registry::Default().GetCounter("wal.appends")),
      m_bytes_(&obs::Registry::Default().GetCounter("wal.bytes")),
      m_fsyncs_(&obs::Registry::Default().GetCounter("wal.fsyncs")),
      m_checkpoints_(
          &obs::Registry::Default().GetCounter("wal.checkpoints")),
      m_truncated_(
          &obs::Registry::Default().GetCounter("wal.truncated_segments")),
      m_segments_(&obs::Registry::Default().GetGauge("wal.segments")),
      m_durable_lsn_(
          &obs::Registry::Default().GetGauge("wal.durable_lsn")),
      m_flush_lag_(&obs::Registry::Default().GetGauge("wal.flush_lag")) {
  scratch_.reserve(kMaxWalPayloadBytes + kWalFrameHeaderBytes);
  append_point_ = fault::Injector::Default().GetPoint("storage.wal.append");
}

Result<std::unique_ptr<Wal>> Wal::Open(WalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("Wal needs a segment directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + options.dir +
                               "': " + ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(std::move(options)));

  // Scan whatever history survived: trust the prefix, physically
  // truncate the torn tail so new appends never land behind bytes no
  // reader would believe, and resume LSNs past the trusted end.
  WalScanReport report;
  DBM_RETURN_NOT_OK(ScanWal(wal->options_.dir, nullptr, &report));
  if (report.truncated) {
    if (report.truncated_offset <= kWalHeaderBytes) {
      ::unlink(report.truncated_segment.c_str());
    } else {
      if (::truncate(report.truncated_segment.c_str(),
                     static_cast<off_t>(report.truncated_offset)) != 0) {
        return Status::IoError("cannot truncate torn tail of '" +
                               report.truncated_segment + "'");
      }
    }
    // Unlink every segment past the tear — by sequence number, not by
    // re-encountering the torn segment's path: when the tear was at the
    // header the torn segment was just unlinked and would never be seen
    // again, leaving stale higher-LSN segments for a later scan to
    // resurrect.
    const uint64_t torn_seq = SegmentSeq(
        std::filesystem::path(report.truncated_segment).filename().string());
    for (const std::string& name : ListSegments(wal->options_.dir)) {
      if (SegmentSeq(name) > torn_seq) {
        ::unlink((wal->options_.dir + "/" + name).c_str());
      }
    }
  }
  uint64_t last_seq = 0;
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    for (const WalScanReport::Segment& seg : report.segments) {
      if (seg.frames == 0) continue;
      Segment s;
      s.path = seg.path;
      s.first_lsn = seg.first_lsn;
      s.last_lsn = seg.last_lsn;
      s.sealed = true;
      wal->segments_.push_back(std::move(s));
      last_seq = std::max(
          last_seq,
          SegmentSeq(std::filesystem::path(seg.path).filename().string()));
    }
    wal->segment_seq_ = last_seq;
    wal->next_lsn_ = report.max_lsn + 1;
    wal->flushed_lsn_ = report.max_lsn;
    wal->durable_lsn_ = report.max_lsn;
    DBM_RETURN_NOT_OK(wal->OpenSegmentLocked());
    wal->m_durable_lsn_->Set(static_cast<double>(wal->durable_lsn_));
    wal->m_flush_lag_->Set(0);
  }
  return wal;
}

Wal::~Wal() {
  Uninstall();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!dead_) (void)FsyncLocked();  // best-effort on shutdown
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::OpenSegmentLocked() {
  ++segment_seq_;
  std::string path = options_.dir + "/" + SegmentName(segment_seq_);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    return Status::Unavailable("cannot open wal segment '" + path + "'");
  }
  std::string header;
  EncodeWalHeader(&header);
  if (::write(fd_, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    ::close(fd_);
    fd_ = -1;
    return Status::Unavailable("cannot write wal header to '" + path +
                               "'");
  }
  segment_size_ = header.size();
  segment_frames_ = 0;
  Segment seg;
  seg.path = path;
  segments_.push_back(std::move(seg));
  ++segments_created_;
  m_segments_->Set(static_cast<double>(segments_.size()));
  return Status::OK();
}

void Wal::SealSegmentLocked() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  if (!segments_.empty()) segments_.back().sealed = true;
}

Status Wal::FsyncLocked() {
  if (fd_ < 0) return Status::OK();
  obs::SpanScope span("wal.fsync", "storage");
  if (::fsync(fd_) != 0) {
    // fsyncgate semantics: a failed fsync may have dropped the dirty
    // pages, and retrying cannot bring them back. The barrier must not
    // advance — callers would writeback against an image the log never
    // made durable — so the log dies here.
    dead_ = true;
    return Status::IoError("fsync failed on wal segment '" +
                           (segments_.empty() ? options_.dir
                                              : segments_.back().path) +
                           "'");
  }
  ++fsyncs_;
  m_fsyncs_->Add(1);
  durable_lsn_ = flushed_lsn_;
  bytes_since_fsync_ = 0;
  m_durable_lsn_->Set(static_cast<double>(durable_lsn_));
  m_flush_lag_->Set(static_cast<double>(flushed_lsn_ - durable_lsn_));
  return Status::OK();
}

Result<Lsn> Wal::AppendLocked(WalRecord* rec) {
  if (dead_) {
    return Status::Unavailable("wal is dead (crash fault)");
  }
  rec->lsn = next_lsn_;
  scratch_.clear();
  EncodeWalFrame(*rec, &scratch_);
  return CommitScratchLocked(rec->lsn);
}

/// Rotation, the fault point, the write and the bookkeeping for the
/// frame already encoded in scratch_. Split from AppendLocked so the
/// page-image fast path can encode in place and skip the WalRecord
/// detour (three 4 KiB copies and a heap allocation per writeback).
Result<Lsn> Wal::CommitScratchLocked(Lsn lsn) {
  if (segment_frames_ > 0 &&
      segment_size_ + scratch_.size() > options_.segment_bytes) {
    SealSegmentLocked();
    DBM_RETURN_NOT_OK(OpenSegmentLocked());
  }
  if (append_point_->armed()) {
    fault::Decision verdict = append_point_->Decide();
    if (verdict.crash) {
      // Act the crash out: half a frame on disk, then the log dies —
      // exactly the torn tail a kill -9 mid-append leaves behind.
      // Recovery must truncate here and keep every frame before it.
      size_t half = scratch_.size() / 2;
      (void)!::write(fd_, scratch_.data(), half);
      dead_ = true;
      fault::Record(fault::FaultEventKind::kInjected, "storage.wal.append",
                    "crash mid-append: torn frame in " +
                        (segments_.empty() ? options_.dir
                                           : segments_.back().path),
                    0);
      return Status::Unavailable("wal is dead (injected crash mid-append)");
    }
    if (verdict.error) {
      // A failed append consumes no LSN and leaves no bytes: the caller
      // may retry and the history stays contiguous.
      return Status::IoError("injected wal append error");
    }
  }
  if (::write(fd_, scratch_.data(), scratch_.size()) !=
      static_cast<ssize_t>(scratch_.size())) {
    dead_ = true;
    return Status::Unavailable("short write to wal segment '" +
                               segments_.back().path + "'");
  }
  segment_size_ += scratch_.size();
  ++segment_frames_;
  if (segments_.back().first_lsn == 0) segments_.back().first_lsn = lsn;
  segments_.back().last_lsn = lsn;
  flushed_lsn_ = lsn;
  next_lsn_ = lsn + 1;
  ++appends_;
  bytes_ += scratch_.size();
  bytes_since_fsync_ += scratch_.size();
  m_appends_->Add(1);
  m_bytes_->Add(scratch_.size());
  if (options_.fsync == WalFsyncPolicy::kInterval &&
      bytes_since_fsync_ >= options_.fsync_interval_bytes) {
    DBM_RETURN_NOT_OK(FsyncLocked());
  }
  m_flush_lag_->Set(static_cast<double>(flushed_lsn_ - durable_lsn_));
  return lsn;
}

Result<Lsn> Wal::AppendPageImage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    return Status::Unavailable("wal is dead (crash fault)");
  }
  // Writeback hot path: encode straight into scratch_ — one image copy,
  // byte-identical to EncodeWalFrame on a kPageImage WalRecord.
  const Lsn lsn = next_lsn_;
  constexpr uint32_t kPayloadBytes =
      1 + 8 + 4 + 4 + static_cast<uint32_t>(kPageSize);
  scratch_.clear();
  Put32(&scratch_, kPayloadBytes);
  Put32(&scratch_, 0);  // CRC, patched below
  Put8(&scratch_, static_cast<uint8_t>(WalRecordType::kPageImage));
  Put64(&scratch_, lsn);
  Put32(&scratch_, id);
  Put32(&scratch_, static_cast<uint32_t>(kPageSize));
  scratch_.append(reinterpret_cast<const char*>(page.bytes.data()),
                  kPageSize);
  const uint32_t crc =
      Crc32(reinterpret_cast<const uint8_t*>(scratch_.data()) +
                kWalFrameHeaderBytes,
            kPayloadBytes);
  for (int i = 0; i < 4; ++i) {
    scratch_[4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return CommitScratchLocked(lsn);
}

Result<Lsn> Wal::AppendCheckpoint(Lsn redo_lsn) {
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.redo_lsn = redo_lsn;
  std::lock_guard<std::mutex> lock(mu_);
  DBM_ASSIGN_OR_RETURN(Lsn lsn, AppendLocked(&rec));
  ++checkpoints_;
  m_checkpoints_->Add(1);
  return lsn;
}

Status Wal::Durable(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Unavailable("wal is dead (crash fault)");
  if (lsn > flushed_lsn_) {
    return Status::FailedPrecondition(
        "durability barrier requested past the flushed LSN");
  }
  if (lsn <= durable_lsn_) return Status::OK();
  if (options_.fsync == WalFsyncPolicy::kCommit) {
    DBM_RETURN_NOT_OK(FsyncLocked());
  }
  // kNever / kInterval: the barrier trails by design — the torn-tail
  // rule still bounds what a crash can cost to the un-fsynced tail.
  return Status::OK();
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Status::Unavailable("wal is dead (crash fault)");
  return FsyncLocked();
}

Status Wal::TruncateBelow(Lsn redo_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  while (segments_.size() > 1 && segments_.front().sealed &&
         segments_.front().last_lsn != 0 &&
         segments_.front().last_lsn < redo_lsn) {
    ::unlink(segments_.front().path.c_str());
    segments_.pop_front();
    ++truncated_segments_;
    m_truncated_->Add(1);
  }
  m_segments_->Set(static_cast<double>(segments_.size()));
  return Status::OK();
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats out;
  out.next_lsn = next_lsn_;
  out.flushed_lsn = flushed_lsn_;
  out.durable_lsn = durable_lsn_;
  out.appends = appends_;
  out.bytes = bytes_;
  out.fsyncs = fsyncs_;
  out.checkpoints = checkpoints_;
  out.segments_created = segments_created_;
  out.segments_live = segments_.size();
  out.truncated_segments = truncated_segments_;
  out.dead = dead_;
  return out;
}

std::vector<std::string> Wal::SegmentPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(segments_.size());
  for (const Segment& seg : segments_) out.push_back(seg.path);
  return out;
}

void Wal::Install() {
  g_installed.store(this, std::memory_order_release);
  static bool section_registered = [] {
    obs::RegisterFlightSection("wal", [] {
      Wal* wal = Wal::Installed();
      return wal == nullptr ? std::string("null")
                            : wal->FlightSectionJson();
    });
    return true;
  }();
  (void)section_registered;
}

void Wal::Uninstall() {
  Wal* self = this;
  g_installed.compare_exchange_strong(self, nullptr);
}

Wal* Wal::Installed() {
  return g_installed.load(std::memory_order_acquire);
}

std::string Wal::FlightSectionJson() const {
  WalStats s = stats();
  std::string out = "{\"dir\":\"" + JsonEscape(options_.dir) + "\"";
  out += ",\"fsync\":\"" +
         std::string(WalFsyncPolicyName(options_.fsync)) + "\"";
  out += ",\"next_lsn\":" + std::to_string(s.next_lsn);
  out += ",\"flushed_lsn\":" + std::to_string(s.flushed_lsn);
  out += ",\"durable_lsn\":" + std::to_string(s.durable_lsn);
  out += ",\"appends\":" + std::to_string(s.appends);
  out += ",\"bytes\":" + std::to_string(s.bytes);
  out += ",\"fsyncs\":" + std::to_string(s.fsyncs);
  out += ",\"checkpoints\":" + std::to_string(s.checkpoints);
  out += ",\"truncated_segments\":" + std::to_string(s.truncated_segments);
  out += std::string(",\"dead\":") + (s.dead ? "true" : "false");
  out += ",\"segments\":[";
  bool first = true;
  for (const std::string& path : SegmentPaths()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(path) + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace dbm::storage
