#include "storage/btree.h"

#include <cstring>

namespace dbm::storage {

namespace {

constexpr size_t kHeader = 12;
constexpr size_t kLeafEntry = 16;      // i64 key + u64 value
constexpr size_t kInternalEntry = 12;  // i64 key + u32 child
constexpr size_t kLeafCapacity = (kPageSize - kHeader) / kLeafEntry;
constexpr size_t kInternalCapacity = (kPageSize - kHeader) / kInternalEntry;

uint16_t GetU16(const Page& p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p.bytes.data() + off, 2);
  return v;
}
void PutU16(Page* p, size_t off, uint16_t v) {
  std::memcpy(p->bytes.data() + off, &v, 2);
}
uint32_t GetU32(const Page& p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p.bytes.data() + off, 4);
  return v;
}
void PutU32(Page* p, size_t off, uint32_t v) {
  std::memcpy(p->bytes.data() + off, &v, 4);
}
int64_t GetI64(const Page& p, size_t off) {
  int64_t v;
  std::memcpy(&v, p.bytes.data() + off, 8);
  return v;
}
void PutI64(Page* p, size_t off, int64_t v) {
  std::memcpy(p->bytes.data() + off, &v, 8);
}
uint64_t GetU64(const Page& p, size_t off) {
  uint64_t v;
  std::memcpy(&v, p.bytes.data() + off, 8);
  return v;
}
void PutU64(Page* p, size_t off, uint64_t v) {
  std::memcpy(p->bytes.data() + off, &v, 8);
}

bool IsLeaf(const Page& p) { return GetU16(p, 0) == 0; }
uint16_t Count(const Page& p) { return GetU16(p, 2); }

int64_t LeafKey(const Page& p, size_t i) {
  return GetI64(p, kHeader + i * kLeafEntry);
}
uint64_t LeafValue(const Page& p, size_t i) {
  return GetU64(p, kHeader + i * kLeafEntry + 8);
}
int64_t NodeKey(const Page& p, size_t i) {
  return GetI64(p, kHeader + i * kInternalEntry);
}
PageId NodeChild(const Page& p, size_t i) {
  // child i is right of key i; child "-1" is first_child.
  return GetU32(p, kHeader + i * kInternalEntry + 8);
}

void InitNode(Page* p, bool leaf) {
  p->bytes.fill(0);
  PutU16(p, 0, leaf ? 0 : 1);
  PutU16(p, 2, 0);
  PutU32(p, 4, kInvalidPage);
  PutU32(p, 8, kInvalidPage);
}

/// First index in the leaf with key >= `key`.
size_t LeafLowerBound(const Page& p, int64_t key) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Insert descent: the child right of the last key <= key (new duplicates
/// append after existing ones).
PageId DescendChild(const Page& p, int64_t key) {
  size_t n = Count(p);
  size_t lo = 0, hi = n;
  while (lo < hi) {  // first key > key
    size_t mid = (lo + hi) / 2;
    if (NodeKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? GetU32(p, 8) : NodeChild(p, lo - 1);
}

/// Search descent: the child LEFT of the first key >= key. On separator
/// equality this lands on the leftmost leaf that can hold duplicates of
/// `key`; the leaf chain covers the rest.
PageId DescendChildLeftmost(const Page& p, int64_t key) {
  size_t n = Count(p);
  size_t lo = 0, hi = n;
  while (lo < hi) {  // first key >= key
    size_t mid = (lo + hi) / 2;
    if (NodeKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? GetU32(p, 8) : NodeChild(p, lo - 1);
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferManager* buffer,
                                    DiskComponent* disk) {
  PageId root = disk->Allocate();
  DBM_ASSIGN_OR_RETURN(Page * page, buffer->GetFreshPage(root));
  InitNode(page, /*leaf=*/true);
  DBM_RETURN_NOT_OK(buffer->Unpin(root, /*dirty=*/true));
  return BPlusTree(buffer, disk, root);
}

Result<BPlusTree::SplitResult> BPlusTree::InsertInto(PageId node_id,
                                                     int64_t key,
                                                     uint64_t value) {
  DBM_ASSIGN_OR_RETURN(Page * node, buffer_->GetPage(node_id));
  SplitResult out;

  if (IsLeaf(*node)) {
    size_t n = Count(*node);
    // Insert after existing duplicates (stable for Search order).
    size_t pos = LeafLowerBound(*node, key);
    while (pos < n && LeafKey(*node, pos) == key) ++pos;
    std::memmove(node->bytes.data() + kHeader + (pos + 1) * kLeafEntry,
                 node->bytes.data() + kHeader + pos * kLeafEntry,
                 (n - pos) * kLeafEntry);
    PutI64(node, kHeader + pos * kLeafEntry, key);
    PutU64(node, kHeader + pos * kLeafEntry + 8, value);
    PutU16(node, 2, static_cast<uint16_t>(n + 1));
    n += 1;

    if (n > kLeafCapacity - 1) {
      // Split: move the upper half to a new right sibling.
      PageId right_id = disk_->Allocate();
      auto right_res = buffer_->GetFreshPage(right_id);
      if (!right_res.ok()) {
        (void)buffer_->Unpin(node_id, true);
        return right_res.status();
      }
      Page* right = *right_res;
      InitNode(right, /*leaf=*/true);
      size_t keep = n / 2;
      size_t moved = n - keep;
      std::memcpy(right->bytes.data() + kHeader,
                  node->bytes.data() + kHeader + keep * kLeafEntry,
                  moved * kLeafEntry);
      PutU16(right, 2, static_cast<uint16_t>(moved));
      PutU32(right, 4, GetU32(*node, 4));  // chain: right takes old next
      PutU16(node, 2, static_cast<uint16_t>(keep));
      PutU32(node, 4, right_id);
      out.split = true;
      out.sep_key = LeafKey(*right, 0);
      out.right = right_id;
      DBM_RETURN_NOT_OK(buffer_->Unpin(right_id, true));
    }
    DBM_RETURN_NOT_OK(buffer_->Unpin(node_id, true));
    return out;
  }

  // Internal: descend, then absorb a child split if one happened.
  PageId child = DescendChild(*node, key);
  DBM_RETURN_NOT_OK(buffer_->Unpin(node_id, false));
  DBM_ASSIGN_OR_RETURN(SplitResult child_split,
                       InsertInto(child, key, value));
  if (!child_split.split) return out;

  DBM_ASSIGN_OR_RETURN(node, buffer_->GetPage(node_id));
  size_t n = Count(*node);
  // Position of the new separator: first key > sep_key.
  size_t pos = 0;
  while (pos < n && NodeKey(*node, pos) <= child_split.sep_key) ++pos;
  std::memmove(node->bytes.data() + kHeader + (pos + 1) * kInternalEntry,
               node->bytes.data() + kHeader + pos * kInternalEntry,
               (n - pos) * kInternalEntry);
  PutI64(node, kHeader + pos * kInternalEntry, child_split.sep_key);
  PutU32(node, kHeader + pos * kInternalEntry + 8, child_split.right);
  PutU16(node, 2, static_cast<uint16_t>(n + 1));
  n += 1;

  if (n > kInternalCapacity - 1) {
    PageId right_id = disk_->Allocate();
    auto right_res = buffer_->GetFreshPage(right_id);
    if (!right_res.ok()) {
      (void)buffer_->Unpin(node_id, true);
      return right_res.status();
    }
    Page* right = *right_res;
    InitNode(right, /*leaf=*/false);
    size_t mid = n / 2;  // key at mid moves UP
    int64_t up_key = NodeKey(*node, mid);
    // Right sibling: keys after mid; its first_child = child right of mid.
    size_t moved = n - mid - 1;
    PutU32(right, 8, NodeChild(*node, mid));
    std::memcpy(right->bytes.data() + kHeader,
                node->bytes.data() + kHeader + (mid + 1) * kInternalEntry,
                moved * kInternalEntry);
    PutU16(right, 2, static_cast<uint16_t>(moved));
    PutU16(node, 2, static_cast<uint16_t>(mid));
    out.split = true;
    out.sep_key = up_key;
    out.right = right_id;
    DBM_RETURN_NOT_OK(buffer_->Unpin(right_id, true));
  }
  DBM_RETURN_NOT_OK(buffer_->Unpin(node_id, true));
  return out;
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  DBM_ASSIGN_OR_RETURN(SplitResult split, InsertInto(root_, key, value));
  if (split.split) {
    // Grow a new root.
    PageId new_root = disk_->Allocate();
    DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetFreshPage(new_root));
    InitNode(page, /*leaf=*/false);
    PutU32(page, 8, root_);  // first child = old root
    PutI64(page, kHeader, split.sep_key);
    PutU32(page, kHeader + 8, split.right);
    PutU16(page, 2, 1);
    DBM_RETURN_NOT_OK(buffer_->Unpin(new_root, true));
    root_ = new_root;
    ++height_;
  }
  ++entries_;
  return Status::OK();
}

Result<PageId> BPlusTree::FindLeaf(int64_t key) {
  PageId current = root_;
  while (true) {
    DBM_ASSIGN_OR_RETURN(Page * node, buffer_->GetPage(current));
    if (IsLeaf(*node)) {
      DBM_RETURN_NOT_OK(buffer_->Unpin(current, false));
      return current;
    }
    PageId next = DescendChildLeftmost(*node, key);
    DBM_RETURN_NOT_OK(buffer_->Unpin(current, false));
    current = next;
  }
}

Result<std::vector<uint64_t>> BPlusTree::Search(int64_t key) {
  std::vector<uint64_t> out;
  DBM_RETURN_NOT_OK(Scan(key, key, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  }));
  return out;
}

Status BPlusTree::Scan(int64_t lo, int64_t hi,
                       const std::function<bool(int64_t, uint64_t)>& visitor) {
  DBM_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo));
  while (leaf_id != kInvalidPage) {
    DBM_ASSIGN_OR_RETURN(Page * leaf, buffer_->GetPage(leaf_id));
    size_t n = Count(*leaf);
    size_t i = LeafLowerBound(*leaf, lo);
    bool stop = false;
    for (; i < n && !stop; ++i) {
      int64_t k = LeafKey(*leaf, i);
      if (k > hi) {
        stop = true;
        break;
      }
      if (!visitor(k, LeafValue(*leaf, i))) stop = true;
    }
    PageId next = GetU32(*leaf, 4);
    bool exhausted = n > 0 && LeafKey(*leaf, n - 1) > hi;
    DBM_RETURN_NOT_OK(buffer_->Unpin(leaf_id, false));
    if (stop || exhausted) break;
    leaf_id = next;
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() {
  // Walk every leaf via the chain from the leftmost leaf; verify global
  // key ordering and per-node counts.
  DBM_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(INT64_MIN));
  int64_t prev = INT64_MIN;
  uint64_t seen = 0;
  while (leaf_id != kInvalidPage) {
    DBM_ASSIGN_OR_RETURN(Page * leaf, buffer_->GetPage(leaf_id));
    if (!IsLeaf(*leaf)) {
      (void)buffer_->Unpin(leaf_id, false);
      return Status::Internal("leaf chain reached an internal node");
    }
    size_t n = Count(*leaf);
    if (n > kLeafCapacity) {
      (void)buffer_->Unpin(leaf_id, false);
      return Status::Internal("leaf over capacity");
    }
    for (size_t i = 0; i < n; ++i) {
      int64_t k = LeafKey(*leaf, i);
      if (k < prev) {
        (void)buffer_->Unpin(leaf_id, false);
        return Status::Internal("keys out of order in leaf chain");
      }
      prev = k;
      ++seen;
    }
    PageId next = GetU32(*leaf, 4);
    DBM_RETURN_NOT_OK(buffer_->Unpin(leaf_id, false));
    leaf_id = next;
  }
  if (seen != entries_) {
    return Status::Internal("leaf chain entry count mismatch");
  }
  return Status::OK();
}

}  // namespace dbm::storage
