#include "storage/durable_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/crc32.h"
#include "fault/injector.h"
#include "fault/log.h"
#include "fault/recovery.h"
#include "obs/tracectx.h"

namespace dbm::storage {

namespace {

/// CRC over (page_id, lsn, body) — the slot minus its own checksum.
uint32_t SlotCrc(const uint8_t* slot) {
  return Crc32(slot + 4, kPageSlotBytes - 4);
}

void EncodeSlot(PageId id, uint64_t lsn, const uint8_t* body,
                uint8_t* slot) {
  for (int i = 0; i < 4; ++i) {
    slot[4 + i] = static_cast<uint8_t>((id >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    slot[8 + i] = static_cast<uint8_t>((lsn >> (8 * i)) & 0xff);
  }
  std::memcpy(slot + kPageSlotHeaderBytes, body, kPageSize);
  uint32_t crc = SlotCrc(slot);
  for (int i = 0; i < 4; ++i) {
    slot[i] = static_cast<uint8_t>((crc >> (8 * i)) & 0xff);
  }
}

/// Returns false on CRC mismatch. On success fills *id and *lsn.
bool DecodeSlot(const uint8_t* slot, PageId* id, uint64_t* lsn) {
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(slot[i]) << (8 * i);
  }
  if (crc != SlotCrc(slot)) return false;
  PageId pid = 0;
  for (int i = 0; i < 4; ++i) {
    pid |= static_cast<PageId>(slot[4 + i]) << (8 * i);
  }
  uint64_t l = 0;
  for (int i = 0; i < 8; ++i) {
    l |= static_cast<uint64_t>(slot[8 + i]) << (8 * i);
  }
  *id = pid;
  *lsn = l;
  return true;
}

void EncodePageFileHeader(uint8_t* out) {
  std::memcpy(out, kPageFileMagic, sizeof(kPageFileMagic));
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<uint8_t>((kPageFileVersion >> (8 * i)) & 0xff);
  }
  uint32_t page_size = static_cast<uint32_t>(kPageSize);
  for (int i = 0; i < 4; ++i) {
    out[12 + i] = static_cast<uint8_t>((page_size >> (8 * i)) & 0xff);
  }
}

bool CheckPageFileHeader(const uint8_t* data, size_t n) {
  if (n < kPageFileHeaderBytes) return false;
  if (std::memcmp(data, kPageFileMagic, sizeof(kPageFileMagic)) != 0) {
    return false;
  }
  uint32_t version = 0, page_size = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(data[8 + i]) << (8 * i);
    page_size |= static_cast<uint32_t>(data[12 + i]) << (8 * i);
  }
  return version == kPageFileVersion && page_size == kPageSize;
}

}  // namespace

FileDiskComponent::FileDiskComponent(std::string name, std::string path,
                                     int fd, size_t pages)
    : DiskComponent(std::move(name)),
      path_(std::move(path)),
      fd_(fd),
      pages_(pages),
      write_point_(
          fault::Injector::Default().GetPoint("storage.disk.write")),
      m_reads_(&obs::Registry::Default().GetCounter("store.disk.reads")),
      m_writes_(&obs::Registry::Default().GetCounter("store.disk.writes")),
      m_fsyncs_(&obs::Registry::Default().GetCounter("store.disk.fsyncs")),
      m_crc_errors_(
          &obs::Registry::Default().GetCounter("store.disk.crc_errors")),
      m_pages_(&obs::Registry::Default().GetGauge("store.disk.pages")) {
  m_pages_->Set(static_cast<double>(pages_));
}

Result<std::unique_ptr<FileDiskComponent>> FileDiskComponent::Open(
    const std::string& path, std::string name) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open page file '" + path + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Unavailable("cannot stat page file '" + path + "'");
  }
  size_t pages = 0;
  if (st.st_size == 0) {
    uint8_t header[kPageFileHeaderBytes];
    EncodePageFileHeader(header);
    if (::pwrite(fd, header, sizeof(header), 0) !=
        static_cast<ssize_t>(sizeof(header))) {
      ::close(fd);
      return Status::IoError("cannot write page file header to '" + path +
                             "'");
    }
  } else {
    uint8_t header[kPageFileHeaderBytes];
    ssize_t n = ::pread(fd, header, sizeof(header), 0);
    if (n != static_cast<ssize_t>(sizeof(header)) ||
        !CheckPageFileHeader(header, sizeof(header))) {
      ::close(fd);
      return Status::DataLoss("'" + path +
                              "' is not a DBMPAGE1 page file");
    }
    // A crash mid-Allocate or mid-Write can leave a ragged final slot;
    // count only whole slots — the ragged bytes are a torn slot that
    // Read reports as DataLoss and Recover repairs from the WAL.
    pages = static_cast<size_t>(st.st_size - kPageFileHeaderBytes) /
            kPageSlotBytes;
  }
  return std::unique_ptr<FileDiskComponent>(
      new FileDiskComponent(std::move(name), path, fd, pages));
}

FileDiskComponent::~FileDiskComponent() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!dead_) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

PageId FileDiskComponent::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || fd_ < 0) return kInvalidPage;
  // Sparse allocation: the slot is not materialised until its first
  // Write extends the file (pwrite past EOF). An allocated-but-never-
  // written page therefore does not survive restart — page_count is
  // rebuilt from the file size, which is exactly the clean-prefix rule
  // recovery already enforces — and reading one back before any write
  // reports DataLoss like any other unmaterialised slot. Callers go
  // through BufferManager::GetFreshPage, which never issues that read.
  PageId id = static_cast<PageId>(pages_);
  ++pages_;
  m_pages_->Set(static_cast<double>(pages_));
  return id;
}

Status FileDiskComponent::Read(PageId id, Page* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_ || fd_ < 0) {
      return Status::Unavailable("page file is dead (crash fault)");
    }
    if (id >= pages_) {
      return Status::NotFound("disk read of unallocated page " +
                              std::to_string(id));
    }
  }
  uint8_t slot[kPageSlotBytes];
  ssize_t n = ::pread(fd_, slot, sizeof(slot), SlotOffset(id));
  if (n != static_cast<ssize_t>(sizeof(slot))) {
    m_crc_errors_->Add(1);
    return Status::DataLoss("torn slot for page " + std::to_string(id) +
                            " in '" + path_ + "'");
  }
  PageId stored_id = 0;
  uint64_t lsn = 0;
  if (!DecodeSlot(slot, &stored_id, &lsn) || stored_id != id) {
    m_crc_errors_->Add(1);
    return Status::DataLoss("CRC mismatch on page " + std::to_string(id) +
                            " in '" + path_ + "'");
  }
  out->id = id;
  std::memcpy(out->bytes.data(), slot + kPageSlotHeaderBytes, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  m_reads_->Add(1);
  return Status::OK();
}

Status FileDiskComponent::Write(PageId id, const Page& page, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || fd_ < 0) {
    return Status::Unavailable("page file is dead (crash fault)");
  }
  if (id >= pages_) {
    return Status::NotFound("disk write of unallocated page " +
                            std::to_string(id));
  }
  uint8_t slot[kPageSlotBytes];
  EncodeSlot(id, lsn, page.bytes.data(), slot);
  if (write_point_->armed()) {
    fault::Decision verdict = write_point_->Decide();
    if (verdict.crash) {
      // Act the crash out: half a slot lands on disk — a torn page whose
      // CRC cannot verify — then the disk dies. Recovery must repair the
      // slot from the WAL image (durable first, by the
      // WAL-before-writeback invariant).
      (void)!::pwrite(fd_, slot, sizeof(slot) / 2, SlotOffset(id));
      dead_ = true;
      fault::Record(fault::FaultEventKind::kInjected, "storage.disk.write",
                    "crash mid-writeback: torn slot for page " +
                        std::to_string(id) + " in " + path_,
                    0);
      return Status::Unavailable(
          "page file is dead (injected crash mid-writeback)");
    }
    if (verdict.error) {
      // A failed writeback leaves the slot untouched; the frame stays
      // dirty and the caller may retry.
      return Status::IoError("injected disk write error on page " +
                             std::to_string(id));
    }
  }
  if (::pwrite(fd_, slot, sizeof(slot), SlotOffset(id)) !=
      static_cast<ssize_t>(sizeof(slot))) {
    dead_ = true;
    return Status::Unavailable("short write to page file '" + path_ + "'");
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  m_writes_->Add(1);
  return Status::OK();
}

size_t FileDiskComponent::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_;
}

uint64_t FileDiskComponent::PageLsn(PageId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0 || id >= pages_) return 0;
  }
  uint8_t slot[kPageSlotBytes];
  if (::pread(fd_, slot, sizeof(slot), SlotOffset(id)) !=
      static_cast<ssize_t>(sizeof(slot))) {
    return 0;
  }
  PageId stored_id = 0;
  uint64_t lsn = 0;
  if (!DecodeSlot(slot, &stored_id, &lsn) || stored_id != id) return 0;
  return lsn;
}

Status FileDiskComponent::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || fd_ < 0) {
    return Status::Unavailable("page file is dead (crash fault)");
  }
  if (::fsync(fd_) != 0) {
    // A failed fsync may have dropped the dirty pages and cannot be
    // retried; reporting the barrier as passed would let checkpoint
    // truncation unlink the only durable images of what was lost.
    dead_ = true;
    return Status::IoError("fsync failed on page file '" + path_ + "'");
  }
  m_fsyncs_->Add(1);
  return Status::OK();
}

bool FileDiskComponent::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Result<RecoveryReport> Recover(FileDiskComponent* disk,
                               const std::string& wal_dir,
                               fault::StateManager* state) {
  obs::SpanScope span("wal.recover", "storage");
  RecoveryReport report;
  Status replay_status = Status::OK();
  WalScanReport scan;
  DBM_RETURN_NOT_OK(ScanWal(
      wal_dir,
      [&](const WalRecord& rec, const std::string&) {
        ++report.frames_scanned;
        if (rec.type == WalRecordType::kCheckpoint) {
          ++report.checkpoints;
          report.redo_lsn = rec.redo_lsn;
          return true;
        }
        // Make sure the slot exists: a crash before the first writeback
        // leaves the page file shorter than the WAL's horizon.
        while (disk->page_count() <= rec.page) {
          if (disk->Allocate() == kInvalidPage) {
            replay_status = Status::Unavailable(
                "cannot extend page file during recovery");
            return false;
          }
        }
        // Exactly-once by LSN comparison: a slot already carrying this
        // image (or a newer one) is skipped, so double recovery is a
        // no-op. A torn slot reports LSN 0 and is always repaired.
        if (rec.lsn <= disk->PageLsn(rec.page)) {
          ++report.pages_skipped;
          return true;
        }
        Page page;
        page.id = rec.page;
        std::memcpy(page.bytes.data(), rec.image.data(), kPageSize);
        replay_status = disk->Write(rec.page, page, rec.lsn);
        if (!replay_status.ok()) return false;
        ++report.pages_replayed;
        return true;
      },
      &scan));
  DBM_RETURN_NOT_OK(replay_status);
  report.truncated = scan.truncated;
  report.torn_tail_bytes = scan.torn_tail_bytes;
  report.max_lsn = scan.max_lsn;
  if (report.redo_lsn == 0) report.redo_lsn = scan.redo_lsn;
  DBM_RETURN_NOT_OK(disk->Sync());

  obs::Registry::Default()
      .GetGauge("wal.recovery_pages")
      .Set(static_cast<double>(report.pages_replayed));
  obs::Registry::Default()
      .GetGauge("wal.torn_tail_bytes")
      .Set(static_cast<double>(report.torn_tail_bytes));
  obs::Registry::Default().GetCounter("wal.recoveries").Add(1);

  if (state != nullptr) {
    // The same safe-point discipline the streaming plane uses: position
    // is the highest trusted LSN; sequence never regresses across
    // repeated recoveries of the same directory.
    uint64_t sequence = 1;
    Result<fault::SafePoint> latest = state->Latest("wal.recovery");
    if (latest.ok()) sequence = latest->sequence + 1;
    fault::SafePoint sp;
    sp.sequence = sequence;
    sp.position = report.max_lsn;
    sp.state = "{\"pages_replayed\":" +
               std::to_string(report.pages_replayed) +
               ",\"torn_tail_bytes\":" +
               std::to_string(report.torn_tail_bytes) + "}";
    DBM_RETURN_NOT_OK(state->Checkpoint("wal.recovery", sp));
    state->CountReplay("wal.recovery");
    report.safe_point_sequence = sequence;
  }
  return report;
}

}  // namespace dbm::storage
