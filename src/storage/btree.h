// A page-based B+tree over the buffer manager.
//
// Keys are int64, values uint64 (row positions or packed record ids);
// duplicate keys are allowed. Leaves are chained for range scans.
// Insert-only (the workloads that need deletion rebuild, as the paper's
// data components republish versions). Every node is one 4 KiB page
// obtained through the getpage component, so index traffic exercises the
// same replacement machinery as heap traffic.
//
// Page layout (little-endian u16/u32/u64 fields):
//   [0]  u16  kind        0 = leaf, 1 = internal
//   [2]  u16  count       number of keys
//   [4]  u32  next        leaf chain (kInvalidPage when none / internal)
//   [8]  u32  first_child internal only: child left of the first key
//   [12.. ]   entries     leaf:     (i64 key, u64 value)  16 B each
//                         internal: (i64 key, u32 child)  12 B each

#ifndef DBM_STORAGE_BTREE_H_
#define DBM_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer.h"

namespace dbm::storage {

class BPlusTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  static Result<BPlusTree> Create(BufferManager* buffer,
                                  DiskComponent* disk);

  /// Inserts key → value (duplicates allowed).
  Status Insert(int64_t key, uint64_t value);

  /// All values for `key`, in insertion order.
  Result<std::vector<uint64_t>> Search(int64_t key);

  /// Visits every (key, value) with lo <= key <= hi in key order; the
  /// visitor returns false to stop early.
  Status Scan(int64_t lo, int64_t hi,
              const std::function<bool(int64_t, uint64_t)>& visitor);

  uint64_t size() const { return entries_; }
  uint32_t height() const { return height_; }
  PageId root() const { return root_; }

  /// Structural invariants: key ordering within and across nodes, counts
  /// within capacity, leaf chain consistency. For property tests.
  Status CheckInvariants();

 private:
  BPlusTree(BufferManager* buffer, DiskComponent* disk, PageId root)
      : buffer_(buffer), disk_(disk), root_(root) {}

  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;   // first key of the new right sibling
    PageId right = kInvalidPage;
  };

  Result<SplitResult> InsertInto(PageId node, int64_t key, uint64_t value);
  Result<PageId> FindLeaf(int64_t key);

  BufferManager* buffer_;
  DiskComponent* disk_;
  PageId root_;
  uint64_t entries_ = 0;
  uint32_t height_ = 1;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_BTREE_H_
