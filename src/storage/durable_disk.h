// File-backed pages and exactly-once crash recovery.
//
// FileDiskComponent persists pages to one segment file:
//
//   [8B magic "DBMPAGE1"][u32 version][u32 page size]     16-byte header
//   slot 0: [u32 crc][u32 page_id][u64 lsn][4096 bytes]   4112 bytes
//   slot 1: ...
//
// The per-slot CRC covers (page_id, lsn, body), so a torn or bit-flipped
// slot is detected on read — Status::DataLoss, never garbage rows. The
// per-slot LSN is the WAL sequence number of the image last written
// there; recovery replays a WAL record onto a slot only when the
// record's LSN is newer (`rec.lsn > PageLsn(page)`), which makes replay
// idempotent: running recovery twice changes nothing. A torn slot
// reports LSN 0 and is therefore always repaired from the WAL — safe,
// because the WAL-before-writeback invariant guarantees the image was
// durable in the log before the slot write began.
//
// Recover() unifies the data plane with the fault/recovery safe-point
// machinery (ROBUSTNESS.md): it scans the WAL with the torn-tail rule,
// replays trusted page images in LSN order, fsyncs the page file, and
// records a "wal.recovery" safe point whose position is the highest
// replayed LSN.

#ifndef DBM_STORAGE_DURABLE_DISK_H_
#define DBM_STORAGE_DURABLE_DISK_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace dbm::fault {
class Point;
class StateManager;
}  // namespace dbm::fault

namespace dbm::storage {

inline constexpr char kPageFileMagic[8] = {'D', 'B', 'M', 'P',
                                           'A', 'G', 'E', '1'};
inline constexpr uint32_t kPageFileVersion = 1;
inline constexpr size_t kPageFileHeaderBytes = 16;
/// Slot = u32 crc + u32 page_id + u64 lsn + body.
inline constexpr size_t kPageSlotHeaderBytes = 16;
inline constexpr size_t kPageSlotBytes = kPageSlotHeaderBytes + kPageSize;

/// A DiskComponent whose pages live in a file. Substitutes for the
/// in-memory disk anywhere a `Require<DiskComponent>("disk")` port
/// resolves. Read/Write of distinct pages may run concurrently
/// (pread/pwrite at disjoint offsets); Allocate follows the
/// load-then-scan discipline of the base class.
class FileDiskComponent : public DiskComponent {
 public:
  /// Opens (creating if absent) the page file at `path`. An existing
  /// file must carry a valid header; its slot count becomes
  /// page_count(). Slot CRCs are NOT verified here — a latent torn slot
  /// surfaces as DataLoss on first read, or is silently repaired by
  /// Recover() first.
  static Result<std::unique_ptr<FileDiskComponent>> Open(
      const std::string& path, std::string name = "disk");
  ~FileDiskComponent() override;

  /// Reserves the next page id without touching the file: the slot
  /// materialises when its first Write extends the file, so an
  /// allocated-but-never-written page does not survive restart (the
  /// clean-prefix rule) and reads as DataLoss until written. Returns
  /// kInvalidPage when the disk is dead (injected crash).
  PageId Allocate() override;

  /// Reads and CRC-verifies a slot. A mismatch is Status::DataLoss —
  /// the bytes are provably gone; retrying re-reads the same corrupt
  /// sector.
  Status Read(PageId id, Page* out) override;

  /// Writes a slot (CRC recomputed, `lsn` persisted). Consults the
  /// `storage.disk.write` fault point: error → IoError with nothing
  /// written; crash → half a slot hits the file and the disk dies (the
  /// torn-slot shape recovery must repair from the WAL).
  Status Write(PageId id, const Page& page, uint64_t lsn = 0) override;

  size_t page_count() const override;

  /// The slot's stored LSN, or 0 when the slot is unreadable (out of
  /// range, I/O error, CRC mismatch) — so `rec.lsn > PageLsn(id)` is
  /// exactly the "replay needed" predicate.
  uint64_t PageLsn(PageId id);

  /// fsync the page file. On failure the disk dies: the dropped dirty
  /// pages cannot be re-synced, and pretending the barrier passed would
  /// let checkpoint truncation unlink the WAL images that could repair
  /// them.
  Status Sync() override;

  bool dead() const;
  const std::string& path() const { return path_; }

 private:
  FileDiskComponent(std::string name, std::string path, int fd,
                    size_t pages);

  static off_t SlotOffset(PageId id) {
    return static_cast<off_t>(kPageFileHeaderBytes) +
           static_cast<off_t>(id) * static_cast<off_t>(kPageSlotBytes);
  }

  std::string path_;
  mutable std::mutex mu_;  // guards fd_ lifecycle, pages_, dead_
  int fd_ = -1;
  size_t pages_ = 0;
  bool dead_ = false;

  fault::Point* write_point_;

  obs::Counter* m_reads_;
  obs::Counter* m_writes_;
  obs::Counter* m_fsyncs_;
  obs::Counter* m_crc_errors_;
  obs::Gauge* m_pages_;
};

/// What recovery did (also the shape tools/wal_dump prints).
struct RecoveryReport {
  uint64_t frames_scanned = 0;
  uint64_t pages_replayed = 0;   // WAL image newer than the slot
  uint64_t pages_skipped = 0;    // slot already current (idempotence)
  uint64_t checkpoints = 0;
  bool truncated = false;        // the scan hit a torn tail
  uint64_t torn_tail_bytes = 0;
  Lsn max_lsn = 0;               // highest trusted LSN replayed/seen
  Lsn redo_lsn = 0;              // from the last checkpoint frame
  uint64_t safe_point_sequence = 0;  // recorded under "wal.recovery"
};

/// Replays the trusted WAL prefix under `wal_dir` onto `disk`:
/// exactly-once by LSN comparison, torn slots repaired, page file
/// fsynced at the end. When `state` is given, records a "wal.recovery"
/// safe point (position = highest trusted LSN) and counts a replay —
/// the same StateManager discipline the streaming plane uses.
Result<RecoveryReport> Recover(FileDiskComponent* disk,
                               const std::string& wal_dir,
                               fault::StateManager* state = nullptr);

}  // namespace dbm::storage

#endif  // DBM_STORAGE_DURABLE_DISK_H_
