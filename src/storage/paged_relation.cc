#include "storage/paged_relation.h"

#include <cstring>

namespace dbm::storage {

using data::Tuple;
using data::Value;
using data::ValueType;

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

}  // namespace

std::vector<uint8_t> EncodeTuple(const Tuple& tuple) {
  std::vector<uint8_t> out;
  for (const Value& v : tuple.values) {
    out.push_back(static_cast<uint8_t>(data::TypeOf(v)));
    switch (data::TypeOf(v)) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        PutU64(&out, static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        double d = std::get<double>(v);
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(&out, bits);
        break;
      }
      case ValueType::kString: {
        const std::string& s = std::get<std::string>(v);
        PutU32(&out, static_cast<uint32_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
        break;
      }
    }
  }
  return out;
}

Result<Tuple> DecodeTuple(const std::vector<uint8_t>& bytes, size_t arity) {
  Tuple tuple;
  size_t pos = 0;
  auto u32 = [&]() -> Result<uint32_t> {
    if (pos + 4 > bytes.size()) return Status::IoError("truncated u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  };
  auto u64 = [&]() -> Result<uint64_t> {
    if (pos + 8 > bytes.size()) return Status::IoError("truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  };
  for (size_t c = 0; c < arity; ++c) {
    if (pos >= bytes.size()) return Status::IoError("truncated tuple");
    auto type = static_cast<ValueType>(bytes[pos++]);
    switch (type) {
      case ValueType::kNull:
        tuple.values.emplace_back();
        break;
      case ValueType::kInt: {
        DBM_ASSIGN_OR_RETURN(uint64_t bits, u64());
        tuple.values.emplace_back(static_cast<int64_t>(bits));
        break;
      }
      case ValueType::kDouble: {
        DBM_ASSIGN_OR_RETURN(uint64_t bits, u64());
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        tuple.values.emplace_back(d);
        break;
      }
      case ValueType::kString: {
        DBM_ASSIGN_OR_RETURN(uint32_t len, u32());
        if (pos + len > bytes.size()) {
          return Status::IoError("truncated string value");
        }
        tuple.values.emplace_back(
            std::string(bytes.begin() + static_cast<long>(pos),
                        bytes.begin() + static_cast<long>(pos + len)));
        pos += len;
        break;
      }
    }
  }
  if (pos != bytes.size()) {
    return Status::IoError("trailing bytes after tuple");
  }
  return tuple;
}

Result<std::unique_ptr<PagedRelation>> PagedRelation::Load(
    const data::Relation& rel, BufferManager* buffer, DiskComponent* disk) {
  auto file = std::make_unique<RecordFile>(buffer, disk);
  auto paged = std::unique_ptr<PagedRelation>(
      new PagedRelation(rel.name(), rel.schema(), std::move(file)));
  for (const Tuple& row : rel.rows()) {
    DBM_RETURN_NOT_OK(paged->Append(row));
  }
  return paged;
}

Result<std::unique_ptr<PagedRelation>> PagedRelation::Recover(
    std::string name, data::Schema schema, BufferManager* buffer,
    DiskComponent* disk) {
  auto file = std::make_unique<RecordFile>(buffer, disk);
  DBM_RETURN_NOT_OK(file->Attach());
  return std::unique_ptr<PagedRelation>(new PagedRelation(
      std::move(name), std::move(schema), std::move(file)));
}

Status PagedRelation::Append(const Tuple& tuple) {
  DBM_RETURN_NOT_OK(data::CheckTuple(schema_, tuple));
  std::vector<uint8_t> rec = EncodeTuple(tuple);
  DBM_RETURN_NOT_OK(file_->Append(rec).status());
  return Status::OK();
}

Status PagedRelation::Scan(
    const std::function<bool(const Tuple&)>& visitor) const {
  Status decode_error;
  DBM_RETURN_NOT_OK(file_->Scan(
      [&](const RecordId&, const std::vector<uint8_t>& rec) {
        auto tuple = DecodeTuple(rec, schema_.size());
        if (!tuple.ok()) {
          decode_error = tuple.status();
          return false;
        }
        return visitor(*tuple);
      }));
  return decode_error;
}

Result<std::optional<data::Tuple>> PagedRelation::ReadAt(
    size_t page_ordinal, uint16_t slot) const {
  if (page_ordinal >= file_->pages().size()) {
    return std::optional<data::Tuple>{};
  }
  RecordId id{file_->pages()[page_ordinal], slot};
  auto rec = file_->Read(id);
  if (!rec.ok()) {
    if (rec.status().IsNotFound()) return std::optional<data::Tuple>{};
    return rec.status();
  }
  DBM_ASSIGN_OR_RETURN(data::Tuple tuple,
                       DecodeTuple(*rec, schema_.size()));
  return std::optional<data::Tuple>(std::move(tuple));
}

Result<data::Relation> PagedRelation::ToRelation() const {
  data::Relation rel(name_, schema_);
  DBM_RETURN_NOT_OK(Scan([&](const Tuple& t) {
    rel.InsertUnchecked(t);
    return true;
  }));
  return rel;
}

}  // namespace dbm::storage
