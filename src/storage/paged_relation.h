// Relations materialised onto buffer-managed pages.
//
// The in-memory Relation is the convenient form; PagedRelation is the
// same data living in a RecordFile, so scans exercise the getpage path —
// queries run against the fine-grained storage components rather than a
// vector. Tuples are encoded per-row with the same tagged-value format
// the Relation serialiser uses.

#ifndef DBM_STORAGE_PAGED_RELATION_H_
#define DBM_STORAGE_PAGED_RELATION_H_

#include <functional>
#include <memory>
#include <optional>

#include "data/relation.h"
#include "storage/record_file.h"

namespace dbm::storage {

/// Encodes one tuple (schema-less tagged values).
std::vector<uint8_t> EncodeTuple(const data::Tuple& tuple);
/// Decodes a tuple with `arity` values.
Result<data::Tuple> DecodeTuple(const std::vector<uint8_t>& bytes,
                                size_t arity);

class PagedRelation {
 public:
  /// Bulk-loads `rel` into a fresh record file over `buffer`/`disk`.
  static Result<std::unique_ptr<PagedRelation>> Load(
      const data::Relation& rel, BufferManager* buffer,
      DiskComponent* disk);

  /// Re-attaches to a relation already persisted on `disk` — the
  /// restart path, after storage::Recover() has replayed the WAL onto
  /// the page file. Rebuilds the page list and row count from the
  /// on-disk clean prefix; `name`/`schema` come from the caller (the
  /// catalog, in a full system).
  static Result<std::unique_ptr<PagedRelation>> Recover(
      std::string name, data::Schema schema, BufferManager* buffer,
      DiskComponent* disk);

  const std::string& name() const { return name_; }
  const data::Schema& schema() const { return schema_; }
  size_t rows() const { return file_->record_count(); }
  size_t pages() const { return file_->pages().size(); }

  /// Appends one (type-checked) tuple.
  Status Append(const data::Tuple& tuple);

  /// Visits every tuple in order; visitor returns false to stop.
  Status Scan(const std::function<bool(const data::Tuple&)>& visitor) const;

  /// Cursor read for pull-based operators: the tuple at (page ordinal,
  /// slot), or nullopt when the slot is past the page's record count
  /// (advance to the next page). Errors on malformed data only.
  Result<std::optional<data::Tuple>> ReadAt(size_t page_ordinal,
                                            uint16_t slot) const;

  /// Materialises back into an in-memory Relation.
  Result<data::Relation> ToRelation() const;

 private:
  PagedRelation(std::string name, data::Schema schema,
                std::unique_ptr<RecordFile> file)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        file_(std::move(file)) {}

  std::string name_;
  data::Schema schema_;
  std::unique_ptr<RecordFile> file_;
};

}  // namespace dbm::storage

#endif  // DBM_STORAGE_PAGED_RELATION_H_
