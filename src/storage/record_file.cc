#include "storage/record_file.h"

#include <cstring>

namespace dbm::storage {

namespace {

uint16_t GetU16(const Page& page, size_t off) {
  return static_cast<uint16_t>(page.bytes[off] |
                               (page.bytes[off + 1] << 8));
}
void PutU16(Page* page, size_t off, uint16_t v) {
  page->bytes[off] = static_cast<uint8_t>(v & 0xFF);
  page->bytes[off + 1] = static_cast<uint8_t>(v >> 8);
}

constexpr size_t kHeader = 4;  // count + free offset

}  // namespace

Result<RecordId> RecordFile::Append(const std::vector<uint8_t>& record) {
  if (record.size() > kMaxRecord) {
    return Status::InvalidArgument("record too large for a page");
  }
  const size_t need = 2 + record.size();

  PageId target = kInvalidPage;
  if (!pages_.empty()) {
    PageId tail = pages_.back();
    DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetPage(tail));
    uint16_t free_off = GetU16(*page, 2);
    bool fits = free_off + need <= kPageSize;
    DBM_RETURN_NOT_OK(buffer_->Unpin(tail, false));
    if (fits) target = tail;
  }
  if (target == kInvalidPage) {
    target = disk_->Allocate();
    DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetFreshPage(target));
    PutU16(page, 0, 0);
    PutU16(page, 2, kHeader);
    DBM_RETURN_NOT_OK(buffer_->Unpin(target, true));
    pages_.push_back(target);
  }

  DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetPage(target));
  uint16_t count = GetU16(*page, 0);
  uint16_t free_off = GetU16(*page, 2);
  PutU16(page, free_off, static_cast<uint16_t>(record.size()));
  std::memcpy(page->bytes.data() + free_off + 2, record.data(),
              record.size());
  PutU16(page, 0, static_cast<uint16_t>(count + 1));
  PutU16(page, 2, static_cast<uint16_t>(free_off + need));
  DBM_RETURN_NOT_OK(buffer_->Unpin(target, true));
  ++record_count_;
  return RecordId{target, count};
}

Status RecordFile::Attach() {
  pages_.clear();
  record_count_ = 0;
  for (PageId pid = 0; pid < disk_->page_count(); ++pid) {
    Result<Page*> page = buffer_->GetPage(pid);
    if (!page.ok()) {
      // A torn slot (DataLoss) past the prefix ends the relation — the
      // torn-tail rule again. Anything else is a real failure.
      if (page.status().IsDataLoss()) break;
      return page.status();
    }
    uint16_t count = GetU16(**page, 0);
    uint16_t free_off = GetU16(**page, 2);
    // Validate the slot directory: lengths must chain exactly to
    // free_offset. A freshly allocated page a crash left empty
    // (count == 0) ends the prefix, as does a malformed directory.
    bool valid = count > 0 && free_off >= kHeader && free_off <= kPageSize;
    if (valid) {
      size_t off = kHeader;
      for (uint16_t s = 0; s < count; ++s) {
        if (off + 2 > free_off) {
          valid = false;
          break;
        }
        off += 2 + GetU16(**page, off);
      }
      if (off != free_off) valid = false;
    }
    DBM_RETURN_NOT_OK(buffer_->Unpin(pid, false));
    if (!valid) break;
    pages_.push_back(pid);
    record_count_ += count;
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> RecordFile::Read(const RecordId& id) {
  DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetPage(id.page));
  uint16_t count = GetU16(*page, 0);
  if (id.slot >= count) {
    (void)buffer_->Unpin(id.page, false);
    return Status::NotFound("slot out of range");
  }
  size_t off = kHeader;
  for (uint16_t s = 0; s < id.slot; ++s) {
    off += 2 + GetU16(*page, off);
  }
  uint16_t len = GetU16(*page, off);
  std::vector<uint8_t> out(page->bytes.begin() + static_cast<long>(off + 2),
                           page->bytes.begin() +
                               static_cast<long>(off + 2 + len));
  DBM_RETURN_NOT_OK(buffer_->Unpin(id.page, false));
  return out;
}

Status RecordFile::Scan(
    const std::function<bool(const RecordId&, const std::vector<uint8_t>&)>&
        visitor) {
  for (PageId pid : pages_) {
    DBM_ASSIGN_OR_RETURN(Page * page, buffer_->GetPage(pid));
    uint16_t count = GetU16(*page, 0);
    size_t off = kHeader;
    bool stop = false;
    for (uint16_t s = 0; s < count && !stop; ++s) {
      uint16_t len = GetU16(*page, off);
      std::vector<uint8_t> rec(
          page->bytes.begin() + static_cast<long>(off + 2),
          page->bytes.begin() + static_cast<long>(off + 2 + len));
      stop = !visitor(RecordId{pid, s}, rec);
      off += 2 + len;
    }
    DBM_RETURN_NOT_OK(buffer_->Unpin(pid, false));
    if (stop) break;
  }
  return Status::OK();
}

}  // namespace dbm::storage
