
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/go_system.cc" "src/os/CMakeFiles/dbm_os.dir/go_system.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/go_system.cc.o.d"
  "/root/repo/src/os/interrupts.cc" "src/os/CMakeFiles/dbm_os.dir/interrupts.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/interrupts.cc.o.d"
  "/root/repo/src/os/ipc_models.cc" "src/os/CMakeFiles/dbm_os.dir/ipc_models.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/ipc_models.cc.o.d"
  "/root/repo/src/os/isa.cc" "src/os/CMakeFiles/dbm_os.dir/isa.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/isa.cc.o.d"
  "/root/repo/src/os/loader.cc" "src/os/CMakeFiles/dbm_os.dir/loader.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/loader.cc.o.d"
  "/root/repo/src/os/memory.cc" "src/os/CMakeFiles/dbm_os.dir/memory.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/memory.cc.o.d"
  "/root/repo/src/os/orb.cc" "src/os/CMakeFiles/dbm_os.dir/orb.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/orb.cc.o.d"
  "/root/repo/src/os/scanner.cc" "src/os/CMakeFiles/dbm_os.dir/scanner.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/scanner.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/dbm_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/scheduler.cc.o.d"
  "/root/repo/src/os/vcpu.cc" "src/os/CMakeFiles/dbm_os.dir/vcpu.cc.o" "gcc" "src/os/CMakeFiles/dbm_os.dir/vcpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
