file(REMOVE_RECURSE
  "CMakeFiles/dbm_os.dir/go_system.cc.o"
  "CMakeFiles/dbm_os.dir/go_system.cc.o.d"
  "CMakeFiles/dbm_os.dir/interrupts.cc.o"
  "CMakeFiles/dbm_os.dir/interrupts.cc.o.d"
  "CMakeFiles/dbm_os.dir/ipc_models.cc.o"
  "CMakeFiles/dbm_os.dir/ipc_models.cc.o.d"
  "CMakeFiles/dbm_os.dir/isa.cc.o"
  "CMakeFiles/dbm_os.dir/isa.cc.o.d"
  "CMakeFiles/dbm_os.dir/loader.cc.o"
  "CMakeFiles/dbm_os.dir/loader.cc.o.d"
  "CMakeFiles/dbm_os.dir/memory.cc.o"
  "CMakeFiles/dbm_os.dir/memory.cc.o.d"
  "CMakeFiles/dbm_os.dir/orb.cc.o"
  "CMakeFiles/dbm_os.dir/orb.cc.o.d"
  "CMakeFiles/dbm_os.dir/scanner.cc.o"
  "CMakeFiles/dbm_os.dir/scanner.cc.o.d"
  "CMakeFiles/dbm_os.dir/scheduler.cc.o"
  "CMakeFiles/dbm_os.dir/scheduler.cc.o.d"
  "CMakeFiles/dbm_os.dir/vcpu.cc.o"
  "CMakeFiles/dbm_os.dir/vcpu.cc.o.d"
  "libdbm_os.a"
  "libdbm_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
