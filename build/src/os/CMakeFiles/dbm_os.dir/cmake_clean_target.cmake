file(REMOVE_RECURSE
  "libdbm_os.a"
)
