# Empty compiler generated dependencies file for dbm_os.
# This may be replaced when dependencies are built.
