file(REMOVE_RECURSE
  "libdbm_core.a"
)
