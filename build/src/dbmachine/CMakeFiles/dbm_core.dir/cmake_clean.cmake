file(REMOVE_RECURSE
  "CMakeFiles/dbm_core.dir/machine.cc.o"
  "CMakeFiles/dbm_core.dir/machine.cc.o.d"
  "CMakeFiles/dbm_core.dir/scenarios.cc.o"
  "CMakeFiles/dbm_core.dir/scenarios.cc.o.d"
  "libdbm_core.a"
  "libdbm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
