# Empty compiler generated dependencies file for dbm_core.
# This may be replaced when dependencies are built.
