file(REMOVE_RECURSE
  "CMakeFiles/dbm_patia.dir/patia.cc.o"
  "CMakeFiles/dbm_patia.dir/patia.cc.o.d"
  "libdbm_patia.a"
  "libdbm_patia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_patia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
