# Empty dependencies file for dbm_patia.
# This may be replaced when dependencies are built.
