file(REMOVE_RECURSE
  "libdbm_patia.a"
)
