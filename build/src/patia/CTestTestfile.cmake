# CMake generated Testfile for 
# Source directory: /root/repo/src/patia
# Build directory: /root/repo/build/src/patia
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
