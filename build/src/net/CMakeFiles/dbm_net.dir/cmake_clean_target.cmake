file(REMOVE_RECURSE
  "libdbm_net.a"
)
