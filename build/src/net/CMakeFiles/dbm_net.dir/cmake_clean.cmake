file(REMOVE_RECURSE
  "CMakeFiles/dbm_net.dir/network.cc.o"
  "CMakeFiles/dbm_net.dir/network.cc.o.d"
  "CMakeFiles/dbm_net.dir/sensor_stream.cc.o"
  "CMakeFiles/dbm_net.dir/sensor_stream.cc.o.d"
  "libdbm_net.a"
  "libdbm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
