# Empty dependencies file for dbm_net.
# This may be replaced when dependencies are built.
