# Empty compiler generated dependencies file for dbm_data.
# This may be replaced when dependencies are built.
