
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/codec.cc" "src/data/CMakeFiles/dbm_data.dir/codec.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/codec.cc.o.d"
  "/root/repo/src/data/data_component.cc" "src/data/CMakeFiles/dbm_data.dir/data_component.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/data_component.cc.o.d"
  "/root/repo/src/data/object.cc" "src/data/CMakeFiles/dbm_data.dir/object.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/object.cc.o.d"
  "/root/repo/src/data/relation.cc" "src/data/CMakeFiles/dbm_data.dir/relation.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/relation.cc.o.d"
  "/root/repo/src/data/value.cc" "src/data/CMakeFiles/dbm_data.dir/value.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/value.cc.o.d"
  "/root/repo/src/data/version.cc" "src/data/CMakeFiles/dbm_data.dir/version.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/version.cc.o.d"
  "/root/repo/src/data/xml.cc" "src/data/CMakeFiles/dbm_data.dir/xml.cc.o" "gcc" "src/data/CMakeFiles/dbm_data.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dbm_component.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/dbm_adapt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
