file(REMOVE_RECURSE
  "CMakeFiles/dbm_data.dir/codec.cc.o"
  "CMakeFiles/dbm_data.dir/codec.cc.o.d"
  "CMakeFiles/dbm_data.dir/data_component.cc.o"
  "CMakeFiles/dbm_data.dir/data_component.cc.o.d"
  "CMakeFiles/dbm_data.dir/object.cc.o"
  "CMakeFiles/dbm_data.dir/object.cc.o.d"
  "CMakeFiles/dbm_data.dir/relation.cc.o"
  "CMakeFiles/dbm_data.dir/relation.cc.o.d"
  "CMakeFiles/dbm_data.dir/value.cc.o"
  "CMakeFiles/dbm_data.dir/value.cc.o.d"
  "CMakeFiles/dbm_data.dir/version.cc.o"
  "CMakeFiles/dbm_data.dir/version.cc.o.d"
  "CMakeFiles/dbm_data.dir/xml.cc.o"
  "CMakeFiles/dbm_data.dir/xml.cc.o.d"
  "libdbm_data.a"
  "libdbm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
