file(REMOVE_RECURSE
  "libdbm_data.a"
)
