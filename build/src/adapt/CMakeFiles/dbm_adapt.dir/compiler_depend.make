# Empty compiler generated dependencies file for dbm_adapt.
# This may be replaced when dependencies are built.
