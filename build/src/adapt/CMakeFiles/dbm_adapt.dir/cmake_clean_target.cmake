file(REMOVE_RECURSE
  "libdbm_adapt.a"
)
