file(REMOVE_RECURSE
  "CMakeFiles/dbm_adapt.dir/metrics.cc.o"
  "CMakeFiles/dbm_adapt.dir/metrics.cc.o.d"
  "CMakeFiles/dbm_adapt.dir/rules.cc.o"
  "CMakeFiles/dbm_adapt.dir/rules.cc.o.d"
  "CMakeFiles/dbm_adapt.dir/session.cc.o"
  "CMakeFiles/dbm_adapt.dir/session.cc.o.d"
  "libdbm_adapt.a"
  "libdbm_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
