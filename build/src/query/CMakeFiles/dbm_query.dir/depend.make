# Empty dependencies file for dbm_query.
# This may be replaced when dependencies are built.
