file(REMOVE_RECURSE
  "CMakeFiles/dbm_query.dir/aggregate.cc.o"
  "CMakeFiles/dbm_query.dir/aggregate.cc.o.d"
  "CMakeFiles/dbm_query.dir/eddy.cc.o"
  "CMakeFiles/dbm_query.dir/eddy.cc.o.d"
  "CMakeFiles/dbm_query.dir/executor.cc.o"
  "CMakeFiles/dbm_query.dir/executor.cc.o.d"
  "CMakeFiles/dbm_query.dir/expr.cc.o"
  "CMakeFiles/dbm_query.dir/expr.cc.o.d"
  "CMakeFiles/dbm_query.dir/index_join.cc.o"
  "CMakeFiles/dbm_query.dir/index_join.cc.o.d"
  "CMakeFiles/dbm_query.dir/join.cc.o"
  "CMakeFiles/dbm_query.dir/join.cc.o.d"
  "CMakeFiles/dbm_query.dir/multijoin.cc.o"
  "CMakeFiles/dbm_query.dir/multijoin.cc.o.d"
  "CMakeFiles/dbm_query.dir/optimizer.cc.o"
  "CMakeFiles/dbm_query.dir/optimizer.cc.o.d"
  "CMakeFiles/dbm_query.dir/ripple.cc.o"
  "CMakeFiles/dbm_query.dir/ripple.cc.o.d"
  "CMakeFiles/dbm_query.dir/spj_component.cc.o"
  "CMakeFiles/dbm_query.dir/spj_component.cc.o.d"
  "libdbm_query.a"
  "libdbm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
