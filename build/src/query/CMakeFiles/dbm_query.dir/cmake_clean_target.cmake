file(REMOVE_RECURSE
  "libdbm_query.a"
)
