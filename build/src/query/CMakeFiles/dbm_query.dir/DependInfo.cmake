
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/dbm_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/eddy.cc" "src/query/CMakeFiles/dbm_query.dir/eddy.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/eddy.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/dbm_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/executor.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/dbm_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/expr.cc.o.d"
  "/root/repo/src/query/index_join.cc" "src/query/CMakeFiles/dbm_query.dir/index_join.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/index_join.cc.o.d"
  "/root/repo/src/query/join.cc" "src/query/CMakeFiles/dbm_query.dir/join.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/join.cc.o.d"
  "/root/repo/src/query/multijoin.cc" "src/query/CMakeFiles/dbm_query.dir/multijoin.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/multijoin.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/query/CMakeFiles/dbm_query.dir/optimizer.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/optimizer.cc.o.d"
  "/root/repo/src/query/ripple.cc" "src/query/CMakeFiles/dbm_query.dir/ripple.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/ripple.cc.o.d"
  "/root/repo/src/query/spj_component.cc" "src/query/CMakeFiles/dbm_query.dir/spj_component.cc.o" "gcc" "src/query/CMakeFiles/dbm_query.dir/spj_component.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/dbm_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dbm_component.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
