file(REMOVE_RECURSE
  "CMakeFiles/dbm_common.dir/event_loop.cc.o"
  "CMakeFiles/dbm_common.dir/event_loop.cc.o.d"
  "CMakeFiles/dbm_common.dir/logging.cc.o"
  "CMakeFiles/dbm_common.dir/logging.cc.o.d"
  "CMakeFiles/dbm_common.dir/status.cc.o"
  "CMakeFiles/dbm_common.dir/status.cc.o.d"
  "CMakeFiles/dbm_common.dir/strings.cc.o"
  "CMakeFiles/dbm_common.dir/strings.cc.o.d"
  "libdbm_common.a"
  "libdbm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
