# Empty dependencies file for dbm_common.
# This may be replaced when dependencies are built.
