file(REMOVE_RECURSE
  "libdbm_common.a"
)
