
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/dbm_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/dbm_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/buffer.cc" "src/storage/CMakeFiles/dbm_storage.dir/buffer.cc.o" "gcc" "src/storage/CMakeFiles/dbm_storage.dir/buffer.cc.o.d"
  "/root/repo/src/storage/paged_relation.cc" "src/storage/CMakeFiles/dbm_storage.dir/paged_relation.cc.o" "gcc" "src/storage/CMakeFiles/dbm_storage.dir/paged_relation.cc.o.d"
  "/root/repo/src/storage/record_file.cc" "src/storage/CMakeFiles/dbm_storage.dir/record_file.cc.o" "gcc" "src/storage/CMakeFiles/dbm_storage.dir/record_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dbm_component.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/dbm_adapt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
