file(REMOVE_RECURSE
  "CMakeFiles/dbm_storage.dir/btree.cc.o"
  "CMakeFiles/dbm_storage.dir/btree.cc.o.d"
  "CMakeFiles/dbm_storage.dir/buffer.cc.o"
  "CMakeFiles/dbm_storage.dir/buffer.cc.o.d"
  "CMakeFiles/dbm_storage.dir/paged_relation.cc.o"
  "CMakeFiles/dbm_storage.dir/paged_relation.cc.o.d"
  "CMakeFiles/dbm_storage.dir/record_file.cc.o"
  "CMakeFiles/dbm_storage.dir/record_file.cc.o.d"
  "libdbm_storage.a"
  "libdbm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
