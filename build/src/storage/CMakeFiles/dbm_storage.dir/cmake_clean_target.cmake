file(REMOVE_RECURSE
  "libdbm_storage.a"
)
