# Empty compiler generated dependencies file for dbm_storage.
# This may be replaced when dependencies are built.
