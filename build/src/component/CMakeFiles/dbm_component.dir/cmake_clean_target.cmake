file(REMOVE_RECURSE
  "libdbm_component.a"
)
