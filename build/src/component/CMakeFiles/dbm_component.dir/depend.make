# Empty dependencies file for dbm_component.
# This may be replaced when dependencies are built.
