file(REMOVE_RECURSE
  "CMakeFiles/dbm_component.dir/component.cc.o"
  "CMakeFiles/dbm_component.dir/component.cc.o.d"
  "CMakeFiles/dbm_component.dir/composite.cc.o"
  "CMakeFiles/dbm_component.dir/composite.cc.o.d"
  "CMakeFiles/dbm_component.dir/reconfigure.cc.o"
  "CMakeFiles/dbm_component.dir/reconfigure.cc.o.d"
  "CMakeFiles/dbm_component.dir/registry.cc.o"
  "CMakeFiles/dbm_component.dir/registry.cc.o.d"
  "libdbm_component.a"
  "libdbm_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
