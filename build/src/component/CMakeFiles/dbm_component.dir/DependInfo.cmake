
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/component/component.cc" "src/component/CMakeFiles/dbm_component.dir/component.cc.o" "gcc" "src/component/CMakeFiles/dbm_component.dir/component.cc.o.d"
  "/root/repo/src/component/composite.cc" "src/component/CMakeFiles/dbm_component.dir/composite.cc.o" "gcc" "src/component/CMakeFiles/dbm_component.dir/composite.cc.o.d"
  "/root/repo/src/component/reconfigure.cc" "src/component/CMakeFiles/dbm_component.dir/reconfigure.cc.o" "gcc" "src/component/CMakeFiles/dbm_component.dir/reconfigure.cc.o.d"
  "/root/repo/src/component/registry.cc" "src/component/CMakeFiles/dbm_component.dir/registry.cc.o" "gcc" "src/component/CMakeFiles/dbm_component.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
