file(REMOVE_RECURSE
  "libdbm_kendra.a"
)
