# Empty compiler generated dependencies file for dbm_kendra.
# This may be replaced when dependencies are built.
