file(REMOVE_RECURSE
  "CMakeFiles/dbm_kendra.dir/kendra.cc.o"
  "CMakeFiles/dbm_kendra.dir/kendra.cc.o.d"
  "libdbm_kendra.a"
  "libdbm_kendra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_kendra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
