
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/architecture.cc" "src/adl/CMakeFiles/dbm_adl.dir/architecture.cc.o" "gcc" "src/adl/CMakeFiles/dbm_adl.dir/architecture.cc.o.d"
  "/root/repo/src/adl/parser.cc" "src/adl/CMakeFiles/dbm_adl.dir/parser.cc.o" "gcc" "src/adl/CMakeFiles/dbm_adl.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dbm_component.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
