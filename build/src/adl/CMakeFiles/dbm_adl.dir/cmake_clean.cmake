file(REMOVE_RECURSE
  "CMakeFiles/dbm_adl.dir/architecture.cc.o"
  "CMakeFiles/dbm_adl.dir/architecture.cc.o.d"
  "CMakeFiles/dbm_adl.dir/parser.cc.o"
  "CMakeFiles/dbm_adl.dir/parser.cc.o.d"
  "libdbm_adl.a"
  "libdbm_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
