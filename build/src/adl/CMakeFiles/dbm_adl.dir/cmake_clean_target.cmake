file(REMOVE_RECURSE
  "libdbm_adl.a"
)
