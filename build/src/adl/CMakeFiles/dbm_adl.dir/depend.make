# Empty dependencies file for dbm_adl.
# This may be replaced when dependencies are built.
