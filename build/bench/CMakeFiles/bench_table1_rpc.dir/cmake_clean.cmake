file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rpc.dir/bench_table1_rpc.cc.o"
  "CMakeFiles/bench_table1_rpc.dir/bench_table1_rpc.cc.o.d"
  "bench_table1_rpc"
  "bench_table1_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
