file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_patia.dir/bench_fig7_patia.cc.o"
  "CMakeFiles/bench_fig7_patia.dir/bench_fig7_patia.cc.o.d"
  "bench_fig7_patia"
  "bench_fig7_patia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_patia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
