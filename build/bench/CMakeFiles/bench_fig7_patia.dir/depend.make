# Empty dependencies file for bench_fig7_patia.
# This may be replaced when dependencies are built.
