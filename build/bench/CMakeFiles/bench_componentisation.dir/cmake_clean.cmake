file(REMOVE_RECURSE
  "CMakeFiles/bench_componentisation.dir/bench_componentisation.cc.o"
  "CMakeFiles/bench_componentisation.dir/bench_componentisation.cc.o.d"
  "bench_componentisation"
  "bench_componentisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_componentisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
