# Empty compiler generated dependencies file for bench_componentisation.
# This may be replaced when dependencies are built.
