file(REMOVE_RECURSE
  "CMakeFiles/bench_kendra_codec.dir/bench_kendra_codec.cc.o"
  "CMakeFiles/bench_kendra_codec.dir/bench_kendra_codec.cc.o.d"
  "bench_kendra_codec"
  "bench_kendra_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kendra_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
