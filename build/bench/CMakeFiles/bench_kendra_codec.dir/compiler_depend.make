# Empty compiler generated dependencies file for bench_kendra_codec.
# This may be replaced when dependencies are built.
