# Empty dependencies file for bench_fig2_versions.
# This may be replaced when dependencies are built.
