file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_joins.dir/bench_adaptive_joins.cc.o"
  "CMakeFiles/bench_adaptive_joins.dir/bench_adaptive_joins.cc.o.d"
  "bench_adaptive_joins"
  "bench_adaptive_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
