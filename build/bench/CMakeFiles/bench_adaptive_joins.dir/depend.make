# Empty dependencies file for bench_adaptive_joins.
# This may be replaced when dependencies are built.
