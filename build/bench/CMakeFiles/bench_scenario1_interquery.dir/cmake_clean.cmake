file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario1_interquery.dir/bench_scenario1_interquery.cc.o"
  "CMakeFiles/bench_scenario1_interquery.dir/bench_scenario1_interquery.cc.o.d"
  "bench_scenario1_interquery"
  "bench_scenario1_interquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario1_interquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
