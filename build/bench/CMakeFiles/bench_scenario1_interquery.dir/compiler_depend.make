# Empty compiler generated dependencies file for bench_scenario1_interquery.
# This may be replaced when dependencies are built.
