file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_loop.dir/bench_fig1_loop.cc.o"
  "CMakeFiles/bench_fig1_loop.dir/bench_fig1_loop.cc.o.d"
  "bench_fig1_loop"
  "bench_fig1_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
