# Empty compiler generated dependencies file for bench_fig1_loop.
# This may be replaced when dependencies are built.
