# Empty compiler generated dependencies file for bench_scenario2_switchover.
# This may be replaced when dependencies are built.
