file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario2_switchover.dir/bench_scenario2_switchover.cc.o"
  "CMakeFiles/bench_scenario2_switchover.dir/bench_scenario2_switchover.cc.o.d"
  "bench_scenario2_switchover"
  "bench_scenario2_switchover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario2_switchover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
