file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario3_intraquery.dir/bench_scenario3_intraquery.cc.o"
  "CMakeFiles/bench_scenario3_intraquery.dir/bench_scenario3_intraquery.cc.o.d"
  "bench_scenario3_intraquery"
  "bench_scenario3_intraquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario3_intraquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
