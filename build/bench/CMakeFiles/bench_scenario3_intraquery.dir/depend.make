# Empty dependencies file for bench_scenario3_intraquery.
# This may be replaced when dependencies are built.
