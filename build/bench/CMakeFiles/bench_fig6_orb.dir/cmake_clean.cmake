file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_orb.dir/bench_fig6_orb.cc.o"
  "CMakeFiles/bench_fig6_orb.dir/bench_fig6_orb.cc.o.d"
  "bench_fig6_orb"
  "bench_fig6_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
