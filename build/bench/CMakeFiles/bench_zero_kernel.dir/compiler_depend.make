# Empty compiler generated dependencies file for bench_zero_kernel.
# This may be replaced when dependencies are built.
