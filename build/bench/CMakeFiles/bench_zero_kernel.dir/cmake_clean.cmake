file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_kernel.dir/bench_zero_kernel.cc.o"
  "CMakeFiles/bench_zero_kernel.dir/bench_zero_kernel.cc.o.d"
  "bench_zero_kernel"
  "bench_zero_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
