file(REMOVE_RECURSE
  "CMakeFiles/bench_feedback_loops.dir/bench_feedback_loops.cc.o"
  "CMakeFiles/bench_feedback_loops.dir/bench_feedback_loops.cc.o.d"
  "bench_feedback_loops"
  "bench_feedback_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedback_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
