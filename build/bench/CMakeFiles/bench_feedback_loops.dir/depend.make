# Empty dependencies file for bench_feedback_loops.
# This may be replaced when dependencies are built.
