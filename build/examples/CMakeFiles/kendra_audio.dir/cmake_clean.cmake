file(REMOVE_RECURSE
  "CMakeFiles/kendra_audio.dir/kendra_audio.cpp.o"
  "CMakeFiles/kendra_audio.dir/kendra_audio.cpp.o.d"
  "kendra_audio"
  "kendra_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kendra_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
