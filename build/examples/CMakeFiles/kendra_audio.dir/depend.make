# Empty dependencies file for kendra_audio.
# This may be replaced when dependencies are built.
