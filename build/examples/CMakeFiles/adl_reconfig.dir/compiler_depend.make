# Empty compiler generated dependencies file for adl_reconfig.
# This may be replaced when dependencies are built.
