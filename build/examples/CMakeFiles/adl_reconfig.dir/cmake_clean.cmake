file(REMOVE_RECURSE
  "CMakeFiles/adl_reconfig.dir/adl_reconfig.cpp.o"
  "CMakeFiles/adl_reconfig.dir/adl_reconfig.cpp.o.d"
  "adl_reconfig"
  "adl_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adl_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
