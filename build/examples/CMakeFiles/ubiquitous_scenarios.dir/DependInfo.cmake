
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ubiquitous_scenarios.cpp" "examples/CMakeFiles/ubiquitous_scenarios.dir/ubiquitous_scenarios.cpp.o" "gcc" "examples/CMakeFiles/ubiquitous_scenarios.dir/ubiquitous_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbmachine/CMakeFiles/dbm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/dbm_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dbm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/dbm_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dbm_component.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
