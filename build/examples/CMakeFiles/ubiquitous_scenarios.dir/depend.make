# Empty dependencies file for ubiquitous_scenarios.
# This may be replaced when dependencies are built.
