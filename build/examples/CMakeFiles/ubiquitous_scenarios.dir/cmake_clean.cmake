file(REMOVE_RECURSE
  "CMakeFiles/ubiquitous_scenarios.dir/ubiquitous_scenarios.cpp.o"
  "CMakeFiles/ubiquitous_scenarios.dir/ubiquitous_scenarios.cpp.o.d"
  "ubiquitous_scenarios"
  "ubiquitous_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubiquitous_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
