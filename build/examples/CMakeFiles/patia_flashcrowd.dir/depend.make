# Empty dependencies file for patia_flashcrowd.
# This may be replaced when dependencies are built.
