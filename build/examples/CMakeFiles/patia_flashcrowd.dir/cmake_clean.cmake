file(REMOVE_RECURSE
  "CMakeFiles/patia_flashcrowd.dir/patia_flashcrowd.cpp.o"
  "CMakeFiles/patia_flashcrowd.dir/patia_flashcrowd.cpp.o.d"
  "patia_flashcrowd"
  "patia_flashcrowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patia_flashcrowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
