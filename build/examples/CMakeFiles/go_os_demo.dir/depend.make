# Empty dependencies file for go_os_demo.
# This may be replaced when dependencies are built.
