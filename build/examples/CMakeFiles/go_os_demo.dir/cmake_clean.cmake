file(REMOVE_RECURSE
  "CMakeFiles/go_os_demo.dir/go_os_demo.cpp.o"
  "CMakeFiles/go_os_demo.dir/go_os_demo.cpp.o.d"
  "go_os_demo"
  "go_os_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/go_os_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
