# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/component_test[1]_include.cmake")
include("/root/repo/build/tests/adl_test[1]_include.cmake")
include("/root/repo/build/tests/adapt_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/patia_test[1]_include.cmake")
include("/root/repo/build/tests/kendra_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/os_services_test[1]_include.cmake")
include("/root/repo/build/tests/composite_test[1]_include.cmake")
include("/root/repo/build/tests/multijoin_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/object_spj_test[1]_include.cmake")
include("/root/repo/build/tests/hysteresis_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/index_join_test[1]_include.cmake")
include("/root/repo/build/tests/paged_relation_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
