file(REMOVE_RECURSE
  "CMakeFiles/kendra_test.dir/kendra_test.cc.o"
  "CMakeFiles/kendra_test.dir/kendra_test.cc.o.d"
  "kendra_test"
  "kendra_test.pdb"
  "kendra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kendra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
