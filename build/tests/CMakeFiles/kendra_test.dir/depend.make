# Empty dependencies file for kendra_test.
# This may be replaced when dependencies are built.
