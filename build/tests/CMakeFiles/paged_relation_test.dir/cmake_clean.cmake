file(REMOVE_RECURSE
  "CMakeFiles/paged_relation_test.dir/paged_relation_test.cc.o"
  "CMakeFiles/paged_relation_test.dir/paged_relation_test.cc.o.d"
  "paged_relation_test"
  "paged_relation_test.pdb"
  "paged_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
