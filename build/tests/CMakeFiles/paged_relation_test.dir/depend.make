# Empty dependencies file for paged_relation_test.
# This may be replaced when dependencies are built.
