# Empty dependencies file for patia_test.
# This may be replaced when dependencies are built.
