file(REMOVE_RECURSE
  "CMakeFiles/patia_test.dir/patia_test.cc.o"
  "CMakeFiles/patia_test.dir/patia_test.cc.o.d"
  "patia_test"
  "patia_test.pdb"
  "patia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
