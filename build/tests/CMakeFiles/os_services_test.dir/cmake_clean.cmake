file(REMOVE_RECURSE
  "CMakeFiles/os_services_test.dir/os_services_test.cc.o"
  "CMakeFiles/os_services_test.dir/os_services_test.cc.o.d"
  "os_services_test"
  "os_services_test.pdb"
  "os_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
