# Empty compiler generated dependencies file for os_services_test.
# This may be replaced when dependencies are built.
