file(REMOVE_RECURSE
  "CMakeFiles/multijoin_test.dir/multijoin_test.cc.o"
  "CMakeFiles/multijoin_test.dir/multijoin_test.cc.o.d"
  "multijoin_test"
  "multijoin_test.pdb"
  "multijoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multijoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
