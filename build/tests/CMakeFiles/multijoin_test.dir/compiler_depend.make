# Empty compiler generated dependencies file for multijoin_test.
# This may be replaced when dependencies are built.
