file(REMOVE_RECURSE
  "CMakeFiles/object_spj_test.dir/object_spj_test.cc.o"
  "CMakeFiles/object_spj_test.dir/object_spj_test.cc.o.d"
  "object_spj_test"
  "object_spj_test.pdb"
  "object_spj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_spj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
