# Empty compiler generated dependencies file for object_spj_test.
# This may be replaced when dependencies are built.
