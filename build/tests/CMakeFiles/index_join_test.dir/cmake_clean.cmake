file(REMOVE_RECURSE
  "CMakeFiles/index_join_test.dir/index_join_test.cc.o"
  "CMakeFiles/index_join_test.dir/index_join_test.cc.o.d"
  "index_join_test"
  "index_join_test.pdb"
  "index_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
