# Empty dependencies file for index_join_test.
# This may be replaced when dependencies are built.
