// wal_dump: inspect a write-ahead-log directory.
//
//   wal_dump --dir=log.wal [--frames] [--limit=N] [--json]
//
// Scans the segments with the torn-tail rule (ScanWal — the same code
// Wal::Open and recovery run) and prints a recovery report: segments,
// trusted frames, the LSN watermarks, checkpoints, and where — if
// anywhere — the history tears. --frames additionally lists each
// trusted frame (segment, LSN, type, page, image CRC) up to --limit.
// --json emits one machine-readable document instead of tables.
//
// The dump never mutates the directory: a torn tail is reported, not
// truncated (only Wal::Open repairs).
//
// Exit status: 0 = scan rendered (a truncated tail is still a
// successful scan — reported, not fatal), 1 = the directory cannot be
// scanned at all, 2 = usage error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/json.h"
#include "storage/wal.h"

namespace {

using dbm::storage::ScanWal;
using dbm::storage::WalRecord;
using dbm::storage::WalRecordType;
using dbm::storage::WalScanReport;

struct Args {
  std::string dir;
  bool frames = false;
  size_t limit = 64;
  bool json = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: wal_dump --dir=DIR.wal [--frames] [--limit=N] "
               "[--json]\n");
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--dir")) {
      out->dir = v;
    } else if (const char* v = value("--limit")) {
      out->limit = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--frames") {
      out->frames = true;
    } else if (arg == "--json") {
      out->json = true;
    } else {
      return false;
    }
  }
  return !out->dir.empty();
}

struct FrameRow {
  std::string segment;
  WalRecordType type;
  uint64_t lsn;
  uint32_t page;
  uint64_t redo_lsn;
  uint32_t image_crc;
};

const char* TypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kPageImage: return "page-image";
    case WalRecordType::kCheckpoint: return "checkpoint";
  }
  return "?";
}

void PrintJson(const Args& args, const WalScanReport& report,
               const std::vector<FrameRow>& frames, uint64_t total_frames) {
  std::printf("{\"dir\":\"%s\"", dbm::JsonEscape(args.dir).c_str());
  std::printf(",\"segments_scanned\":%" PRIu64, report.segments_scanned);
  std::printf(",\"frames\":%" PRIu64, report.frames);
  std::printf(",\"bytes_scanned\":%" PRIu64, report.bytes_scanned);
  std::printf(",\"max_lsn\":%" PRIu64, report.max_lsn);
  std::printf(",\"redo_lsn\":%" PRIu64, report.redo_lsn);
  std::printf(",\"checkpoints\":%" PRIu64, report.checkpoints);
  std::printf(",\"truncated\":%s", report.truncated ? "true" : "false");
  if (report.truncated) {
    std::printf(",\"truncated_segment\":\"%s\"",
                dbm::JsonEscape(report.truncated_segment).c_str());
    std::printf(",\"truncated_offset\":%" PRIu64, report.truncated_offset);
  }
  std::printf(",\"torn_tail_bytes\":%" PRIu64, report.torn_tail_bytes);
  std::printf(",\"segments\":[");
  for (size_t i = 0; i < report.segments.size(); ++i) {
    const auto& seg = report.segments[i];
    std::printf("%s{\"path\":\"%s\",\"frames\":%" PRIu64
                ",\"first_lsn\":%" PRIu64 ",\"last_lsn\":%" PRIu64
                ",\"bytes\":%" PRIu64 "}",
                i == 0 ? "" : ",", dbm::JsonEscape(seg.path).c_str(),
                seg.frames, seg.first_lsn, seg.last_lsn, seg.bytes);
  }
  std::printf("]");
  if (args.frames) {
    std::printf(",\"frame_rows\":[");
    for (size_t i = 0; i < frames.size(); ++i) {
      const FrameRow& row = frames[i];
      std::printf("%s{\"segment\":\"%s\",\"lsn\":%" PRIu64
                  ",\"type\":\"%s\"",
                  i == 0 ? "" : ",", dbm::JsonEscape(row.segment).c_str(),
                  row.lsn, TypeName(row.type));
      if (row.type == WalRecordType::kPageImage) {
        std::printf(",\"page\":%u,\"image_crc\":%u", row.page,
                    row.image_crc);
      } else {
        std::printf(",\"redo_lsn\":%" PRIu64, row.redo_lsn);
      }
      std::printf("}");
    }
    std::printf("],\"frame_rows_truncated\":%s",
                total_frames > frames.size() ? "true" : "false");
  }
  std::printf("}\n");
}

void PrintText(const Args& args, const WalScanReport& report,
               const std::vector<FrameRow>& frames, uint64_t total_frames) {
  std::printf("wal: %s\n", args.dir.c_str());
  std::printf("  segments scanned   %" PRIu64 "\n", report.segments_scanned);
  std::printf("  trusted frames     %" PRIu64 "\n", report.frames);
  std::printf("  bytes scanned      %" PRIu64 "\n", report.bytes_scanned);
  std::printf("  max trusted lsn    %" PRIu64 "\n", report.max_lsn);
  std::printf("  redo lsn           %" PRIu64 "%s\n", report.redo_lsn,
              report.checkpoints == 0 ? " (no checkpoint)" : "");
  std::printf("  checkpoints        %" PRIu64 "\n", report.checkpoints);
  if (report.truncated) {
    std::printf("  TORN TAIL at %s +%" PRIu64 " (%" PRIu64
                " bytes untrusted)\n",
                report.truncated_segment.c_str(), report.truncated_offset,
                report.torn_tail_bytes);
  } else {
    std::printf("  tail               clean\n");
  }
  std::printf("\n  %-28s %8s %10s %10s %10s\n", "segment", "frames",
              "first_lsn", "last_lsn", "bytes");
  for (const auto& seg : report.segments) {
    // Basename keeps the table narrow.
    size_t slash = seg.path.find_last_of('/');
    std::printf("  %-28s %8" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 "\n",
                seg.path.substr(slash + 1).c_str(), seg.frames,
                seg.first_lsn, seg.last_lsn, seg.bytes);
  }
  if (args.frames) {
    std::printf("\n  %10s %-12s %8s %12s\n", "lsn", "type", "page",
                "image_crc");
    for (const FrameRow& row : frames) {
      if (row.type == WalRecordType::kPageImage) {
        std::printf("  %10" PRIu64 " %-12s %8u %12u\n", row.lsn,
                    TypeName(row.type), row.page, row.image_crc);
      } else {
        std::printf("  %10" PRIu64 " %-12s redo=%" PRIu64 "\n", row.lsn,
                    TypeName(row.type), row.redo_lsn);
      }
    }
    if (total_frames > frames.size()) {
      std::printf("  ... %" PRIu64 " more (raise --limit)\n",
                  total_frames - frames.size());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  // ScanWal treats an absent directory as an empty log (the Wal::Open
  // "create if missing" semantic); for a read-only inspector that would
  // turn a typo into a falsely clean report, so require the path.
  std::error_code ec;
  if (!std::filesystem::is_directory(args.dir, ec)) {
    std::fprintf(stderr, "wal_dump: %s: not a directory\n",
                 args.dir.c_str());
    return 1;
  }

  std::vector<FrameRow> frames;
  uint64_t total_frames = 0;
  WalScanReport report;
  dbm::Status status = ScanWal(
      args.dir,
      [&](const WalRecord& rec, const std::string& segment) {
        ++total_frames;
        if (args.frames && frames.size() < args.limit) {
          FrameRow row;
          row.segment = segment;
          row.type = rec.type;
          row.lsn = rec.lsn;
          row.page = rec.page;
          row.redo_lsn = rec.redo_lsn;
          row.image_crc =
              rec.type == WalRecordType::kPageImage
                  ? dbm::Crc32(rec.image.data(), rec.image.size())
                  : 0;
          frames.push_back(std::move(row));
        }
        return true;
      },
      &report);
  if (!status.ok()) {
    std::fprintf(stderr, "wal_dump: %s\n", status.ToString().c_str());
    return 1;
  }
  if (args.json) {
    PrintJson(args, report, frames, total_frames);
  } else {
    PrintText(args, report, frames, total_frames);
  }
  return 0;
}
