// bench_diff: compares two bench metrics sidecars and flags regressions.
//
//   bench_diff BASELINE.metrics.json CURRENT.metrics.json \
//       [--threshold=0.10] [--filter=cycles] [--all]
//
// By default only metrics whose name contains "cycles" are compared:
// simulated-cycle counts are deterministic functions of the workload, so
// a >threshold increase is a real cost regression, not machine noise
// (host-time metrics vary run to run and machine to machine; compare
// them with --all when that is understood). Counters and gauges compare
// their value; histograms compare count and mean.
//
// A baseline sidecar may carry a top-level "nogate" array of name
// substrings: metrics matching any entry are reported (NOGATE lines)
// but never fail the run. This is for fault-schedule-dependent costs —
// deterministic for a fixed seed, but expected to shift whenever the
// injector's draw stream changes, which is not a product regression.
//
// Exit status: 0 = no regression, 1 = at least one metric regressed past
// the threshold, 2 = usage / parse error, 3 = a sidecar file is missing
// (distinct so CI can treat "no baseline yet" as skip rather than
// failure). Improvements are reported but never fail the run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace {

using dbm::JsonValue;
using dbm::Result;
using dbm::Status;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Sidecar flattened to comparable scalars (histograms fan out into
/// .count / .mean entries), plus the baseline's optional nogate list.
struct Sidecar {
  std::map<std::string, double> metrics;
  std::vector<std::string> nogate;
};

Result<Sidecar> LoadSidecar(const std::string& path) {
  DBM_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  DBM_ASSIGN_OR_RETURN(JsonValue doc, dbm::ParseJson(text));
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->IsArray()) {
    return Status::ParseError("'" + path + "' has no metrics array");
  }
  Sidecar sidecar;
  std::map<std::string, double>& out = sidecar.metrics;
  for (const JsonValue& m : metrics->array) {
    const JsonValue* name = m.Find("name");
    const JsonValue* kind = m.Find("kind");
    if (name == nullptr || !name->IsString() || kind == nullptr) continue;
    if (kind->StringOr("") == "histogram") {
      const JsonValue* count = m.Find("count");
      const JsonValue* mean = m.Find("mean");
      if (count != nullptr) out[name->str + ".count"] = count->NumberOr(0);
      if (mean != nullptr) out[name->str + ".mean"] = mean->NumberOr(0);
    } else {
      const JsonValue* value = m.Find("value");
      if (value != nullptr) out[name->str] = value->NumberOr(0);
    }
  }
  const JsonValue* nogate = doc.Find("nogate");
  if (nogate != nullptr && nogate->IsArray()) {
    for (const JsonValue& n : nogate->array) {
      if (n.IsString() && !n.str.empty()) sidecar.nogate.push_back(n.str);
    }
  }
  return sidecar;
}

bool Nogated(const std::vector<std::string>& nogate,
             const std::string& name) {
  for (const std::string& pattern : nogate) {
    if (name.find(pattern) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.10;
  std::string filter = "cycles";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg == "--all") {
      filter.clear();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.metrics.json "
                 "CURRENT.metrics.json [--threshold=0.10] "
                 "[--filter=SUBSTRING] [--all]\n");
    return 2;
  }

  auto baseline = LoadSidecar(paths[0]);
  auto current = LoadSidecar(paths[1]);
  if (!baseline.ok() || !current.ok()) {
    const Status& bad =
        !baseline.ok() ? baseline.status() : current.status();
    if (bad.IsNotFound()) {
      std::fprintf(stderr,
                   "bench_diff: sidecar not found: %s\n"
                   "bench_diff: no baseline to compare against — run the "
                   "bench once to produce it (exit 3, not a regression)\n",
                   bad.ToString().c_str());
      return 3;
    }
    std::fprintf(stderr, "bench_diff: %s\n", bad.ToString().c_str());
    return 2;
  }

  int regressions = 0, improvements = 0, compared = 0, nogated = 0;
  for (const auto& [name, base] : baseline->metrics) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    auto it = current->metrics.find(name);
    if (it == current->metrics.end()) {
      std::printf("MISSING  %-52s (in baseline only)\n", name.c_str());
      continue;
    }
    ++compared;
    double cur = it->second;
    double denom = base != 0 ? base : 1;
    double delta = (cur - base) / denom;
    if (delta > threshold) {
      if (Nogated(baseline->nogate, name)) {
        ++nogated;
        std::printf("NOGATE   %-52s %.6g -> %.6g  (+%.1f%%, informational)\n",
                    name.c_str(), base, cur, delta * 100);
      } else {
        ++regressions;
        std::printf("REGRESS  %-52s %.6g -> %.6g  (+%.1f%%)\n", name.c_str(),
                    base, cur, delta * 100);
      }
    } else if (delta < -threshold) {
      ++improvements;
      std::printf("IMPROVE  %-52s %.6g -> %.6g  (%.1f%%)\n", name.c_str(),
                  base, cur, delta * 100);
    }
  }
  std::printf(
      "bench_diff: %d compared (filter '%s'), %d regressed, %d improved, "
      "%d nogated, threshold %.0f%%\n",
      compared, filter.c_str(), regressions, improvements, nogated,
      threshold * 100);
  return regressions > 0 ? 1 : 0;
}
