// doc_metrics_check — keeps docs/OBSERVABILITY.md's naming table and the
// source tree's `obs::` registrations from drifting apart.
//
// Two directions:
//
//   A. Every metric name registered in src/ via GetCounter / GetGauge /
//      GetHistogram with a string literal must match one of the
//      naming-table patterns. A new metric therefore forces a doc row
//      (or a widened pattern) in the same change.
//   B. Every naming-table pattern must still correspond to something in
//      the source: either a registered literal matches it, or the
//      pattern's literal head appears in src/ (covers names assembled
//      by concatenation, e.g. "orb." + iface + ".timeouts", and bus
//      metrics that never touch the registry directly). Dead rows get
//      flagged instead of lingering as documentation of nothing.
//
// Patterns use `*` and `<placeholder>` as wildcards; everything else is
// literal. Matching is ordered-literal-segment search: the first
// segment anchors at the start, the last anchors at the end unless the
// pattern ends with a wildcard.
//
// Names built by concatenation where the call site's first token is not
// a string literal (e.g. `GetCounter(prefix + ".timeouts")`) are not
// extractable without a real parser; direction B's head check is what
// covers those families. Literal-first concatenations like
// `GetGauge("bench." + id)` are treated as prefixes.
//
// Usage: doc_metrics_check <repo_root>      (exits 1 on any violation)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Pattern {
  std::string text;                   // as written in the doc
  std::vector<std::string> segments;  // literal runs between wildcards
  bool leading_wildcard = false;
  bool trailing_wildcard = false;
  bool matched = false;  // direction B: some registration hit it
};

struct Registration {
  std::string name;
  bool fragment = false;  // literal was a prefix of a built-up name
  std::string file;
  int line = 0;
};

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- doc side ---------------------------------------------------------

// Splits a backticked doc token into literal segments around `*` and
// `<...>` wildcards.
Pattern ParsePattern(const std::string& text) {
  Pattern p;
  p.text = text;
  std::string cur;
  for (size_t i = 0; i < text.size();) {
    if (text[i] == '*') {
      if (!cur.empty()) p.segments.push_back(cur);
      if (cur.empty() && p.segments.empty()) p.leading_wildcard = true;
      cur.clear();
      p.trailing_wildcard = true;
      ++i;
    } else if (text[i] == '<') {
      size_t close = text.find('>', i);
      if (close == std::string::npos) {  // stray '<': treat as literal
        cur += text[i++];
        continue;
      }
      if (!cur.empty()) p.segments.push_back(cur);
      if (cur.empty() && p.segments.empty()) p.leading_wildcard = true;
      cur.clear();
      p.trailing_wildcard = true;
      i = close + 1;
    } else {
      if (p.trailing_wildcard && cur.empty() && !p.segments.empty()) {
        // literal resumes after a wildcard
      }
      p.trailing_wildcard = false;
      cur += text[i++];
    }
  }
  if (!cur.empty()) p.segments.push_back(cur);
  return p;
}

// The naming table: rows of the first markdown table after the
// "## Naming convention" heading, first column, backticked tokens.
std::vector<Pattern> LoadPatterns(const fs::path& doc, std::string* err) {
  std::string text = ReadFile(doc);
  if (text.empty()) {
    *err = "cannot read " + doc.string();
    return {};
  }
  size_t section = text.find("## Naming convention");
  if (section == std::string::npos) {
    *err = "no '## Naming convention' section in " + doc.string();
    return {};
  }
  size_t end = text.find("\n## ", section + 1);
  if (end == std::string::npos) end = text.size();

  std::vector<Pattern> patterns;
  std::istringstream lines(text.substr(section, end - section));
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    size_t second_bar = line.find('|', 1);
    if (second_bar == std::string::npos) continue;
    std::string cell = line.substr(1, second_bar - 1);
    // Backticked tokens only; the separator row and headers have none.
    for (size_t tick = cell.find('`'); tick != std::string::npos;) {
      size_t close = cell.find('`', tick + 1);
      if (close == std::string::npos) break;
      std::string token = cell.substr(tick + 1, close - tick - 1);
      if (!token.empty()) patterns.push_back(ParsePattern(token));
      tick = cell.find('`', close + 1);
    }
  }
  if (patterns.empty()) *err = "naming table parsed to zero patterns";
  return patterns;
}

// --- source side ------------------------------------------------------

void ScanSource(const std::string& text, const std::string& file,
                std::vector<Registration>* out) {
  static const char* kCalls[] = {"GetCounter(", "GetGauge(",
                                 "GetHistogram("};
  for (const char* call : kCalls) {
    const size_t call_len = std::strlen(call);
    for (size_t pos = text.find(call); pos != std::string::npos;
         pos = text.find(call, pos + call_len)) {
      size_t i = pos + call_len;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[i]))) {
        ++i;
      }
      if (i >= text.size() || text[i] != '"') continue;  // built name
      size_t close = text.find('"', i + 1);
      if (close == std::string::npos) continue;
      Registration r;
      r.name = text.substr(i + 1, close - i - 1);
      r.file = file;
      r.line = 1 + static_cast<int>(
                       std::count(text.begin(), text.begin() + pos, '\n'));
      size_t after = close + 1;
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after]))) {
        ++after;
      }
      r.fragment = after >= text.size() || text[after] != ')';
      if (!r.name.empty()) out->push_back(r);
    }
  }
}

// --- matching ---------------------------------------------------------

bool MatchFull(const Pattern& p, const std::string& name) {
  if (p.segments.empty()) return true;  // pure wildcard
  size_t at = 0;
  for (size_t s = 0; s < p.segments.size(); ++s) {
    const std::string& seg = p.segments[s];
    if (s == 0 && !p.leading_wildcard) {
      if (name.compare(0, seg.size(), seg) != 0) return false;
      at = seg.size();
    } else {
      size_t found = name.find(seg, at);
      if (found == std::string::npos) return false;
      at = found + seg.size();
    }
  }
  if (!p.trailing_wildcard && at != name.size()) return false;
  return true;
}

// A fragment (the literal prefix of a concatenated name) matches when
// it overlaps the pattern's anchored head: one is a prefix of the
// other. The built-up tail is unknowable, so this is the best the
// pattern can claim.
bool MatchFragment(const Pattern& p, const std::string& frag) {
  if (p.segments.empty() || p.leading_wildcard) return true;
  const std::string& head = p.segments[0];
  const size_t n = std::min(head.size(), frag.size());
  return head.compare(0, n, frag, 0, n) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: doc_metrics_check <repo_root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path doc = root / "docs" / "OBSERVABILITY.md";
  const fs::path src = root / "src";

  std::string err;
  std::vector<Pattern> patterns = LoadPatterns(doc, &err);
  if (patterns.empty()) {
    std::fprintf(stderr, "doc_metrics_check: %s\n", err.c_str());
    return 2;
  }

  std::vector<Registration> regs;
  std::string corpus;  // every scanned file, for direction B head checks
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::string text = ReadFile(entry.path());
    ScanSource(text, fs::relative(entry.path(), root).string(), &regs);
    corpus += text;
  }
  if (regs.empty()) {
    std::fprintf(stderr, "doc_metrics_check: no registrations under %s\n",
                 src.string().c_str());
    return 2;
  }

  int violations = 0;

  // Direction A: every registered name is documented.
  for (const Registration& r : regs) {
    bool ok = false;
    for (Pattern& p : patterns) {
      const bool hit =
          r.fragment ? MatchFragment(p, r.name) : MatchFull(p, r.name);
      if (hit) {
        ok = true;
        if (!r.fragment) p.matched = true;
        // fragments are too weak a signal to mark a pattern as alive
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "UNDOCUMENTED  %s  (%s:%d) — add a row to the naming "
                   "table in docs/OBSERVABILITY.md\n",
                   r.name.c_str(), r.file.c_str(), r.line);
      ++violations;
    }
  }

  // Direction B: every documented pattern still names something real.
  for (Pattern& p : patterns) {
    if (p.matched) continue;
    const std::string head =
        (p.segments.empty() || p.leading_wildcard) ? "" : p.segments[0];
    if (!head.empty() && corpus.find(head) != std::string::npos) continue;
    std::fprintf(stderr,
                 "STALE DOC ROW  `%s` — no registration matches it and "
                 "'%s' appears nowhere under src/\n",
                 p.text.c_str(), head.c_str());
    ++violations;
  }

  if (violations > 0) {
    std::fprintf(stderr, "doc_metrics_check: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("doc_metrics_check: %zu registrations x %zu patterns, clean\n",
              regs.size(), patterns.size());
  return 0;
}
