// obs_replay: time-travel over a black-box telemetry directory.
//
//   obs_replay --dir=crash.telem [--at=<sim_us>] [--window=<us>]
//              [--limit=N] [--json]
//
// Opens the segment directory with TelemetryReader (torn-tail recovery:
// everything before the first bad frame survives, nothing after) and
// reconstructs the Observatory's state *as of* --at: the last published
// value of every bus gauge at that instant, plus the Fig-1 decision
// timeline (monitor -> constraint -> action) within --window microseconds
// around it, plus every fault event in range. With no --at it replays to
// the newest recovered record — "what did the machine know when it
// died". --json emits one machine-readable document instead of tables.
//
// Exit status: 0 = replay rendered (a truncated tail is still a
// successful recovery — it is reported, not fatal), 1 = the directory
// cannot be recovered at all (missing / no segments), 2 = usage error.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/blackbox/reader.h"
#include "obs/blackbox/record.h"

namespace {

using dbm::obs::blackbox::RecordKind;
using dbm::obs::blackbox::RecordKindName;
using dbm::obs::blackbox::RecoveryReport;
using dbm::obs::blackbox::TelemetryReader;
using dbm::obs::blackbox::TelemetryRecord;

struct Args {
  std::string dir;
  int64_t at_us = -1;      // -1 = newest recovered record
  int64_t window_us = 2'000'000;
  size_t limit = 40;
  bool json = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: obs_replay --dir=DIR.telem [--at=SIM_US] "
               "[--window=US] [--limit=N] [--json]\n");
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--dir")) {
      out->dir = v;
    } else if (const char* v = value("--at")) {
      out->at_us = std::strtoll(v, nullptr, 10);
    } else if (const char* v = value("--window")) {
      out->window_us = std::strtoll(v, nullptr, 10);
    } else if (const char* v = value("--limit")) {
      out->limit = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--json") {
      out->json = true;
    } else if (arg[0] != '-' && out->dir.empty()) {
      out->dir = arg;  // bare positional directory
    } else {
      std::fprintf(stderr, "obs_replay: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  if (out->dir.empty()) {
    std::fprintf(stderr, "obs_replay: --dir is required\n");
    return false;
  }
  return true;
}

std::string Esc(const char* s) { return dbm::JsonEscape(s); }

void RenderJson(const Args& args, const TelemetryReader& reader,
                int64_t at_us) {
  const RecoveryReport& rep = reader.report();
  std::string out = "{\"dir\":\"" + dbm::JsonEscape(args.dir) + "\"";
  out += ",\"at_us\":" + std::to_string(at_us);
  out += ",\"recovery\":{\"segments\":" + std::to_string(rep.segments_scanned);
  out += ",\"records\":" + std::to_string(rep.records);
  out += ",\"bytes\":" + std::to_string(rep.bytes_scanned);
  out += std::string(",\"truncated\":") + (rep.truncated ? "true" : "false");
  if (rep.truncated) {
    out += ",\"truncated_segment\":\"" +
           dbm::JsonEscape(rep.truncated_segment) + "\"";
    out += ",\"truncated_offset\":" + std::to_string(rep.truncated_offset);
  }
  out += "},\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : reader.GaugesAsOf(at_us)) {
    if (!first) out += ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += "\"" + dbm::JsonEscape(name) + "\":" + buf;
  }
  out += "},\"timeline\":[";
  first = true;
  size_t emitted = 0;
  for (const TelemetryRecord& r :
       reader.Between(at_us - args.window_us, at_us + args.window_us)) {
    auto kind = static_cast<RecordKind>(r.kind);
    if (kind != RecordKind::kDecision && kind != RecordKind::kFault) continue;
    if (emitted++ >= args.limit) break;
    if (!first) out += ",";
    first = false;
    out += "{\"at_us\":" + std::to_string(r.at_us);
    out += std::string(",\"kind\":\"") + RecordKindName(kind) + "\"";
    out += ",\"name\":\"" + Esc(r.name) + "\"";
    out += ",\"text\":\"" + Esc(r.text) + "\"";
    out += ",\"extra\":\"" + Esc(r.extra) + "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", r.a);
    out += std::string(",\"a\":") + buf + "}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
}

void RenderText(const Args& args, const TelemetryReader& reader,
                int64_t at_us) {
  const RecoveryReport& rep = reader.report();
  std::printf("black box: %s\n", args.dir.c_str());
  std::printf("  recovered %" PRIu64 " records from %zu segment(s), %" PRIu64
              " bytes scanned\n",
              rep.records, rep.segments_scanned, rep.bytes_scanned);
  if (rep.truncated) {
    std::printf("  TORN TAIL: truncated at %s +%" PRIu64
                " (everything before it survives)\n",
                rep.truncated_segment.c_str(), rep.truncated_offset);
  } else {
    std::printf("  clean tail: every frame intact\n");
  }
  std::printf("\ngauges as of t=%lldus (last publish at or before):\n",
              static_cast<long long>(at_us));
  auto gauges = reader.GaugesAsOf(at_us);
  if (gauges.empty()) std::printf("  (no metric publishes recovered)\n");
  for (const auto& [name, value] : gauges) {
    std::printf("  %-40s %.6g\n", name.c_str(), value);
  }

  std::printf("\nFig-1 decision timeline (t=%lldus +/- %lldus):\n",
              static_cast<long long>(at_us),
              static_cast<long long>(args.window_us));
  size_t emitted = 0, suppressed = 0;
  for (const TelemetryRecord& r :
       reader.Between(at_us - args.window_us, at_us + args.window_us)) {
    auto kind = static_cast<RecordKind>(r.kind);
    if (kind == RecordKind::kDecision) {
      if (emitted++ >= args.limit) {
        ++suppressed;
        continue;
      }
      // monitor -> constraint -> action, the Fig-1 pipeline per row.
      std::printf("  %10lldus  C%-4.0f %-24s %-28s -> %s\n",
                  static_cast<long long>(r.at_us), r.a, r.name, r.text,
                  r.extra);
    } else if (kind == RecordKind::kFault) {
      if (emitted++ >= args.limit) {
        ++suppressed;
        continue;
      }
      std::printf("  %10lldus  FAULT %-10s %-24s %s\n",
                  static_cast<long long>(r.at_us), r.extra, r.name, r.text);
    }
  }
  if (emitted == 0) std::printf("  (no decisions or faults in window)\n");
  if (suppressed > 0) {
    std::printf("  ... %zu more suppressed (raise --limit)\n", suppressed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  auto reader = TelemetryReader::Open(args.dir);
  if (!reader.ok()) {
    std::fprintf(stderr, "obs_replay: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  int64_t at_us = args.at_us >= 0 ? args.at_us : reader->LastAtUs();
  if (args.json) {
    RenderJson(args, *reader, at_us);
  } else {
    RenderText(args, *reader, at_us);
  }
  return 0;
}
