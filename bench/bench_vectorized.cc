// A10 — vectorized columnar execution: batch vs row engine A/B.
//
// The same two A9 workloads (filtered scan + grouped aggregation, and
// the headline join + aggregation) run at dop 1, 4 and 8 on both
// parallel engines — the vectorized columnar batch path (the default)
// and the original tuple-at-a-time morsel path — over identical
// generated tables. Every run's result set is order-normalized and
// compared against the serial reference before any timing is read, so
// a wrong fast answer fails the bench, not the baseline.
//
// Two assertions ride along:
//   * correctness — batch, row and serial results are the same set at
//     every dop;
//   * allocation-freedom — after one warm-up query has sized the
//     per-worker arenas, a steady-state mem-scan aggregation query
//     performs ZERO operator-new calls inside worker morsel bodies
//     (counted by the thread-local alloc hook; enforced whenever the
//     counting allocator is linked in).
//
// Wall-clock ratios are honest-but-noisy host numbers (nogated in the
// committed baseline); the deterministic gate is query.pexec.work_cycles
// — identical across engines by construction (same shaped rows + build
// rows), so bench_diff catches any accounting drift.

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "query/parallel.h"

namespace {

using namespace dbm;
using data::Relation;
using data::Schema;
using data::ValueType;

constexpr size_t kOrders = 400000;
constexpr size_t kPeople = 2000;
constexpr uint64_t kSeed = 42;

Relation MakeOrders() {
  Relation rel("orders", Schema({{"person_id", ValueType::kInt},
                                 {"qty", ValueType::kInt},
                                 {"val", ValueType::kDouble}}));
  Rng rng(kSeed);
  for (size_t i = 0; i < kOrders; ++i) {
    rel.InsertUnchecked(query::Tuple(
        {static_cast<int64_t>(rng.Uniform(kPeople)),
         static_cast<int64_t>(rng.Uniform(50)),
         0.25 * static_cast<double>(rng.Uniform(1000))}));
  }
  return rel;
}

Relation MakePeople() {
  Relation rel("people", Schema({{"id", ValueType::kInt},
                                 {"grp", ValueType::kInt},
                                 {"name", ValueType::kString}}));
  Rng rng(kSeed + 1);
  for (size_t i = 0; i < kPeople; ++i) {
    rel.InsertUnchecked(query::Tuple({static_cast<int64_t>(i),
                                      static_cast<int64_t>(rng.Uniform(32)),
                                      "p#" + std::to_string(i)}));
  }
  return rel;
}

std::multiset<std::string> Canon(const std::vector<query::Tuple>& rows) {
  std::multiset<std::string> out;
  for (const query::Tuple& t : rows) out.insert(t.ToString());
  return out;
}

struct EnginePoint {
  size_t dop = 0;
  double batch_ms = 0;
  double row_ms = 0;
  double ratio = 1.0;  // row_ms / batch_ms (>1 = batch faster)
  query::ParallelStats batch_stats;
};

/// One timed run on one engine; returns false on error or result
/// divergence from `reference`.
bool RunOnce(const query::ParallelPlan& plan, query::WorkerPool* pool,
             size_t dop, query::ParallelEngine engine,
             const std::multiset<std::string>& reference, double* millis,
             query::ParallelStats* stats_out) {
  query::ParallelOptions opt;
  opt.dop = dop;
  opt.pool = pool;
  opt.engine = engine;
  std::vector<query::Tuple> out;
  auto t0 = std::chrono::steady_clock::now();
  auto stats = query::ExecuteParallel(plan, &out, opt);
  auto t1 = std::chrono::steady_clock::now();
  if (!stats.ok()) {
    std::printf("  dop=%zu failed: %s\n", dop,
                stats.status().ToString().c_str());
    return false;
  }
  if (Canon(out) != reference) {
    std::printf("  dop=%zu %s-engine result diverges from serial!\n", dop,
                engine == query::ParallelEngine::kBatch ? "batch" : "row");
    return false;
  }
  *millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (stats_out != nullptr) *stats_out = *stats;
  return true;
}

/// A/B curve: both engines at each dop, identical result sets required.
std::vector<EnginePoint> RunAB(const query::ParallelPlan& plan,
                               query::WorkerPool* pool,
                               const std::vector<size_t>& dops) {
  // Serial reference (dop=1 delegates to the serial executor).
  std::multiset<std::string> reference;
  {
    query::ParallelOptions opt;
    opt.pool = pool;
    std::vector<query::Tuple> out;
    auto stats = query::ExecuteParallel(plan, &out, opt);
    if (!stats.ok()) {
      std::printf("  serial reference failed: %s\n",
                  stats.status().ToString().c_str());
      return {};
    }
    reference = Canon(out);
  }
  std::vector<EnginePoint> curve;
  for (size_t dop : dops) {
    EnginePoint p;
    p.dop = dop;
    if (!RunOnce(plan, pool, dop, query::ParallelEngine::kBatch, reference,
                 &p.batch_ms, &p.batch_stats) ||
        !RunOnce(plan, pool, dop, query::ParallelEngine::kRow, reference,
                 &p.row_ms, nullptr)) {
      return {};
    }
    p.ratio = p.row_ms / std::max(p.batch_ms, 1e-9);
    curve.push_back(p);
  }
  return curve;
}

void PrintCurve(const char* title, const std::vector<EnginePoint>& curve) {
  std::printf("\n%s\n", title);
  bench::Table table({8, 12, 12, 12, 10});
  table.Row({"dop", "batch ms", "row ms", "row/batch", "batches"});
  table.Rule();
  for (const EnginePoint& p : curve) {
    table.Row({bench::FmtU(p.dop), bench::Fmt("%.1f", p.batch_ms),
               bench::Fmt("%.1f", p.row_ms), bench::Fmt("%.2fx", p.ratio),
               bench::FmtU(p.batch_stats.batches)});
  }
  table.Rule();
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("A10", "vectorized batch execution: batch vs row A/B");

  // Timing and the zero-alloc assertion must not absorb injected faults.
  (void)fault::Injector::Default().Configure("", 0);
  obs::InstallCountingAllocator();

  Relation orders = MakeOrders();
  Relation people = MakePeople();
  const std::vector<size_t> dops = {1, 4, 8};
  query::WorkerPool pool(8);

  // Workload 1: filtered scan + grouped aggregation.
  query::ParallelPlan scan_plan;
  scan_plan.probe.mem = &orders;
  scan_plan.probe.filter = query::Gt(query::Col(1), query::Lit(int64_t{4}));
  scan_plan.group_by = {0};
  scan_plan.aggs = {{query::AggFunc::kCount, 0, "n"},
                    {query::AggFunc::kSum, 2, "sum_val"}};
  std::vector<EnginePoint> scan_curve = RunAB(scan_plan, &pool, dops);
  if (scan_curve.empty()) return 1;
  PrintCurve("scan + aggregate (400k rows)", scan_curve);

  // Workload 2: join + grouped aggregation.
  query::ParallelPlan join_plan;
  join_plan.probe.mem = &orders;
  query::ParallelJoinStage stage;
  stage.build.mem = &people;
  stage.spec = query::JoinSpec{0, 0};  // people.id = orders.person_id
  join_plan.joins.push_back(std::move(stage));
  // Joined schema: people(id, grp, name) ++ orders(person_id, qty, val).
  join_plan.group_by = {1};
  join_plan.aggs = {{query::AggFunc::kCount, 0, "n"},
                    {query::AggFunc::kSum, 5, "sum_val"},
                    {query::AggFunc::kMax, 4, "max_qty"}};
  std::vector<EnginePoint> join_curve = RunAB(join_plan, &pool, dops);
  if (join_curve.empty()) return 1;
  PrintCurve("join + aggregate (400k ⋈ 2k)", join_curve);

  // Allocation-freedom: the scan curve above warmed every worker's
  // arenas (chunks are retained across queries), so a steady-state run
  // of the same mem-scan aggregation must do zero operator-new calls
  // inside worker morsel bodies.
  query::ParallelOptions warm;
  warm.dop = 4;
  warm.pool = &pool;
  std::vector<query::Tuple> out;
  auto warm_stats = query::ExecuteParallel(scan_plan, &out, warm);
  if (!warm_stats.ok()) return 1;
  uint64_t steady = warm_stats->steady_allocs;
  bool counting = obs::AllocCountingInstalled();
  if (counting) {
    bench::Note(bench::Fmt("steady-state morsel-body allocations: %.0f",
                           static_cast<double>(steady)) +
                " (bar: 0 — arenas retained, hot path allocation-free)");
  } else {
    bench::Note("counting allocator not linked; zero-alloc bar reported, "
                "not enforced");
  }

  obs::Registry& reg = obs::Registry::Default();
  for (const EnginePoint& p : scan_curve) {
    reg.GetGauge("bench.vec.scan_batch_ms_dop" + std::to_string(p.dop))
        .Set(p.batch_ms);
    reg.GetGauge("bench.vec.scan_row_ms_dop" + std::to_string(p.dop))
        .Set(p.row_ms);
    reg.GetGauge("bench.vec.scan_ratio_dop" + std::to_string(p.dop))
        .Set(p.ratio);
  }
  for (const EnginePoint& p : join_curve) {
    reg.GetGauge("bench.vec.join_batch_ms_dop" + std::to_string(p.dop))
        .Set(p.batch_ms);
    reg.GetGauge("bench.vec.join_row_ms_dop" + std::to_string(p.dop))
        .Set(p.row_ms);
    reg.GetGauge("bench.vec.join_ratio_dop" + std::to_string(p.dop))
        .Set(p.ratio);
  }
  reg.GetGauge("bench.vec.steady_allocs").Set(static_cast<double>(steady));

  double join_ratio8 = 1.0;
  for (const EnginePoint& p : join_curve) {
    if (p.dop == 8) join_ratio8 = p.ratio;
  }
  unsigned hw = std::thread::hardware_concurrency();
  reg.GetGauge("bench.vec.hw_threads").Set(static_cast<double>(hw));
  bench::Note(bench::Fmt("dop=8 join row/batch wall-clock ratio %.2fx",
                         join_ratio8) +
              " (informational; host wall-clock is nogated)");

  bench::MetricsSidecar("bench_vectorized");

  if (counting && steady != 0) {
    std::printf("FAIL: steady-state batch path performed %llu operator-new "
                "calls (bar: 0)\n",
                static_cast<unsigned long long>(steady));
    return 1;
  }
  return 0;
}
