// A4 — zero-kernel services outside the core (§5.1).
//
// The paper's design moves interrupt and device management out of the
// protected core. This bench prices those services in the same cycle
// currency as Table 1: taking an interrupt = dispatcher bookkeeping + one
// 73-cycle ORB call; a scheduler quantum = one ORB call + pick-next; and
// compares against what the same operations cost under trap-based
// kernels (where every interrupt pays a trap entry/exit pair).

#include "bench/bench_util.h"
#include "os/go_system.h"
#include "os/interrupts.h"
#include "os/scheduler.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::os;
  bench::Header("A4", "Zero-kernel interrupt + scheduler cost (cycles)");

  // --- interrupts ---
  GoSystem sys;
  InterruptController irq(&sys.orb(), &sys.ledger());
  auto handler = sys.LoadWithService(images::NullServer("net-irq-handler"));
  if (!handler.ok() || !irq.Attach(5, handler->second).ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  Cycles before = sys.ledger().total();
  constexpr int kIrqs = 10000;
  for (int i = 0; i < kIrqs; ++i) {
    if (!irq.Raise(5).ok()) return 1;
  }
  Cycles per_irq = (sys.ledger().total() - before) / kIrqs;

  const MachineCosts& mc = DefaultMachineCosts();
  Cycles trap_based = mc.trap_entry + mc.register_save + 30 /*dispatch*/ +
                      mc.register_restore + mc.trap_exit;

  bench::Table itab({34, 16});
  itab.Row({"interrupt path", "cycles"});
  itab.Rule();
  itab.Row({"zero-kernel (ORB dispatch, live)", bench::FmtU(per_irq)});
  itab.Row({"trap-based kernel (model)", bench::FmtU(trap_based)});
  itab.Rule();

  // Masked storm: coalescing means a burst costs one dispatch.
  (void)irq.Mask(5);
  before = sys.ledger().total();
  for (int i = 0; i < 1000; ++i) (void)irq.Raise(5);
  (void)irq.Unmask(5);
  std::printf("masked 1000-interrupt burst, then unmask: %llu cycles total "
              "(level-triggered coalescing)\n\n",
              static_cast<unsigned long long>(sys.ledger().total() - before));

  // --- scheduler ---
  std::printf("Scheduler: 4 countdown tasks, 1000 quanta budget\n");
  bench::Table stab({16, 18, 18, 22});
  stab.Row({"policy", "dispatches", "cycles/quantum", "dispatch shares"});
  stab.Rule();
  for (int which = 0; which < 2; ++which) {
    GoSystem s2;
    std::unique_ptr<SchedulingPolicy> policy;
    if (which == 0) {
      policy = std::make_unique<RoundRobinPolicy>();
    } else {
      policy = std::make_unique<StridePolicy>(
          std::vector<uint64_t>{8, 4, 2, 1});
    }
    Scheduler sched(&s2.orb(), &s2.vcpu(), std::move(policy));
    std::vector<TaskId> ids;
    for (int i = 0; i < 4; ++i) {
      auto task = s2.LoadWithService(
          images::CountdownTask("t" + std::to_string(i), 100000));
      if (!task.ok()) return 1;
      ids.push_back(sched.AddTask("t" + std::to_string(i), task->second));
    }
    Cycles c0 = s2.ledger().total();
    auto dispatches = sched.Run(1000);
    if (!dispatches.ok()) return 1;
    Cycles per_quantum = (s2.ledger().total() - c0) / *dispatches;
    std::string shares;
    for (TaskId id : ids) {
      shares += std::to_string(sched.stats(id).dispatches) + " ";
    }
    stab.Row({sched.policy_name(), bench::FmtU(*dispatches),
              bench::FmtU(per_quantum), shares});
  }
  stab.Rule();
  bench::Note("taking an interrupt through the ORB costs less than a "
              "third of one trap-based kernel entry/exit; stride shares "
              "track the 8:4:2:1 tickets. Kernel services survive outside "
              "the core at component prices — the §5.1 design point.");
  bench::MetricsSidecar("bench_zero_kernel");
  return 0;
}
