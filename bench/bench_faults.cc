// A8 — the price of supervision: fault-plane overhead on the ORB path.
//
// Three configurations of the same NullServer call, 10k invocations
// each: bare (no call policy), supervised with faults disabled (the
// deadline/retry/breaker machinery armed but idle — the robustness tax
// every production call pays), and supervised under an injected 5%
// error rate (the recovery path: retries, breaker trips, rejections).
// The acceptance bar is supervised-idle overhead <= 10% of the bare
// 73-cycle hop; the fault-rate column shows what the budget buys.

#include "bench/bench_util.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "os/go_system.h"

namespace {

using namespace dbm;
using namespace dbm::os;

constexpr int kCalls = 10000;

/// Cycles per call over kCalls invocations of a fresh NullServer.
/// `supervise` attaches the default call policy; `spec` arms the
/// process injector for the measured loop (cleared before returning).
double CyclesPerCall(bool supervise, const std::string& spec,
                     uint64_t* failed_calls) {
  GoSystem sys;
  auto server = sys.LoadWithService(images::NullServer());
  if (!server.ok()) return -1;
  if (supervise) {
    CallPolicy policy;
    policy.max_retries = 2;
    policy.breaker_threshold = 3;
    if (!sys.orb().SetCallPolicy(server->second, policy).ok()) return -1;
  }
  if (!spec.empty()) {
    if (!fault::Injector::Default().Configure(spec, /*seed=*/42).ok()) {
      return -1;
    }
  }
  uint64_t failures = 0;
  Cycles before = sys.ledger().total();
  for (int i = 0; i < kCalls; ++i) {
    if (!sys.orb().Call(server->second).ok()) ++failures;
  }
  Cycles spent = sys.ledger().total() - before;
  if (!spec.empty()) fault::Injector::Default().Reset();
  if (failed_calls != nullptr) *failed_calls = failures;
  return static_cast<double>(spent) / kCalls;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("A8", "supervised ORB invoke: overhead and fault-path cost");

  uint64_t bare_failed = 0, idle_failed = 0, fault_failed = 0;
  double bare = CyclesPerCall(false, "", &bare_failed);
  double idle = CyclesPerCall(true, "", &idle_failed);
  double faulted =
      CyclesPerCall(true, "orb.invoke:error@0.05", &fault_failed);
  if (bare <= 0 || idle <= 0 || faulted <= 0) return 1;
  double overhead_pct = (idle - bare) / bare * 100.0;

  bench::Table table({26, 16, 14, 12});
  table.Row({"configuration", "cycles/call", "vs bare", "failed"});
  table.Rule();
  table.Row({"bare (no policy)", bench::Fmt("%.1f", bare), "-",
             bench::FmtU(bare_failed)});
  table.Row({"supervised, no faults", bench::Fmt("%.1f", idle),
             bench::Fmt("%+.1f%%", overhead_pct), bench::FmtU(idle_failed)});
  table.Row({"supervised, error@0.05", bench::Fmt("%.1f", faulted),
             bench::Fmt("%+.1f%%", (faulted - bare) / bare * 100.0),
             bench::FmtU(fault_failed)});
  table.Rule();

  obs::Registry& reg = obs::Registry::Default();
  reg.GetGauge("bench.faults.bare_cycles_per_call").Set(bare);
  reg.GetGauge("bench.faults.supervised_cycles_per_call").Set(idle);
  reg.GetGauge("bench.faults.overhead_pct").Set(overhead_pct);
  reg.GetGauge("bench.faults.faulted_cycles_per_call").Set(faulted);

  if (overhead_pct > 10.0) {
    bench::Note(bench::Fmt("%.1f", overhead_pct) +
                "% idle supervision overhead exceeds the 10% budget");
    bench::MetricsSidecar("bench_faults");
    return 1;
  }
  bench::Note("idle supervision costs " + bench::Fmt("%.1f", overhead_pct) +
              "% of the bare hop (budget: 10%); the fault-rate row prices "
              "the retries and breaker bookkeeping the budget buys.");
  bench::MetricsSidecar("bench_faults");
  return 0;
}
