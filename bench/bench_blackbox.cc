// Black-box overhead — what durable telemetry costs when it's on.
//
// The black box is only honest if its price is measured, not assumed.
// This bench runs the A9 flash-crowd front-door step (4096 closed-loop
// sessions over a two-node Patia world, Table-2 shedding live) twice:
// once bare, once with a TelemetryLog installed as the process-wide
// sink, flusher thread running, segments landing in
// bench_blackbox.telem/ next to the binary. The acceptance bar is the
// ISSUE-8 one: the logged run may cost at most 3% more simulated cycles
// per admitted request. The tap charges no simulated work — durability
// rides on a real thread, not the model — so the cycle comparison is
// exact; host wall time is reported alongside as the honest (noisy)
// number.
//
// bench.blackbox.append_cycles is a cycles-named gauge holding the
// deterministic count of records offered to the sink during the logged
// step (publishes + decisions + profiles + faults are all functions of
// the simulated workload), so bench_diff gates it against the committed
// baseline: an instrumentation change that silently adds or loses taps
// fails CI visibly.
//
// The bench finishes by replaying its own segments through the
// TelemetryReader — the same time travel tools/obs_replay performs —
// proving the records that were appended are the records that recover.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/injector.h"
#include "net/loadgen.h"
#include "obs/alloc_hook.h"
#include "obs/blackbox/log.h"
#include "obs/blackbox/reader.h"
#include "patia/frontdoor.h"
#include "patia/patia.h"

namespace {

using namespace dbm;
using namespace dbm::patia;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_blackbox FAIL: %s\n", what);
    std::exit(1);
  }
}

struct StepResult {
  uint64_t admitted = 0;
  uint64_t completed = 0;
  double cycles_per_admitted = 0;
  double host_ms = 0;
};

// The A9 step of bench_flashcrowd, fixed at 4096 closed-loop sessions —
// several times service capacity, so admission, shedding, the ORB batch
// path and the Fig-1 tick loop are all hot.
StepResult RunStep(uint64_t seed) {
  obs::TimeSeriesStore::Default().ResetAll();
  obs::Registry& reg = obs::Registry::Default();
  const uint64_t cycles_before =
      reg.GetCounter("admission.invoke_cycles").value();
  const auto host_before = std::chrono::steady_clock::now();

  EventLoop loop;
  net::Network net(&loop);
  adapt::MetricBus bus;
  net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
  net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
  for (int i = 0; i < 4; ++i) {
    std::string edge = "edge" + std::to_string(i + 1);
    net.AddDevice({edge, net::DeviceClass::kLaptop, 0.5, -1, 5.0 + i, 5});
    net.Connect("node1", edge, {500000, Millis(1), "wired"});
    net.Connect("node2", edge, {500000, Millis(1), "wired"});
  }

  PatiaServer server(&net, &bus);
  (void)server.AddNode("node1", {8, Millis(2)});
  (void)server.AddNode("node2", {8, Millis(2)});
  Atom page;
  page.id = 7;
  page.name = "Page1.html";
  page.type = "html";
  page.variants = {{"Page1.html", 24000}, {"Page1.small.html", 2400}};
  (void)server.RegisterAtom(page, {"node1", "node2"});
  (void)server.AddConstraint(
      450, 7, "Select BEST(node1.Page1.html, node2.Page1.html)");

  FrontDoorOptions fd;
  fd.queue_capacity = 256;
  fd.session_inflight_limit = 4;
  fd.batch_max = 32;
  fd.dispatch_interval = Millis(1);
  fd.service_credit = 48;
  fd.admission_dop = 4;
  fd.use_orb = true;
  FrontDoor door(&server, &net, &bus, fd);
  Check(door.AddShedRule(
                900,
                "If derived.admission.depth.mean > 96 and "
                "admission.shed_level < 50 then SWITCH(shed.0, shed.50)")
            .ok(),
        "rule 900 parses");
  Check(door.AddShedRule(
                902,
                "If derived.admission.depth.mean < 16 and "
                "admission.shed_level > 0 then SWITCH(shed.50, shed.0)",
                /*priority=*/1)
            .ok(),
        "rule 902 parses");
  server.EnableDegradation({"frontdoor.breaker", 1.5});
  door.Start();
  server.StartTicking(Millis(50));

  net::ClientSwarm::Options sw;
  sw.sessions = 4096;
  sw.think_mean = Millis(200);
  sw.ramp = Seconds(1);
  sw.horizon = Seconds(8);
  sw.backoff = Millis(25);
  sw.seed = seed;
  net::ClientSwarm swarm(&loop, &door, &bus, sw);
  Check(swarm.Run({"edge1", "edge2", "edge3", "edge4"}, "Page1.html").ok(),
        "swarm starts");

  loop.RunUntil(Seconds(12));
  door.Stop();
  loop.RunUntil(Seconds(20));

  StepResult out;
  out.admitted = door.stats().admitted;
  out.completed = door.stats().completed;
  if (out.admitted > 0) {
    out.cycles_per_admitted =
        static_cast<double>(
            reg.GetCounter("admission.invoke_cycles").value() -
            cycles_before) /
        static_cast<double>(out.admitted);
  }
  out.host_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - host_before)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("BB", "black-box overhead on the flash-crowd front door");
  // The overhead comparison needs a quiet injector; the chaos job
  // exercises the crash point through blackbox_test instead.
  Check(fault::Injector::Default().Configure("", 0).ok(), "injector quiet");
  obs::Registry& reg = obs::Registry::Default();

  // Arm 1: bare — no sink installed, the tap is one relaxed load.
  StepResult off = RunStep(/*seed=*/42);

  // Arm 2: logged — TelemetryLog installed, flusher thread live,
  // segments in an artifact-collectable *.telem directory.
  obs::blackbox::TelemetryLogOptions lopt;
  lopt.dir = bench::Context().out_dir + "bench_blackbox.telem";
  lopt.segment_bytes = 1 << 20;
  // Generous retention: the replay assertion below wants the *whole*
  // history back, not the retained tail.
  lopt.max_segments = 64;
  lopt.ring_capacity = 1 << 15;
  lopt.fsync = obs::blackbox::FsyncPolicy::kInterval;
  auto log = obs::blackbox::TelemetryLog::Open(lopt);
  Check(log.ok(), "telemetry log opens");
  (*log)->Install();
  StepResult on = RunStep(/*seed=*/42);
  (*log)->Uninstall();
  Check((*log)->Flush().ok(), "final flush");
  obs::blackbox::TelemetryLogStats ls = (*log)->stats();

  bench::Table table({10, 10, 10, 12, 10});
  table.Row({"arm", "admitted", "done", "cycles/req", "host_ms"});
  table.Rule();
  table.Row({"bare", bench::FmtU(off.admitted), bench::FmtU(off.completed),
             bench::Fmt("%.1f", off.cycles_per_admitted),
             bench::Fmt("%.0f", off.host_ms)});
  table.Row({"logged", bench::FmtU(on.admitted), bench::FmtU(on.completed),
             bench::Fmt("%.1f", on.cycles_per_admitted),
             bench::Fmt("%.0f", on.host_ms)});
  table.Rule();

  const uint64_t offered = ls.appended + ls.dropped + ls.sampled_out;
  bench::Note(bench::Fmt("%.0f", static_cast<double>(offered)) +
              " records offered to the sink during the logged arm (" +
              bench::FmtU(ls.appended) + " ringed, " +
              bench::FmtU(ls.dropped) + " dropped, " +
              bench::FmtU(ls.flushed) + " on disk across " +
              bench::FmtU(ls.segments_created) + " segments, " +
              bench::FmtU(ls.fsyncs) + " fsyncs)");

  // The deterministic cost pin: the offered-record count is a function
  // of the simulated workload alone (the flusher's host-time race moves
  // records between 'ringed' and 'dropped', never in or out of
  // 'offered'). bench_diff gates this cycles-named gauge at 10%.
  reg.GetGauge("bench.blackbox.append_cycles")
      .Set(static_cast<double>(offered));
  reg.GetGauge("bench.blackbox.cycles_per_request_bare")
      .Set(off.cycles_per_admitted);
  reg.GetGauge("bench.blackbox.cycles_per_request_logged")
      .Set(on.cycles_per_admitted);

  // Acceptance bar 1: <= 3% simulated-cycle overhead per admitted
  // request. The tap charges no simulated work, so this is exact
  // equality in practice — the bar catches anyone later putting the
  // durable plane on the simulated clock.
  Check(off.admitted == on.admitted,
        "same seed admits the same crowd in both arms");
  Check(on.cycles_per_admitted <= off.cycles_per_admitted * 1.03,
        "logged arm stays within 3% cycles/request of bare");
  Check(offered > 1000, "the workload actually exercised the tap");

  // Acceptance bar 2: the hot append path allocates nothing.
  {
    obs::InstallCountingAllocator();
    obs::blackbox::TelemetryLogOptions aopt;
    // Its own directory: reusing the logged arm's would truncate the
    // history the replay assertion below recovers.
    aopt.dir = bench::Context().out_dir + "bench_blackbox_alloc.telem";
    aopt.start_flusher = false;  // nothing drains: pure enqueue cost
    aopt.ring_capacity = 1 << 14;
    auto alog = obs::blackbox::TelemetryLog::Open(aopt);
    Check(alog.ok(), "alloc-probe log opens");
    obs::blackbox::TelemetryRecord rec;
    rec.kind = static_cast<uint8_t>(obs::blackbox::RecordKind::kMetric);
    rec.SetName("bench.alloc.probe");
    (*alog)->Append(rec);  // warm up
    const uint64_t allocs_before = obs::AllocCount();
    for (int i = 0; i < 10000; ++i) {
      rec.at_us = i;
      (*alog)->Append(rec);
    }
    const uint64_t append_allocs = obs::AllocCount() - allocs_before;
    bench::Note("allocations across 10000 appends: " +
                bench::FmtU(append_allocs));
    Check(!obs::AllocCountingInstalled() || append_allocs == 0,
          "append path is allocation-free");
  }

  // Time travel over our own wreckage-free history: the flushed records
  // recover, and the gauge plane can be asked for any past instant.
  auto reader = obs::blackbox::TelemetryReader::Open(lopt.dir);
  Check(reader.ok(), "telemetry directory recovers");
  Check(!reader->report().truncated, "clean shutdown leaves no torn tail");
  Check(reader->records().size() == ls.flushed,
        "every flushed record recovers");
  auto mid = reader->GaugesAsOf(reader->LastAtUs() / 2);
  bench::Note("replay: " + bench::FmtU(reader->records().size()) +
              " records recovered; " + bench::FmtU(mid.size()) +
              " gauges reconstructable at the halfway instant (try "
              "tools/obs_replay --dir=" +
              lopt.dir + " --at=" +
              bench::FmtU(static_cast<uint64_t>(reader->LastAtUs() / 2)) +
              ")");

  bench::Note("durable telemetry rides the flusher thread, not the "
              "simulated machine: the cycle cost of the A9 path is "
              "unchanged and the append path never allocates.");
  bench::MetricsSidecar("bench_blackbox");
  return 0;
}
