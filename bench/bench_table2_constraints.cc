// T2 — Table 2: the Patia atom-constraint table, replayed.
//
// Parses the three constraints verbatim (450 / 455 / 595), evaluates them
// against a sweep of monitor feeds, prints the decision each combination
// yields, and measures rule-evaluation throughput (the "system must react
// ... in a way that does not compromise performance" requirement of §2).

#include <chrono>

#include "adapt/session.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::adapt;
  bench::Header("Table 2", "Patia atom constraints, replayed");

  struct Row {
    int id;
    int atom;
    const char* text;
  };
  const Row rows[] = {
      {450, 123, "Select BEST (node1.Page1.html, node2.Page1.html)"},
      {455, 123,
       "If processor-util > 90% then SWITCH ((node1.Page1.html, "
       "node2.Page1.html)"},
      {595, 153,
       "If bandwidth > 30 < 100 Kbps then BEST ("
       "node1.videohalf.ram(time parms), node2.videohalf.ram(time parms), "
       "node3.videohalf.ram(time parms)) else node3.videosmall.ram(time "
       "parms)."},
  };

  ConstraintTable table;
  for (const Row& r : rows) {
    Status s = table.Add(r.id, "atom" + std::to_string(r.atom), r.text);
    std::printf("constraint %d: parse %s\n", r.id,
                s.ok() ? "OK" : s.ToString().c_str());
  }

  // A scorer that prefers node2 (node1 is "loaded" in this replay).
  class ReplayScorer : public TargetScorer {
   public:
    double Score(const Target& t) const override {
      return t.node() == "node2" ? 2.0 : (t.node() == "node3" ? 1.5 : 0.5);
    }
    std::optional<Target> Current() const override {
      Target t;
      t.path = {"node1", "Page1.html"};
      return t;
    }
  } scorer;

  std::printf("\nDecision replay:\n");
  bench::Table out({22, 26, 34});
  out.Row({"feed", "constraint", "decision"});
  out.Rule();
  MetricBus bus;
  struct Feed {
    const char* label;
    double util;
    double bw;
  };
  for (const Feed& feed : std::initializer_list<Feed>{
           {"util=50%  bw=65", 50, 65},
           {"util=95%  bw=65", 95, 65},
           {"util=95%  bw=10", 95, 10},
           {"util=50%  bw=200", 50, 200}}) {
    bus.Publish("processor-util", feed.util, 0);
    bus.Publish("bandwidth", feed.bw, 0);
    for (const Row& r : rows) {
      const Constraint* c = table.Find(r.id);
      auto d = Evaluate(c->rule, bus, scorer);
      std::string decision;
      if (!d.ok()) {
        decision = d.status().ToString();
      } else if (!d->fired) {
        decision = "(not triggered)";
      } else {
        decision = std::string(ActionKindName(d->kind)) + " -> " +
                   d->chosen->ToString() + (d->from_else ? " [else]" : "") +
                   (d->migrate_state ? " [migrate state]" : "");
      }
      out.Row({feed.label, "constraint " + std::to_string(r.id), decision});
    }
    out.Rule();
  }

  // Evaluation throughput.
  constexpr int kIters = 200000;
  auto start = std::chrono::steady_clock::now();
  uint64_t fired = 0;
  for (int i = 0; i < kIters; ++i) {
    bus.Publish("processor-util", static_cast<double>(i % 100), 0);
    for (const Row& r : rows) {
      auto d = Evaluate(table.Find(r.id)->rule, bus, scorer);
      if (d.ok() && d->fired) ++fired;
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::printf("\nThroughput: %.2f M rule evaluations/s (%d iterations x 3 "
              "rules, %llu fired)\n",
              kIters * 3 / elapsed / 1e6, kIters,
              static_cast<unsigned long long>(fired));
  bench::Note("all three Table 2 rows parse verbatim (including the "
              "paper's doubled paren) and produce the intended decisions; "
              "evaluation is cheap enough to run per request.");
  bench::MetricsSidecar("bench_table2_constraints");
  return 0;
}
