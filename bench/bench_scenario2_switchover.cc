// F4/F5/S2 — Scenario 2: system adaptation (docked → wireless, Figs 4-5).
//
// The laptop is unplugged mid-stream. Adaptive: the Darwin switchover
// reconfigures the component architecture and the stream moves to the
// compressed version at the next safe point. Baseline: nothing adapts.
// Includes the safe-point granularity ablation (DESIGN.md decision 4).

#include "bench/bench_util.h"
#include "dbmachine/scenarios.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::machine;
  bench::Header("Scenario 2", "Docked->wireless switchover (Figs 4-5)");

  Scenario2Config adaptive;
  Scenario2Config fixed = adaptive;
  fixed.adaptive = false;
  auto a = RunScenario2(adaptive);
  auto f = RunScenario2(fixed);
  if (!a.ok() || !f.ok()) {
    std::printf("scenario failed: %s\n",
                (!a.ok() ? a.status() : f.status()).ToString().c_str());
    return 1;
  }

  bench::Table table({30, 16, 16});
  table.Row({"", "adaptive", "non-adaptive"});
  table.Rule();
  table.Row({"delivery time (ms)", bench::Fmt("%.1f", ToMillis(a->delivery_time)),
             bench::Fmt("%.1f", ToMillis(f->delivery_time))});
  table.Row({"wire bytes", bench::FmtU(a->stream.wire_bytes),
             bench::FmtU(f->stream.wire_bytes)});
  table.Row({"raw bytes", bench::FmtU(a->stream.raw_bytes),
             bench::FmtU(f->stream.raw_bytes)});
  table.Row({"codec switches", bench::FmtU(a->stream.codec_switches),
             bench::FmtU(f->stream.codec_switches)});
  table.Row({"encode/decode cpu (ms)", bench::Fmt("%.1f", ToMillis(a->stream.cpu_time)),
             bench::Fmt("%.1f", ToMillis(f->stream.cpu_time))});
  table.Row({"ADL reconfiguration", a->reconfigured ? "executed" : "none",
             f->reconfigured ? "executed" : "none"});
  table.Row({"conforms to WirelessSession",
             a->conforms_wireless ? "yes" : "no",
             f->conforms_wireless ? "yes" : "no"});
  table.Rule();
  std::printf("speedup from adaptation: %.2fx\n",
              static_cast<double>(f->delivery_time) /
                  static_cast<double>(a->delivery_time));

  // Ablation: safe-point granularity (chunk_rows). Finer safe points
  // switch sooner but pay more per-chunk overhead.
  std::printf("\nSafe-point granularity ablation (adaptive runs):\n");
  bench::Table ab({14, 18, 16, 14});
  ab.Row({"chunk rows", "delivery (ms)", "wire bytes", "chunks"});
  ab.Rule();
  for (size_t chunk : {4u, 8u, 16u, 32u, 64u, 128u}) {
    Scenario2Config cfg;
    cfg.chunk_rows = chunk;
    auto r = RunScenario2(cfg);
    if (!r.ok()) continue;
    ab.Row({bench::FmtU(chunk),
            bench::Fmt("%.1f", ToMillis(r->delivery_time)),
            bench::FmtU(r->stream.wire_bytes),
            bench::FmtU(r->stream.chunks)});
  }
  ab.Rule();
  bench::Note("the undock collapses bandwidth ~67x; compressing the "
              "remainder at a safe point recovers most of the loss, and "
              "the running architecture verifiably matches the Fig 5 "
              "wireless description afterwards.");
  bench::MetricsSidecar("bench_scenario2_switchover");
  return 0;
}
