// S3 — Scenario 3: intra-query adaptation.
//
// A join planned from stale statistics builds its hash table on the wrong
// (large) side. The adaptive executor notices the divergence at a build
// safe point, checkpoints through the State Manager, swaps the build side
// ("change the join's inner-loop to the outer-loop") and restarts.
// Sweeps the statistics-error factor; reports simulated latency for the
// static-wrong plan, the adaptive plan, and the oracle (correct stats).

#include "bench/bench_util.h"
#include "dbmachine/scenarios.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::machine;
  bench::Header("Scenario 3", "Intra-query re-optimisation under bad stats");

  bench::Table table({14, 14, 14, 14, 10, 14});
  table.Row({"stats error", "static (ms)", "adaptive (ms)", "oracle (ms)",
             "re-opts", "adaptive win"});
  table.Rule();

  Scenario3Config oracle_cfg;
  oracle_cfg.stats_error = 1.0;
  auto oracle = RunScenario3(oracle_cfg);
  if (!oracle.ok()) {
    std::printf("oracle run failed: %s\n",
                oracle.status().ToString().c_str());
    return 1;
  }

  for (double err : {0.5, 0.1, 0.02, 0.005}) {
    Scenario3Config adaptive;
    adaptive.stats_error = err;
    auto a = RunScenario3(adaptive);
    Scenario3Config fixed = adaptive;
    fixed.adaptive = false;
    auto f = RunScenario3(fixed);
    if (!a.ok() || !f.ok()) {
      std::printf("run failed: %s\n",
                  (!a.ok() ? a.status() : f.status()).ToString().c_str());
      return 1;
    }
    table.Row({bench::Fmt("%.3f", err),
               bench::Fmt("%.2f", ToMillis(f->exec.Latency())),
               bench::Fmt("%.2f", ToMillis(a->exec.Latency())),
               bench::Fmt("%.2f", ToMillis(oracle->exec.Latency())),
               bench::FmtU(a->exec.reoptimizations),
               bench::Fmt("%.2fx", static_cast<double>(f->exec.Latency()) /
                                       static_cast<double>(a->exec.Latency()))});
  }
  table.Rule();

  // The Fig-1 feedback-loop variant: the request arrives through an ORB
  // hop and the plan switch is decided by the session manager's Table-2
  // rule over the published build-divergence gauge. With --trace, the
  // trace sidecar links ORB hop → executor operators → rule firing →
  // reconfiguration in one causal tree.
  Scenario3Config fig1;
  fig1.stats_error = 0.02;
  fig1.fig1_loop = true;
  auto traced = RunScenario3(fig1);
  if (!traced.ok()) {
    std::printf("fig1-loop run failed: %s\n",
                traced.status().ToString().c_str());
    return 1;
  }
  std::printf("fig1 loop: %llu rule firing(s), %llu re-opt(s)%s%s\n",
              static_cast<unsigned long long>(traced->rule_firings),
              static_cast<unsigned long long>(traced->exec.reoptimizations),
              traced->trace_id.empty() ? "" : ", trace ",
              traced->trace_id.c_str());

  std::printf("final plans: adaptive ends at the oracle's choice "
              "(hash build on the small side); result cardinality "
              "identical in all runs (%llu rows).\n",
              static_cast<unsigned long long>(oracle->result_rows));
  bench::Note("the wronger the statistics, the bigger the adaptive win; "
              "re-optimisation cost (the wasted partial build) is bounded "
              "by one safe-point interval plus the restart.");
  bench::MetricsSidecar("bench_scenario3_intraquery");
  return 0;
}
