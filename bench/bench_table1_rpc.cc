// T1 — Table 1: "Relative RPC performance" (cycles per null RPC).
//
// BSD / Mach 2.5 / L4 are calibrated cost models (sums of their
// mechanism's constituent operations); Go! is a LIVE null RPC between two
// components through the ORB on the virtual CPU, with the cycle ledger's
// breakdown printed alongside. The reproduced claim is the ordering and
// the orders-of-magnitude gaps, and that Go!'s total emerges from
// 3-cycle segment loads plus small fixed ORB work.

#include "bench/bench_util.h"
#include "os/ipc_models.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::os;
  bench::Header("Table 1", "Relative RPC performance (cycles per null RPC)");

  bench::Table table({14, 14, 14, 12});
  table.Row({"OS", "paper", "reproduced", "ratio vs Go!"});
  table.Rule();

  auto models = MakeTable1Models();
  // Measure each model, remembering Go!'s figure for the ratio column.
  std::vector<Cycles> measured;
  for (auto& model : models) {
    auto cycles = model->NullRpc();
    measured.push_back(cycles.ok() ? *cycles : 0);
  }
  Cycles go_cycles = measured.back();
  for (size_t i = 0; i < models.size(); ++i) {
    table.Row({models[i]->name(),
               bench::FmtU(models[i]->PublishedCycles()),
               bench::FmtU(measured[i]),
               bench::Fmt("%.0fx", static_cast<double>(measured[i]) /
                                       static_cast<double>(go_cycles))});
  }
  table.Rule();

  std::printf("\nPer-mechanism breakdown (cycles x count per RPC):\n");
  for (auto& model : models) {
    std::printf("\n  %s:\n", model->name().c_str());
    for (const CostItem& item : model->Breakdown()) {
      std::printf("    %-44s %6llu x %d = %llu\n", item.label.c_str(),
                  static_cast<unsigned long long>(item.cycles), item.count,
                  static_cast<unsigned long long>(item.Total()));
    }
  }

  // Throughput sanity run: a component performing 10,000 live RPCs.
  GoIpcModel go;
  GoSystem& sys = go.system();
  auto server = sys.LoadWithService(images::NullServer("bulk-server"));
  auto caller = sys.LoadWithService(images::RepeatCaller(
      "bulk-caller", HashInterfaceType("null-service"), 10000));
  if (server.ok() && caller.ok() &&
      sys.BindPort(caller->first, 0, server->second).ok()) {
    Cycles before = sys.ledger().total();
    (void)sys.orb().Call(caller->second);
    Cycles total = sys.ledger().total() - before;
    std::printf("\nLive bulk run: 10,000 RPCs in %llu cycles (%.1f "
                "cycles/RPC incl. caller loop overhead)\n",
                static_cast<unsigned long long>(total),
                static_cast<double>(total) / 10000.0);
  }
  bench::Note("shape check: BSD >> Mach >> L4 >> Go!, spanning ~3 orders "
              "of magnitude, with Go! within a few cycles of the paper's "
              "73.");
  bench::MetricsSidecar("bench_table1_rpc");
  return 0;
}
