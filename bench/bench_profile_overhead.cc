// Profiling-plane overhead — what EXPLAIN ANALYZE costs when it's on.
//
// The profiling plane is only honest if its price is measured, not
// assumed. This bench runs the A9 headline workload (orders ⋈ people,
// grouped aggregation, dop 4) with profiling off and on in interleaved
// reps, compares median wall times, and enforces the ISSUE-7 bar: the
// profiled run may cost at most 5% more. It also pins the determinism
// contract — the profile's work-cycle total is identical on every rep
// (it is the plan's row flow, not host noise) and the per-node
// attribution sums exactly to the totals — and exports the profile tree
// itself as a JSON sidecar next to the metrics.
//
// bench.profile.work_cycles is a cycles-named gauge, so bench_diff gates
// it against the committed baseline: a plan or attribution change that
// shifts the deterministic work measure fails CI visibly.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "query/parallel.h"

namespace {

using namespace dbm;
using data::Relation;
using data::Schema;
using data::ValueType;

constexpr size_t kOrders = 400000;
constexpr size_t kPeople = 2000;
constexpr uint64_t kSeed = 42;
constexpr int kReps = 7;
constexpr size_t kDop = 4;

Relation MakeOrders() {
  Relation rel("orders", Schema({{"person_id", ValueType::kInt},
                                 {"qty", ValueType::kInt},
                                 {"val", ValueType::kDouble}}));
  Rng rng(kSeed);
  for (size_t i = 0; i < kOrders; ++i) {
    rel.InsertUnchecked(query::Tuple(
        {static_cast<int64_t>(rng.Uniform(kPeople)),
         static_cast<int64_t>(rng.Uniform(50)),
         0.25 * static_cast<double>(rng.Uniform(1000))}));
  }
  return rel;
}

Relation MakePeople() {
  Relation rel("people", Schema({{"id", ValueType::kInt},
                                 {"grp", ValueType::kInt},
                                 {"name", ValueType::kString}}));
  Rng rng(kSeed + 1);
  for (size_t i = 0; i < kPeople; ++i) {
    rel.InsertUnchecked(query::Tuple({static_cast<int64_t>(i),
                                      static_cast<int64_t>(rng.Uniform(32)),
                                      "p#" + std::to_string(i)}));
  }
  return rel;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(&argc, argv);
  bench::Header("A9-PROF", "EXPLAIN ANALYZE overhead on the join workload");
  obs::InstallCountingAllocator();

  // Timing must not absorb injected faults (the chaos job arms
  // query.morsel process-wide).
  (void)fault::Injector::Default().Configure("", 0);

  Relation orders = MakeOrders();
  Relation people = MakePeople();
  query::WorkerPool pool(8);

  query::ParallelPlan plan;
  plan.probe.mem = &orders;
  query::ParallelJoinStage stage;
  stage.build.mem = &people;
  stage.spec = query::JoinSpec{0, 0};  // people.id = orders.person_id
  plan.joins.push_back(std::move(stage));
  plan.group_by = {1};
  plan.aggs = {{query::AggFunc::kCount, 0, "n"},
               {query::AggFunc::kSum, 5, "sum_val"},
               {query::AggFunc::kMax, 4, "max_qty"}};

  // Interleaved off/on reps so drift (thermal, cache, background load)
  // hits both sides equally; medians, not means, absorb outliers.
  std::vector<double> off_ms, on_ms;
  query::QueryProfile last_profile;
  uint64_t first_cycles = 0, off_rows = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      query::ParallelOptions opt;
      opt.dop = kDop;
      opt.pool = &pool;
      std::vector<query::Tuple> out;
      auto t0 = std::chrono::steady_clock::now();
      auto stats = query::ExecuteParallel(plan, &out, opt);
      auto t1 = std::chrono::steady_clock::now();
      if (!stats.ok()) {
        std::printf("FAIL: unprofiled run: %s\n",
                    stats.status().ToString().c_str());
        return 1;
      }
      off_rows = stats->rows;
      off_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    {
      query::QueryProfile profile;
      profile.query = "a9-join";
      query::ParallelOptions opt;
      opt.dop = kDop;
      opt.pool = &pool;
      opt.profile = &profile;
      std::vector<query::Tuple> out;
      auto t0 = std::chrono::steady_clock::now();
      auto stats = query::ExecuteParallel(plan, &out, opt);
      auto t1 = std::chrono::steady_clock::now();
      if (!stats.ok()) {
        std::printf("FAIL: profiled run: %s\n",
                    stats.status().ToString().c_str());
        return 1;
      }
      on_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());

      // Determinism + attribution contracts, every rep.
      if (first_cycles == 0) first_cycles = profile.total_cycles;
      if (profile.total_cycles != first_cycles) {
        std::printf("FAIL: work cycles drifted across reps (%llu vs %llu)\n",
                    (unsigned long long)profile.total_cycles,
                    (unsigned long long)first_cycles);
        return 1;
      }
      if (profile.SumCycles() != profile.total_cycles ||
          profile.SumAllocs() != profile.total_allocs ||
          profile.SumPages() != profile.total_pages) {
        std::printf("FAIL: per-node attribution does not sum to totals\n");
        return 1;
      }
      if (profile.total_rows != off_rows) {
        std::printf("FAIL: profiled run returned %llu rows, unprofiled %llu\n",
                    (unsigned long long)profile.total_rows,
                    (unsigned long long)off_rows);
        return 1;
      }
      last_profile = std::move(profile);
    }
  }

  const double off = Median(off_ms);
  const double on = Median(on_ms);
  const double overhead_pct = off <= 0 ? 0 : 100.0 * (on - off) / off;

  bench::Table t({26, 14, 14});
  t.Row({"profiling", "median ms", "overhead %"});
  t.Rule();
  t.Row({"off", bench::Fmt("%.2f", off), "-"});
  t.Row({"on (EXPLAIN ANALYZE)", bench::Fmt("%.2f", on),
         bench::Fmt("%.2f", overhead_pct)});
  t.Rule();

  std::printf("\n%s\n", last_profile.ToText().c_str());

  obs::Registry& reg = obs::Registry::Default();
  reg.GetGauge("bench.profile.work_cycles")
      .Set(static_cast<double>(last_profile.total_cycles));
  reg.GetGauge("bench.profile.off_ms").Set(off);
  reg.GetGauge("bench.profile.on_ms").Set(on);
  reg.GetGauge("bench.profile.overhead_pct").Set(overhead_pct);

  // The profile tree itself rides along as a sidecar, like the metrics.
  const std::string profile_path =
      bench::Context().out_dir + "bench_profile_overhead.profile.json";
  if (std::FILE* f = std::fopen(profile_path.c_str(), "w")) {
    const std::string json = last_profile.ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("  [profile sidecar: %s]\n", profile_path.c_str());
  }

  bench::MetricsSidecar("bench_profile_overhead");

  // The 5% bar, on medians. Very fast hosts report without enforcing —
  // at sub-10ms medians the measurement noise exceeds the bar itself.
  if (off >= 10.0 && overhead_pct > 5.0) {
    std::printf("FAIL: profiling overhead %.2f%% > 5%%\n", overhead_pct);
    return 1;
  }
  bench::Note(bench::Fmt("profiling overhead %.2f%%", overhead_pct) +
              " (bar: <= 5%)");
  return 0;
}
