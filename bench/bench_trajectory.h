// BENCH_trajectory.json: the append-only performance trajectory.
//
// Every bench run appends ONE newline-delimited JSON record — bench id,
// wall-clock stamp, and a flattened name→value map of the run's metrics
// (histograms contribute .count/.mean/.p50/.p99 entries). The file
// accumulates across runs next to the binaries, so a working tree keeps
// its own local history of how the numbers moved as the code changed;
// tools/bench_diff compares any two *.metrics.json sidecars from it or
// from CI artifacts.

#ifndef DBM_BENCH_BENCH_TRAJECTORY_H_
#define DBM_BENCH_BENCH_TRAJECTORY_H_

#include <cstdio>
#include <ctime>
#include <string>

#include "common/json.h"
#include "obs/metrics.h"

namespace dbm::bench {

inline std::string TrajectoryRecord(const std::string& bench_id) {
  std::string out = "{\"bench\":\"" + JsonEscape(bench_id) + "\"";
  out += ",\"at_unix\":" + std::to_string(std::time(nullptr));
  out += ",\"metrics\":{";
  bool first = true;
  auto add = [&out, &first](const std::string& name, double v) {
    if (!first) out += ",";
    first = false;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += "\"" + JsonEscape(name) + "\":" + buf;
  };
  for (const obs::MetricSnapshot& m : obs::Registry::Default().Snapshot()) {
    switch (m.kind) {
      case obs::MetricKind::kCounter:
      case obs::MetricKind::kGauge:
        add(m.name, m.value);
        break;
      case obs::MetricKind::kHistogram:
        add(m.name + ".count", static_cast<double>(m.count));
        add(m.name + ".mean", m.mean);
        add(m.name + ".p50", m.p50);
        add(m.name + ".p99", m.p99);
        break;
    }
  }
  out += "}}\n";
  return out;
}

/// Appends this run's record to `path` (JSONL; created on first use).
inline void AppendTrajectory(const std::string& path,
                             const std::string& bench_id) {
  std::string record = TrajectoryRecord(bench_id);
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::printf("  [trajectory append failed: cannot open %s]\n",
                path.c_str());
    return;
  }
  std::fwrite(record.data(), 1, record.size(), f);
  std::fclose(f);
}

}  // namespace dbm::bench

#endif  // DBM_BENCH_BENCH_TRAJECTORY_H_
