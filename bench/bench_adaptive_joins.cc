// A1 — §2's adaptive operators under wide-area conditions.
//
// Three experiments:
//  (a) delayed/bursty sources: blocking hash join vs symmetric hash join
//      vs XJoin — time to first tuple and completion;
//  (b) ripple join online aggregation: estimate + CI convergence;
//  (c) eddies: routing cost vs the best and worst static predicate
//      orders, including a mid-stream selectivity shift.

#include "bench/bench_util.h"
#include "query/eddy.h"
#include "query/executor.h"
#include "query/join.h"
#include "query/ripple.h"

namespace {

using namespace dbm;
using namespace dbm::query;

data::Relation Keyed(const std::string& name, size_t n, uint64_t range,
                     uint64_t seed) {
  data::Relation rel(
      name, data::Schema({{"k", data::ValueType::kInt},
                          {"payload", data::ValueType::kInt}}));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    rel.InsertUnchecked(data::Tuple(
        {static_cast<int64_t>(rng.Uniform(range)), static_cast<int64_t>(i)}));
  }
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("A1", "Adaptive operators: joins for wide-area sources");

  // ---- (a) join operators under source delays ----
  data::Relation left = Keyed("remote", 2000, 400, 1);
  data::Relation right = Keyed("local", 2000, 400, 2);
  DelayedSource::Timing slow{Seconds(1), 200, 100, Seconds(2)};

  struct JoinRun {
    const char* name;
    ExecStats stats;
  };
  std::vector<JoinRun> runs;
  auto execute = [&](const char* name, OperatorPtr op) {
    std::vector<Tuple> out;
    auto stats = Execute(op.get(), &out, {});
    if (stats.ok()) runs.push_back({name, *stats});
  };
  execute("blocking hash join",
          std::make_unique<HashJoin>(
              std::make_unique<DelayedSource>(&left, slow),
              std::make_unique<MemSource>(&right), JoinSpec{0, 0}));
  execute("symmetric hash join",
          std::make_unique<SymmetricHashJoin>(
              std::make_unique<DelayedSource>(&left, slow),
              std::make_unique<MemSource>(&right), JoinSpec{0, 0}));
  execute("xjoin (mem=256)",
          std::make_unique<XJoin>(
              std::make_unique<DelayedSource>(&left, slow),
              std::make_unique<DelayedSource>(&right, slow), JoinSpec{0, 0},
              256));

  std::printf("sources: 2000x2000 rows, 1s initial delay, 2s stall every "
              "100 tuples\n\n");
  bench::Table ja({24, 12, 20, 18});
  ja.Row({"operator", "rows", "first tuple (ms)", "complete (ms)"});
  ja.Rule();
  for (const JoinRun& run : runs) {
    ja.Row({run.name, bench::FmtU(run.stats.rows),
            bench::Fmt("%.1f", ToMillis(run.stats.TimeToFirstRow())),
            bench::Fmt("%.1f", ToMillis(run.stats.Latency()))});
  }
  ja.Rule();

  // ---- (b) ripple join convergence ----
  std::printf("\nRipple join online aggregation: COUNT(*) of orders |x| "
              "people\n");
  data::Relation orders = data::gen::Orders(20000, 500, 0.4, 3);
  data::Relation people = data::gen::People(500, 4);
  double truth = 20000;  // every order matches exactly one person
  RippleJoin ripple(&orders, &people, JoinSpec{1, 0}, AggFunc::kCount, 0);
  bench::Table rj({12, 16, 16, 14});
  rj.Row({"samples", "estimate", "95% CI (+/-)", "error vs truth"});
  rj.Rule();
  uint64_t taken = 0;
  for (uint64_t step : {200u, 500u, 1000u, 2000u, 5000u, 10000u, 20500u}) {
    auto est = ripple.Run(step - taken);
    taken = step;
    if (!est.ok()) break;
    rj.Row({bench::FmtU(est->left_seen + est->right_seen),
            bench::Fmt("%.0f", est->estimate),
            bench::Fmt("%.0f", est->half_width),
            bench::Fmt("%+.1f%%", (est->estimate - truth) / truth * 100)});
    if (est->exact) break;
  }
  rj.Rule();

  // ---- (c) eddies vs static predicate orders ----
  std::printf("\nEddy routing vs static orders (selectivity shifts at the "
              "halfway point):\n");
  data::Relation shifty(
      "t", data::Schema({{"a", data::ValueType::kInt},
                         {"b", data::ValueType::kInt}}));
  for (int i = 0; i < 20000; ++i) {
    bool first = i < 10000;
    shifty.InsertUnchecked(
        data::Tuple({static_cast<int64_t>(first ? 100 : 1),
                     static_cast<int64_t>(first ? 1 : 100)}));
  }
  std::vector<EddyPredicate> ab = {
      {"a<10", Lt(Col(0), Lit(int64_t{10})), 1.0},
      {"b<10", Lt(Col(1), Lit(int64_t{10})), 1.0},
  };
  std::vector<EddyPredicate> ba = {ab[1], ab[0]};

  MemSource s1(&shifty), s2(&shifty);
  auto cost_ab = Eddy::RunStatic(&s1, ab, nullptr);
  auto cost_ba = Eddy::RunStatic(&s2, ba, nullptr);
  Eddy eddy(std::make_unique<MemSource>(&shifty), ab, 7, 128);
  std::vector<Tuple> sink;
  (void)Execute(&eddy, &sink, {});

  bench::Table ed({26, 18});
  ed.Row({"strategy", "predicate cost"});
  ed.Rule();
  ed.Row({"static order a,b", bench::Fmt("%.0f", cost_ab.ValueOr(0))});
  ed.Row({"static order b,a", bench::Fmt("%.0f", cost_ba.ValueOr(0))});
  ed.Row({"eddy (adaptive)", bench::Fmt("%.0f", eddy.eddy_stats().total_cost)});
  ed.Rule();
  bench::Note("pipelined operators cut time-to-first-tuple by orders of "
              "magnitude under delays; XJoin turns stalls into output; the "
              "ripple CI shrinks as samples grow and collapses to the "
              "exact answer; the eddy tracks the selectivity shift that "
              "defeats any static order.");
  bench::MetricsSidecar("bench_adaptive_joins");
  return 0;
}
