// Shared console-table helpers for the experiment harness. Every bench
// binary regenerates one paper artefact (table or figure) and prints it
// in a uniform layout: experiment header, paper-vs-measured rows, and a
// short interpretation line so EXPERIMENTS.md can quote outputs directly.

#ifndef DBM_BENCH_BENCH_UTIL_H_
#define DBM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"

namespace dbm::bench {

inline void Header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer: pass pre-formatted cells.
class Table {
 public:
  explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("%-*s", widths_[i], cells[i].c_str());
    }
    std::printf("\n");
  }
  void Rule() {
    int total = 0;
    for (int w : widths_) total += w;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

 private:
  std::vector<int> widths_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(uint64_t v) { return std::to_string(v); }

inline void Note(const std::string& text) {
  std::printf("  -> %s\n", text.c_str());
}

/// Writes the machine-readable metrics sidecar `<id>.metrics.json` into
/// the working directory: a JSON snapshot of every counter, gauge and
/// histogram the run touched (format: docs/OBSERVABILITY.md). Call it
/// once, at the end of main, after all work has completed.
inline void MetricsSidecar(const std::string& id) {
  const std::string path = id + ".metrics.json";
  Status s = obs::WriteJsonFile(path);
  if (s.ok()) {
    std::printf("  [metrics sidecar: %s]\n", path.c_str());
  } else {
    std::printf("  [metrics sidecar failed: %s]\n", s.ToString().c_str());
  }
}

}  // namespace dbm::bench

#endif  // DBM_BENCH_BENCH_UTIL_H_
