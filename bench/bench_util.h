// Shared console-table helpers for the experiment harness. Every bench
// binary regenerates one paper artefact (table or figure) and prints it
// in a uniform layout: experiment header, paper-vs-measured rows, and a
// short interpretation line so EXPERIMENTS.md can quote outputs directly.

#ifndef DBM_BENCH_BENCH_UTIL_H_
#define DBM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_trajectory.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/trace_export.h"
#include "obs/tracectx.h"

namespace dbm::bench {

/// Harness state shared by Init and MetricsSidecar.
struct BenchContext {
  std::string out_dir;  // argv[0]'s directory ("" = working directory)
  bool trace = false;
  double trace_sample = 1.0;
};

inline BenchContext& Context() {
  static BenchContext ctx;
  return ctx;
}

/// Call first in every bench main. Derives the sidecar directory from
/// argv[0] — outputs land next to the binary, not in whatever directory
/// the bench happened to be launched from — and handles the tracing
/// flags:
///   --trace               sample every root span (rate 1.0)
///   --trace-sample=<rate> sample this fraction of root spans
/// With tracing on, MetricsSidecar additionally writes
/// `<id>.trace.json` (Chrome/Perfetto trace_event format).
///
/// Consumed flags are removed from argv (argc passed by pointer), so a
/// bench can hand the remainder to another flag parser (google-benchmark
/// in bench_componentisation rejects flags it does not know).
inline void Init(int* argc, char** argv) {
  BenchContext& ctx = Context();
  if (*argc > 0 && argv[0] != nullptr) {
    std::string argv0 = argv[0];
    size_t slash = argv0.find_last_of('/');
    if (slash != std::string::npos) ctx.out_dir = argv0.substr(0, slash + 1);
  }
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      ctx.trace = true;
    } else if (arg.rfind("--trace-sample=", 0) == 0) {
      ctx.trace = true;
      ctx.trace_sample = std::atof(arg.c_str() + 15);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  if (ctx.trace) {
    obs::TracerOptions topt;
    topt.sample_rate = ctx.trace_sample;
    obs::Tracer::Default().Configure(topt);
  }
  // Crash forensics: a fatal signal or DBM_CHECK failure dumps spans,
  // decisions, health verdicts and time-series tails next to the binary
  // (same anchoring as the metrics sidecar) for CI to collect.
  if (*argc > 0 && argv[0] != nullptr) {
    std::string base = argv[0];
    size_t slash = base.find_last_of('/');
    if (slash != std::string::npos) base = base.substr(slash + 1);
    obs::FlightRecorderOptions fopt;
    fopt.path = ctx.out_dir + base + ".flight.json";
    obs::InstallFlightRecorder(fopt);
  }
}

inline void Header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer: pass pre-formatted cells.
class Table {
 public:
  explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("%-*s", widths_[i], cells[i].c_str());
    }
    std::printf("\n");
  }
  void Rule() {
    int total = 0;
    for (int w : widths_) total += w;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

 private:
  std::vector<int> widths_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(uint64_t v) { return std::to_string(v); }

inline void Note(const std::string& text) {
  std::printf("  -> %s\n", text.c_str());
}

/// Writes the machine-readable metrics sidecar `<id>.metrics.json` next
/// to the bench binary (argv[0]'s directory, captured by Init — NOT the
/// launch directory): a JSON snapshot of every counter, gauge and
/// histogram the run touched (format: docs/OBSERVABILITY.md). Also
/// appends this run's record to BENCH_trajectory.json, and — when Init
/// saw --trace — dumps `<id>.trace.json`. Call it once, at the end of
/// main, after all work has completed.
inline void MetricsSidecar(const std::string& id) {
  const BenchContext& ctx = Context();
  const std::string path = ctx.out_dir + id + ".metrics.json";
  Status s = obs::WriteJsonFile(path);
  if (s.ok()) {
    std::printf("  [metrics sidecar: %s]\n", path.c_str());
  } else {
    std::printf("  [metrics sidecar failed: %s]\n", s.ToString().c_str());
  }
  AppendTrajectory(ctx.out_dir + "BENCH_trajectory.json", id);
  if (ctx.trace) {
    const std::string trace_path = ctx.out_dir + id + ".trace.json";
    Status t = obs::WriteChromeTraceFile(trace_path);
    if (t.ok()) {
      std::printf("  [trace sidecar: %s — open in ui.perfetto.dev]\n",
                  trace_path.c_str());
    } else {
      std::printf("  [trace sidecar failed: %s]\n", t.ToString().c_str());
    }
  }
}

}  // namespace dbm::bench

#endif  // DBM_BENCH_BENCH_UTIL_H_
