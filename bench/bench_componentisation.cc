// A3 — the componentisation-overhead claim.
//
// §1.1/§2: "componentisation itself must not produce excessive
// overheads". Three layers of the same getpage-style call are compared:
//   1. direct C++ virtual call,
//   2. component-port call (blockable, rebindable indirection),
//   3. ORB-protected call on the virtual CPU (simulated cycles).
// Plus the SISR ablation: load-time scan amortisation vs a hypothetical
// per-call validation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "component/registry.h"
#include "os/go_system.h"
#include "storage/buffer.h"
#include "storage/replacement.h"

namespace {

using namespace dbm;

// --- layer 1: direct virtual call ---
class Service {
 public:
  virtual ~Service() = default;
  virtual int64_t Get(int64_t key) = 0;
};
class DirectService : public Service {
 public:
  int64_t Get(int64_t key) override { return key * 2654435761u % 97; }
};

void BM_DirectVirtualCall(benchmark::State& state) {
  DirectService svc;
  Service* s = &svc;
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->Get(k++));
  }
}
BENCHMARK(BM_DirectVirtualCall);

// --- layer 2: component port call ---
class ServiceComponent : public component::Component {
 public:
  ServiceComponent() : Component("svc", "getvalue") {}
  int64_t Get(int64_t key) { return key * 2654435761u % 97; }
};
class ClientComponent : public component::Component {
 public:
  ClientComponent() : Component("client", "client") {
    DeclarePort("svc", "getvalue");
  }
  Result<int64_t> Call(int64_t key) {
    DBM_ASSIGN_OR_RETURN(ServiceComponent * s,
                         Require<ServiceComponent>("svc"));
    return s->Get(key);
  }
};

void BM_ComponentPortCall(benchmark::State& state) {
  auto svc = std::make_shared<ServiceComponent>();
  ClientComponent client;
  client.FindPort("svc")->SetTarget(svc);
  int64_t k = 0;
  for (auto _ : state) {
    auto r = client.Call(k++);
    benchmark::DoNotOptimize(r.ValueOr(0));
  }
}
BENCHMARK(BM_ComponentPortCall);

// --- layer 3: buffer manager getpage through ports ---
void BM_GetPageThroughPorts(benchmark::State& state) {
  auto disk = std::make_shared<storage::DiskComponent>();
  auto policy = std::make_shared<storage::LruPolicy>();
  storage::BufferManager buffer("buf", 64);
  buffer.FindPort("disk")->SetTarget(disk);
  buffer.FindPort("policy")->SetTarget(policy);
  std::vector<storage::PageId> pages;
  for (int i = 0; i < 32; ++i) pages.push_back(disk->Allocate());
  size_t i = 0;
  for (auto _ : state) {
    storage::PageId p = pages[i++ % pages.size()];
    auto page = buffer.GetPage(p);
    benchmark::DoNotOptimize(page.ok());
    (void)buffer.Unpin(p, false);
  }
}
BENCHMARK(BM_GetPageThroughPorts);

// --- layer 4: ORB-protected call (simulated machine) ---
void BM_OrbProtectedCall(benchmark::State& state) {
  os::GoSystem sys;
  auto adder = sys.LoadWithService(os::images::Adder());
  if (!adder.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.orb().Call(adder->second, k++, 1).ok());
  }
  state.counters["sim_cycles_per_call"] = benchmark::Counter(
      static_cast<double>(sys.ledger().total()) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_OrbProtectedCall);

// --- SISR ablation: load-time scan vs hypothetical per-call validation ---
void BM_SisrScanAmortisation(benchmark::State& state) {
  // Simulated-cycle accounting: scanning a 64-instruction image once
  // (2 cycles/insn) vs re-validating 8 instructions on every call.
  const os::Cycles scan_once = 64 * os::SisrScanner::kCyclesPerInstruction;
  const os::Cycles per_call_check = 8 * os::SisrScanner::kCyclesPerInstruction;
  const os::Cycles rpc = 73;
  uint64_t calls = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    os::Cycles sisr_total = scan_once + calls * rpc;
    os::Cycles percall_total = calls * (rpc + per_call_check);
    benchmark::DoNotOptimize(sisr_total);
    benchmark::DoNotOptimize(percall_total);
  }
  os::Cycles sisr_total = scan_once + calls * rpc;
  os::Cycles percall_total = calls * (rpc + per_call_check);
  state.counters["sisr_cycles_per_call"] = benchmark::Counter(
      static_cast<double>(sisr_total) / static_cast<double>(calls));
  state.counters["percall_cycles_per_call"] = benchmark::Counter(
      static_cast<double>(percall_total) / static_cast<double>(calls));
}
BENCHMARK(BM_SisrScanAmortisation)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace

// Expanded BENCHMARK_MAIN so the run can write its metrics sidecar.
int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbm::bench::MetricsSidecar("bench_componentisation");
  return 0;
}
