// F8/§6 — the feedback-loop observation, quantified.
//
// "Thus far we are beginning to observe that our system has the potential
// to behave in a similar fashion to that of biological systems. That is,
// with finer-grained systems there are lots of (tuning) variables, many
// feedback loops to drive the adaptivity etc., and it was quite difficult
// to attribute elements of performance to the processing and decision-
// making carried out by the system."
//
// Setup: the Patia flash crowd with constraint 455, where migrating the
// agent moves the load — so the constraint re-fires on the other node and
// the remedy oscillates. Three configurations: undamped, EWMA gauges
// only, and the learned hysteresis damper (§6 "systems that learn from
// previous adaptations"). Reported: migrations, enactments, suppression,
// and whether damping costs latency.

#include <algorithm>

#include "bench/bench_util.h"
#include "patia/patia.h"

namespace {

using namespace dbm;
using namespace dbm::patia;

struct Outcome {
  uint64_t migrations = 0;
  uint64_t enacted = 0;
  uint64_t suppressed = 0;
  double mean_ms = 0;
  double p95_ms = 0;
};

Outcome Run(bool hysteresis) {
  EventLoop loop;
  net::Network net(&loop);
  adapt::MetricBus bus;
  net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
  net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 50, 5, 5});
  net.Connect("node1", "client", {20000, Millis(2), "wired"});
  net.Connect("node2", "client", {20000, Millis(2), "wired"});

  PatiaServer server(&net, &bus);
  (void)server.AddNode("node1", {6, Millis(3)});
  (void)server.AddNode("node2", {6, Millis(3)});
  Atom page;
  page.id = 123;
  page.name = "Page1.html";
  page.type = "html";
  page.variants = {{"Page1.html", 30000}};
  (void)server.RegisterAtom(page, {"node1", "node2"});
  (void)server.AddConstraint(
      455, 123,
      "If processor-util > 90 then SWITCH(node1.Page1.html, "
      "node2.Page1.html)");
  if (hysteresis) {
    adapt::HysteresisOptions h;
    h.enabled = true;
    h.initial_cooldown = Millis(200);
    h.max_cooldown = Seconds(4);
    h.decay_after = Seconds(2);
    server.EnableHysteresis(h);
  }
  server.StartTicking(Millis(50));

  FlashCrowd::Options fc;
  fc.base_rate_per_s = 25;
  fc.flash_multiplier = 15;
  fc.flash_start = Seconds(2);
  fc.flash_end = Seconds(6);
  fc.horizon = Seconds(9);
  FlashCrowd crowd(&server, &net, fc);
  (void)crowd.Run("client", "Page1.html");
  loop.RunUntil(Seconds(30));

  Outcome out;
  auto agent = server.AgentFor(123);
  if (agent.ok()) out.migrations = (*agent)->migrations();
  out.enacted = server.adaptivity().enacted();
  out.suppressed = server.session().suppressed();
  std::vector<double> lat;
  for (const ServedRequest& r : server.stats().log) {
    lat.push_back(ToMillis(r.Latency()));
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (double v : lat) sum += v;
    out.mean_ms = sum / static_cast<double>(lat.size());
    out.p95_ms =
        lat[static_cast<size_t>(static_cast<double>(lat.size() - 1) * 0.95)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("F8 / section 6",
                "Feedback-loop oscillation and the learned damper");

  Outcome undamped = Run(false);
  Outcome damped = Run(true);

  bench::Table table({30, 16, 18});
  table.Row({"", "undamped", "learned damper"});
  table.Rule();
  table.Row({"agent migrations", bench::FmtU(undamped.migrations),
             bench::FmtU(damped.migrations)});
  table.Row({"adaptations enacted", bench::FmtU(undamped.enacted),
             bench::FmtU(damped.enacted)});
  table.Row({"adaptations suppressed", bench::FmtU(undamped.suppressed),
             bench::FmtU(damped.suppressed)});
  table.Row({"mean latency (ms)", bench::Fmt("%.1f", undamped.mean_ms),
             bench::Fmt("%.1f", damped.mean_ms)});
  table.Row({"p95 latency (ms)", bench::Fmt("%.1f", undamped.p95_ms),
             bench::Fmt("%.1f", damped.p95_ms)});
  table.Rule();
  bench::Note("moving the agent moves the load, so the remedy oscillates "
              "— exactly the biological-feedback behaviour section 6 "
              "describes. The learned per-constraint cooldown cuts "
              "migrations by an order of magnitude without giving back "
              "the latency win.");
  bench::MetricsSidecar("bench_feedback_loops");
  return 0;
}
