// FC — the flash-crowd front door under a rising client count.
//
// Each sweep step builds a fresh two-node Patia world behind a FrontDoor
// and drives it with a ClientSwarm: closed-loop sessions up to 16k, then
// one aggregate open-loop point standing in for a million clients. The
// service plane sustains ~3.5k requests/s (2 nodes x 8 slots / 2 ms of
// nominal capacity, throttled by the 48-request in-flight credit), so
// the upper steps offer several times capacity — the regime where an
// unbounded server collapses. Here the Table-2 shedding rules (over
// derived.admission.depth trend gauges, not hard-coded thresholds) raise
// the shed level, the bounded queue refuses the rest, and p99 stays
// pinned near queue_capacity / throughput instead of growing with the
// crowd.
//
// A second experiment fixes the population and compares batch_max=1
// against batch_max=32 to show the ORB amortisation: one supervised
// invocation per batch instead of per request.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/loadgen.h"
#include "obs/tracectx.h"
#include "patia/frontdoor.h"
#include "patia/patia.h"

namespace {

using namespace dbm;
using namespace dbm::patia;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_flashcrowd FAIL: %s\n", what);
    std::exit(1);
  }
}

struct StepResult {
  uint64_t sessions = 0;
  bool open_loop = false;
  uint64_t issued = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;           // rule + overflow refusals
  uint64_t backpressured = 0;
  uint64_t decisions = 0;      // front-door rule firings this step
  double tput_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  int shed_level_end = 0;
  double cycles_per_admitted = 0;
};

struct StepConfig {
  uint64_t sessions = 0;
  size_t batch_max = 32;
  SimTime dispatch_interval = Millis(1);
  uint64_t seed = 42;
};

StepResult RunStep(const StepConfig& cfg, obs::HistogramWindow* lat_window,
                   int64_t step_mark) {
  // Fresh world, fresh simulated clock — stale samples from the previous
  // step would sit "in the future" of this one.
  obs::TimeSeriesStore::Default().ResetAll();
  obs::Registry& reg = obs::Registry::Default();
  const uint64_t cycles_before =
      reg.GetCounter("admission.invoke_cycles").value();
  const size_t decisions_before = obs::Tracer::Default().Decisions().size();

  EventLoop loop;
  net::Network net(&loop);
  adapt::MetricBus bus;
  net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
  net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
  for (int i = 0; i < 4; ++i) {
    std::string edge = "edge" + std::to_string(i + 1);
    net.AddDevice({edge, net::DeviceClass::kLaptop, 0.5, -1, 5.0 + i, 5});
    // Fat wired links: the binding constraint must be the server slots
    // (8k req/s), not the wire, or queue drain slows and the tail grows.
    net.Connect("node1", edge, {500000, Millis(1), "wired"});
    net.Connect("node2", edge, {500000, Millis(1), "wired"});
  }

  PatiaServer server(&net, &bus);
  (void)server.AddNode("node1", {8, Millis(2)});
  (void)server.AddNode("node2", {8, Millis(2)});
  Atom page;
  page.id = 7;
  page.name = "Page1.html";
  page.type = "html";
  page.variants = {{"Page1.html", 24000}, {"Page1.small.html", 2400}};
  (void)server.RegisterAtom(page, {"node1", "node2"});
  (void)server.AddConstraint(
      450, 7, "Select BEST(node1.Page1.html, node2.Page1.html)");

  FrontDoorOptions fd;
  fd.queue_capacity = 256;
  fd.session_inflight_limit = 4;
  fd.batch_max = cfg.batch_max;
  fd.dispatch_interval = cfg.dispatch_interval;
  fd.service_credit = 48;
  fd.admission_dop = 4;
  fd.use_orb = true;
  FrontDoor door(&server, &net, &bus, fd);
  // Table-2 shedding over the depth trend: escalate at a sustained
  // ~3/8 full queue, escalate harder near full, step back down when the
  // queue has drained. The admission.shed_level guards keep each rule
  // dormant once its remedy is in force.
  Check(door.AddShedRule(
                900,
                "If derived.admission.depth.mean > 96 and "
                "admission.shed_level < 50 then SWITCH(shed.0, shed.50)")
            .ok(),
        "rule 900 parses");
  Check(door.AddShedRule(
                901,
                "If derived.admission.depth.mean > 192 and "
                "admission.shed_level < 80 then SWITCH(shed.50, shed.80)")
            .ok(),
        "rule 901 parses");
  Check(door.AddShedRule(
                902,
                "If derived.admission.depth.mean < 16 and "
                "admission.shed_level > 0 then SWITCH(shed.50, shed.0)",
                /*priority=*/1)
            .ok(),
        "rule 902 parses");
  server.EnableDegradation({"frontdoor.breaker", 1.5});
  door.Start();
  server.StartTicking(Millis(50));

  net::ClientSwarm::Options sw;
  sw.sessions = cfg.sessions;
  sw.think_mean = Millis(200);
  sw.open_rate_per_s = cfg.sessions > sw.max_exact_sessions ? 12000 : 0;
  sw.ramp = Seconds(1);
  sw.horizon = Seconds(8);
  sw.backoff = Millis(25);
  sw.seed = cfg.seed;
  net::ClientSwarm swarm(&loop, &door, &bus, sw);
  Check(swarm.Run({"edge1", "edge2", "edge3", "edge4"}, "Page1.html").ok(),
        "swarm starts");

  loop.RunUntil(Seconds(12));
  door.Stop();
  loop.RunUntil(Seconds(20));

  StepResult out;
  out.sessions = cfg.sessions;
  out.open_loop = !swarm.exact();
  out.issued = swarm.issued();
  out.admitted = door.stats().admitted;
  out.completed = door.stats().completed;
  out.shed = door.stats().shed_rule + door.stats().shed_overflow;
  out.backpressured = door.stats().backpressured;
  out.shed_level_end = door.shed_level();
  out.tput_per_s =
      static_cast<double>(out.completed) / ToSeconds(sw.horizon);
  uint64_t admitted_delta = door.stats().admitted;
  if (admitted_delta > 0) {
    out.cycles_per_admitted =
        static_cast<double>(
            reg.GetCounter("admission.invoke_cycles").value() -
            cycles_before) /
        static_cast<double>(admitted_delta);
  }
  {
    std::vector<obs::DecisionRecord> all =
        obs::Tracer::Default().Decisions();
    for (size_t i = decisions_before; i < all.size(); ++i) {
      if (std::strcmp(all[i].subject, "frontdoor") == 0) ++out.decisions;
    }
  }
  // Windowed p50/p99 of this step's completions only: the cumulative
  // registry histogram is bracketed by snapshots at step marks.
  lat_window->Push(step_mark + 1,
                   reg.GetHistogram("frontdoor.request.latency_us"));
  out.p50_ms = lat_window->WindowQuantile(step_mark + 1, 0.50) / 1000.0;
  out.p99_ms = lat_window->WindowQuantile(step_mark + 1, 0.99) / 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("FC", "flash-crowd front door: rising client counts");

  obs::Registry& reg = obs::Registry::Default();
  obs::HistogramWindow lat_window(/*max_snapshots=*/64);
  lat_window.Push(0, reg.GetHistogram("frontdoor.request.latency_us"));

  const std::vector<uint64_t> sweep = {64, 256, 1024, 4096, 16384, 1000000};
  std::vector<StepResult> results;
  int64_t mark = 0;
  for (uint64_t sessions : sweep) {
    StepConfig cfg;
    cfg.sessions = sessions;
    cfg.seed = 42 + static_cast<uint64_t>(mark);
    results.push_back(RunStep(cfg, &lat_window, mark));
    mark += 2;
    const StepResult& r = results.back();
    // Per-step curve into the sidecar (informational; nogated).
    const std::string prefix =
        "bench.flashcrowd.s" + std::to_string(sessions) + ".";
    reg.GetGauge(prefix + "p50_ms").Set(r.p50_ms);
    reg.GetGauge(prefix + "p99_ms").Set(r.p99_ms);
    reg.GetGauge(prefix + "tput_per_s").Set(r.tput_per_s);
    reg.GetGauge(prefix + "shed").Set(static_cast<double>(r.shed));
  }

  bench::Table table({10, 8, 9, 9, 9, 9, 8, 9, 8, 8, 6, 5});
  table.Row({"sessions", "mode", "issued", "admitted", "done", "shed",
             "backpr", "tput/s", "p50ms", "p99ms", "level", "fire"});
  table.Rule();
  for (const StepResult& r : results) {
    table.Row({bench::FmtU(r.sessions), r.open_loop ? "open" : "closed",
               bench::FmtU(r.issued), bench::FmtU(r.admitted),
               bench::FmtU(r.completed), bench::FmtU(r.shed),
               bench::FmtU(r.backpressured),
               bench::Fmt("%.0f", r.tput_per_s),
               bench::Fmt("%.1f", r.p50_ms), bench::Fmt("%.1f", r.p99_ms),
               std::to_string(r.shed_level_end),
               bench::FmtU(r.decisions)});
  }
  table.Rule();

  // The decision log: the Table-2 firings that set each shed level.
  size_t shown = 0;
  for (const obs::DecisionRecord& d : obs::Tracer::Default().Decisions()) {
    if (std::strcmp(d.subject, "frontdoor") != 0) continue;
    if (++shown > 8) break;
    bench::Note(std::string("decision @") +
                bench::Fmt("%.2f", ToSeconds(d.at_sim_us)) + "s  " +
                d.action + "  [" + d.rule + "]");
  }

  // ORB amortisation: one invocation per batch vs one per request.
  // 4096 sessions offer several times capacity, so the admission queue
  // stays busy and batches actually fill. Steady-state batch size is
  // the drain rate times the dispatch interval, so both arms run at a
  // 2 ms interval (~7 requests of drain) to make the per-call cost
  // visible; the comparison stays apples-to-apples.
  StepConfig solo;
  solo.sessions = 4096;
  solo.batch_max = 1;
  solo.dispatch_interval = Millis(2);
  solo.seed = 7;
  StepResult unbatched = RunStep(solo, &lat_window, mark);
  mark += 2;
  solo.batch_max = 32;
  StepResult batched = RunStep(solo, &lat_window, mark);
  {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "orb amortisation at 4096 sessions: %.1f cycles/request "
                  "unbatched -> %.1f batched (%.1fx)",
                  unbatched.cycles_per_admitted, batched.cycles_per_admitted,
                  unbatched.cycles_per_admitted /
                      (batched.cycles_per_admitted > 0
                           ? batched.cycles_per_admitted
                           : 1));
    bench::Note(line);
  }

  // Acceptance: under the heaviest closed-loop crowd the rules fired,
  // load was shed, and tail latency stayed bounded instead of growing
  // with the population.
  const StepResult& top = results[4];
  Check(top.shed > 0, "admission.shed > 0 at 16k sessions");
  Check(top.decisions > 0, "a front-door rule firing is in the decision log");
  Check(top.p99_ms < 150.0, "p99 stays bounded at 16k sessions");
  Check(top.p99_ms < results[3].p99_ms * 1.25,
        "p99 stays flat as the crowd quadruples past saturation");
  Check(results[5].shed > 0, "the open-loop million-session point sheds");
  Check(batched.cycles_per_admitted * 4 < unbatched.cycles_per_admitted,
        "batching amortises ORB cycles by at least 4x");

  bench::Note("the bounded queue plus rule-driven shedding pin p99 near "
              "queue/throughput while refusals absorb the overload; an "
              "unbounded server's latency would grow with the crowd.");
  bench::MetricsSidecar("bench_flashcrowd");
  return 0;
}
