// F7 — Fig 7: Patia under a flash crowd.
//
// A Poisson request stream spikes 15x for four seconds. With constraint
// 455 active, the session monitor sees node1's utilisation cross 90%, the
// SWITCH migrates the service agent (state included) to the spare node,
// and latency recovers. The baseline keeps everything on node1.

#include <algorithm>

#include "bench/bench_util.h"
#include "patia/patia.h"

namespace {

using namespace dbm;
using namespace dbm::patia;

struct RunResult {
  uint64_t issued = 0;
  uint64_t completed = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  double flash_mean_ms = 0;  // latency of requests issued inside the flash
  uint64_t migrations = 0;
  uint64_t served_node2 = 0;
};

RunResult RunPatia(bool adaptive) {
  EventLoop loop;
  net::Network net(&loop);
  adapt::MetricBus bus;
  net.AddDevice({"node1", net::DeviceClass::kServer, 1.0, -1, 0, 0});
  net.AddDevice({"node2", net::DeviceClass::kServer, 1.0, -1, 10, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 50, 5, 5});
  net.Connect("node1", "client", {20000, Millis(2), "wired"});
  net.Connect("node2", "client", {20000, Millis(2), "wired"});

  PatiaServer server(&net, &bus);
  (void)server.AddNode("node1", {6, Millis(3)});
  (void)server.AddNode("node2", {6, Millis(3)});
  Atom page;
  page.id = 123;
  page.name = "Page1.html";
  page.type = "html";
  page.variants = {{"Page1.html", 30000}};
  (void)server.RegisterAtom(page, {"node1", "node2"});
  if (adaptive) {
    (void)server.AddConstraint(
        455, 123,
        "If processor-util > 90 then SWITCH(node1.Page1.html, "
        "node2.Page1.html)");
    server.StartTicking(Millis(50));
  }

  FlashCrowd::Options fc;
  fc.base_rate_per_s = 25;
  fc.flash_multiplier = 15;
  fc.flash_start = Seconds(2);
  fc.flash_end = Seconds(6);
  fc.horizon = Seconds(9);
  FlashCrowd crowd(&server, &net, fc);
  (void)crowd.Run("client", "Page1.html");
  loop.RunUntil(Seconds(30));

  RunResult out;
  out.issued = crowd.issued();
  out.completed = server.stats().completed;
  std::vector<double> lat, flash_lat;
  for (const ServedRequest& r : server.stats().log) {
    double ms = ToMillis(r.Latency());
    lat.push_back(ms);
    if (r.issued_at >= fc.flash_start && r.issued_at < fc.flash_end) {
      flash_lat.push_back(ms);
    }
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (double v : lat) sum += v;
    out.mean_ms = sum / static_cast<double>(lat.size());
    out.p95_ms = lat[static_cast<size_t>(
        static_cast<double>(lat.size() - 1) * 0.95)];
  }
  if (!flash_lat.empty()) {
    double sum = 0;
    for (double v : flash_lat) sum += v;
    out.flash_mean_ms = sum / static_cast<double>(flash_lat.size());
  }
  auto agent = server.AgentFor(123);
  if (agent.ok()) out.migrations = (*agent)->migrations();
  auto it = server.stats().served_by_node.find("node2");
  if (it != server.stats().served_by_node.end()) out.served_node2 = it->second;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("Fig 7", "Patia flash crowd: SWITCH fail-over vs static");

  RunResult adaptive = RunPatia(true);
  RunResult fixed = RunPatia(false);

  bench::Table table({28, 16, 16});
  table.Row({"", "adaptive", "static"});
  table.Rule();
  table.Row({"requests issued", bench::FmtU(adaptive.issued),
             bench::FmtU(fixed.issued)});
  table.Row({"requests completed", bench::FmtU(adaptive.completed),
             bench::FmtU(fixed.completed)});
  table.Row({"mean latency (ms)", bench::Fmt("%.1f", adaptive.mean_ms),
             bench::Fmt("%.1f", fixed.mean_ms)});
  table.Row({"p95 latency (ms)", bench::Fmt("%.1f", adaptive.p95_ms),
             bench::Fmt("%.1f", fixed.p95_ms)});
  table.Row({"flash-window mean (ms)",
             bench::Fmt("%.1f", adaptive.flash_mean_ms),
             bench::Fmt("%.1f", fixed.flash_mean_ms)});
  table.Row({"agent migrations", bench::FmtU(adaptive.migrations),
             bench::FmtU(fixed.migrations)});
  table.Row({"served by node2", bench::FmtU(adaptive.served_node2),
             bench::FmtU(fixed.served_node2)});
  table.Rule();
  bench::Note("constraint 455 fires as utilisation crosses 90%; the agent "
              "(with its state) moves to the spare node and flash-window "
              "latency drops sharply versus the static deployment.");
  bench::MetricsSidecar("bench_fig7_patia");
  return 0;
}
