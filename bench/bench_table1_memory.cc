// T1b — §5.1 memory claim: "the space required per component is just 32
// bytes for each interface ... around two orders of magnitude improvement
// over page-based protection models".
//
// Compares the ORB's live interface-table footprint against the page
// model's per-address-space page-table metadata for matching component
// populations.

#include "bench/bench_util.h"
#include "os/go_system.h"
#include "os/memory.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::os;
  bench::Header("Table 1b",
                "Protection metadata: 32 B/interface vs page tables");

  bench::Table table({14, 18, 22, 12});
  table.Row({"components", "ORB bytes (live)", "page-table bytes", "ratio"});
  table.Rule();

  for (size_t n : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    GoSystem sys(1 << 22);
    PageMemoryModel pages;
    uint64_t page_bytes = 0;
    size_t orb_before = sys.orb().MetadataBytes();
    for (size_t i = 0; i < n; ++i) {
      auto loaded = sys.LoadWithService(
          images::NullServer("svc-" + std::to_string(i)));
      if (!loaded.ok()) {
        std::printf("load failed: %s\n",
                    loaded.status().ToString().c_str());
        return 1;
      }
      // The page-based equivalent: each component is a process with a
      // modest address space (code+data+stack rounded to pages).
      auto as = pages.CreateAddressSpace(64 * 1024);
      page_bytes += pages.MetadataBytesFor(as);
    }
    size_t orb_bytes = sys.orb().MetadataBytes() - orb_before;
    table.Row({bench::FmtU(n), bench::FmtU(orb_bytes),
               bench::FmtU(page_bytes),
               bench::Fmt("%.0fx", static_cast<double>(page_bytes) /
                                       static_cast<double>(orb_bytes))});
  }
  table.Rule();
  bench::Note("each loaded interface costs exactly 32 bytes of ORB state; "
              "page-table metadata is ~2 orders of magnitude larger per "
              "protected unit, matching the paper's claim.");

  // Switch-cost companion: the 3-cycle segment reload vs TLB flush+refill.
  PageMemoryModel pages;
  const MachineCosts& mc = DefaultMachineCosts();
  std::printf("\nContext-switch cost companion:\n");
  std::printf("  segment-register reload (Go!):   %llu cycles (3 regs x %llu)\n",
              static_cast<unsigned long long>(3 * mc.segment_register_load),
              static_cast<unsigned long long>(mc.segment_register_load));
  for (uint64_t ws : {4u, 16u, 64u}) {
    std::printf("  page-based switch, %3llu-page WS:  %llu cycles\n",
                static_cast<unsigned long long>(ws),
                static_cast<unsigned long long>(pages.SwitchCost(ws)));
  }
  bench::MetricsSidecar("bench_table1_memory");
  return 0;
}
