// F2 — Fig 2: the data-component version list.
//
// Materialises every version kind of a 10k-row relation, reporting
// payload bytes, materialise/open wall time, and the transfer time each
// version would need on docked vs wireless links — the numbers behind
// "versions ... could be compressed versions of the data ... or lower
// quality versions or summaries" and the BEST choice among them.

#include <chrono>

#include "bench/bench_util.h"
#include "data/version.h"
#include "net/network.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::data;
  bench::Header("Fig 2", "Data-component versions: size/quality/cost");

  Relation people = gen::People(10000, 42);
  struct Spec {
    VersionKind kind;
    double quality;
    const char* codec;
  };
  const Spec specs[] = {
      {VersionKind::kReplica, 1.0, "identity"},
      {VersionKind::kCompressed, 1.0, "rle"},
      {VersionKind::kCompressed, 1.0, "lz"},
      {VersionKind::kSummary, 0.25, "identity"},
      {VersionKind::kSummary, 0.05, "identity"},
  };

  net::LinkSpec docked{10000, Millis(1), "wired"};
  net::LinkSpec wireless{150, Millis(8), "wireless"};
  net::Link docked_link("a", "b", docked);
  net::Link wireless_link("a", "b", wireless);

  bench::Table table({22, 12, 12, 12, 14, 14});
  table.Row({"version", "bytes", "mat. ms", "open ms", "docked xfer",
             "wireless xfer"});
  table.Rule();
  for (const Spec& spec : specs) {
    auto t0 = std::chrono::steady_clock::now();
    auto version = Materialize(people, spec.kind, "laptop", 0, spec.quality,
                               spec.codec);
    auto t1 = std::chrono::steady_clock::now();
    if (!version.ok()) {
      std::printf("materialise failed: %s\n",
                  version.status().ToString().c_str());
      return 1;
    }
    auto opened = version->Open();
    auto t2 = std::chrono::steady_clock::now();
    if (!opened.ok()) {
      std::printf("open failed: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    std::string label = std::string(VersionKindName(spec.kind));
    if (spec.kind == VersionKind::kCompressed) {
      label += std::string("(") + spec.codec + ")";
    }
    if (spec.kind == VersionKind::kSummary) {
      label += bench::Fmt("(q=%.2f)", spec.quality);
    }
    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    table.Row({label, bench::FmtU(version->payload.size()),
               bench::Fmt("%.2f", ms(t0, t1)), bench::Fmt("%.2f", ms(t1, t2)),
               bench::Fmt("%.1f ms",
                          ToMillis(docked_link.TransferTime(
                              version->payload.size()))),
               bench::Fmt("%.1f ms",
                          ToMillis(wireless_link.TransferTime(
                              version->payload.size())))});
  }
  table.Rule();
  bench::Note("compressed versions trade CPU for wire time (decisive on "
              "the wireless link); summaries shrink super-linearly with "
              "quality — exactly the alternatives the version list exists "
              "to offer.");
  bench::MetricsSidecar("bench_fig2_versions");
  return 0;
}
