// Durability overhead + crash drill — what the WAL costs when it's on,
// and proof the recovery path earns its keep.
//
// Arm 1 loads the A9 tables (orders: 400k rows, people: 2k rows) into a
// paged store over the volatile in-memory disk. Arm 2 loads the same
// tables over FileDiskComponent with a write-ahead log attached at the
// kNever fsync policy — every writeback pays the WAL append and the
// durable-LSN barrier, but no fsync rides the hot path. The acceptance
// bar is the ISSUE-9 one: the walled arm may cost at most 10% more host
// time per row. The estimator is a paired ratio — each of 6 reps runs
// bare then walled back to back and contributes one walled/bare ratio;
// the min ratio across reps discards machine noise that per-arm minima
// cannot (both arms touch the same page count, so the comparison is
// like-for-like).
//
// store.wal.append_cycles is a cycles-named gauge holding the
// deterministic count of WAL appends during the walled load (shards=1 +
// LRU makes eviction — and therefore writeback — a pure function of the
// workload), so bench_diff gates it against the committed baseline: a
// buffer-manager change that silently doubles WAL traffic fails CI
// visibly. The host-time ratios are honest but noisy, so they ride in
// the baseline's "nogate" list.
//
// The bench then runs the crash drill under each chaos seed (17/23/42):
// arm storage.wal.append:crash, load until the injector kills the log
// mid-flight, restart, replay the WAL, and verify the recovered
// relation is an exact prefix of the original — no duplicates, no
// holes, no reordering. The seed-42 wreckage (torn WAL + page file) is
// left next to the binary for tools/wal_dump and the CI artifact
// collector.
//
// A final fsync-policy sweep (kNever / kInterval / kCommit over a 40k
// row load) prices the durability dial; those numbers are informational
// (nogate) — fsync latency belongs to the host filesystem, not to us.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/relation.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "storage/buffer.h"
#include "storage/durable_disk.h"
#include "storage/paged_relation.h"
#include "storage/replacement.h"
#include "storage/wal.h"

namespace {

using namespace dbm;
using namespace dbm::storage;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_durability FAIL: %s\n", what);
    std::exit(1);
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void ResetPaths(const std::string& page_path, const std::string& wal_dir) {
  std::error_code ec;
  std::filesystem::remove(page_path, ec);
  std::filesystem::remove_all(wal_dir, ec);
}

constexpr size_t kFrames = 64;

/// Loads both A9 tables over the volatile in-memory disk. Returns host
/// milliseconds for the load + flush.
double LoadBare(const data::Relation& orders, const data::Relation& people) {
  auto disk = std::make_shared<DiskComponent>();
  auto buffer = std::make_shared<BufferManager>("buf", kFrames);
  buffer->FindPort("disk")->SetTarget(disk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  const auto start = std::chrono::steady_clock::now();
  Check(PagedRelation::Load(orders, buffer.get(), disk.get()).ok(),
        "bare orders load");
  Check(PagedRelation::Load(people, buffer.get(), disk.get()).ok(),
        "bare people load");
  Check(buffer->FlushAll().ok(), "bare flush");
  return MsSince(start);
}

/// Loads both A9 tables over FileDiskComponent + WAL, checkpoints, and
/// returns host milliseconds. The WAL stats after the final flush land
/// in *stats.
double LoadWalled(const data::Relation& orders, const data::Relation& people,
                  const std::string& page_path, const std::string& wal_dir,
                  WalFsyncPolicy policy, WalStats* stats) {
  ResetPaths(page_path, wal_dir);
  auto disk = FileDiskComponent::Open(page_path);
  Check(disk.ok(), "page file opens");
  std::shared_ptr<FileDiskComponent> fdisk = std::move(*disk);
  WalOptions wopt;
  wopt.dir = wal_dir;
  wopt.fsync = policy;
  auto wal = Wal::Open(wopt);
  Check(wal.ok(), "wal opens");
  auto buffer = std::make_shared<BufferManager>("buf", kFrames);
  buffer->FindPort("disk")->SetTarget(fdisk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  buffer->SetWal(wal->get());
  const auto start = std::chrono::steady_clock::now();
  Check(PagedRelation::Load(orders, buffer.get(), fdisk.get()).ok(),
        "walled orders load");
  Check(PagedRelation::Load(people, buffer.get(), fdisk.get()).ok(),
        "walled people load");
  Check(buffer->CheckpointWal().ok(), "checkpoint");
  const double ms = MsSince(start);
  if (stats != nullptr) *stats = (*wal)->stats();
  buffer->SetWal(nullptr);
  return ms;
}

/// The crash drill: arm the injector, load until the WAL dies
/// mid-flight, restart, replay, and verify the recovered relation is an
/// exact prefix of the original. Returns the recovered row count.
size_t CrashAndRecover(const data::Relation& orders,
                       const std::string& page_path,
                       const std::string& wal_dir, uint64_t seed) {
  ResetPaths(page_path, wal_dir);
  Check(fault::Injector::Default()
            .Configure("storage.wal.append:crash@0.02", seed)
            .ok(),
        "crash spec parses");
  {
    auto disk = FileDiskComponent::Open(page_path);
    Check(disk.ok(), "crash-arm page file opens");
    std::shared_ptr<FileDiskComponent> fdisk = std::move(*disk);
    auto wal = Wal::Open({.dir = wal_dir});
    Check(wal.ok(), "crash-arm wal opens");
    auto buffer = std::make_shared<BufferManager>("buf", kFrames);
    buffer->FindPort("disk")->SetTarget(fdisk);
    buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
    buffer->SetWal(wal->get());
    auto paged = PagedRelation::Load(orders, buffer.get(), fdisk.get());
    Check(!paged.ok(), "injected crash fired mid-load");
    buffer->SetWal(nullptr);
  }

  // Restart: quiet injector, fresh handles onto the wreckage.
  Check(fault::Injector::Default().Configure("", 0).ok(), "injector quiet");
  auto disk = FileDiskComponent::Open(page_path);
  Check(disk.ok(), "restart page file opens");
  std::shared_ptr<FileDiskComponent> fdisk = std::move(*disk);
  fault::StateManager state;
  auto report = Recover(fdisk.get(), wal_dir, &state);
  Check(report.ok(), "recovery succeeds");

  auto buffer = std::make_shared<BufferManager>("buf", kFrames);
  buffer->FindPort("disk")->SetTarget(fdisk);
  buffer->FindPort("policy")->SetTarget(std::make_shared<LruPolicy>());
  auto recovered =
      PagedRelation::Recover("orders", orders.schema(), buffer.get(),
                             fdisk.get());
  Check(recovered.ok(), "recovered relation attaches");

  size_t i = 0;
  bool prefix_ok = true;
  Status scan = (*recovered)->Scan([&](const data::Tuple& t) {
    if (i >= orders.size() || !(t == orders.rows()[i])) {
      prefix_ok = false;
      return false;
    }
    ++i;
    return true;
  });
  Check(scan.ok(), "recovered scan is clean (zero torn pages)");
  Check(prefix_ok, "recovered rows are an exact prefix of the original");
  Check(i == (*recovered)->rows(), "row count matches the scan");
  return i;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("DUR", "durable paged storage: WAL cost, crash, recovery");
  // The overhead comparison needs a quiet injector; the chaos job arms
  // the storage points through wal_test instead.
  Check(fault::Injector::Default().Configure("", 0).ok(), "injector quiet");
  obs::Registry& reg = obs::Registry::Default();
  const std::string out = bench::Context().out_dir;
  const std::string page_path = out + "bench_durability.dbm";
  const std::string wal_dir = out + "bench_durability.wal";

  const data::Relation orders = data::gen::Orders(400000, 2000, 0.5, 42);
  const data::Relation people = data::gen::People(2000, 43);
  const double rows = static_cast<double>(orders.size() + people.size());

  // Paired-ratio estimator over 6 alternating reps. Per-rep times on a
  // shared host wobble ~10% (frequency scaling, steal time) — as much
  // as the effect being measured — so comparing min(bare) against
  // min(walled) from independent pools is flaky: one pool can draw a
  // quiet window the other never gets. Instead each rep runs bare then
  // walled back to back under near-identical machine conditions and
  // contributes one walled/bare ratio; the min ratio across reps is the
  // pair the noise disturbed least. Each arm's min time is still kept
  // for the table.
  double bare_ms = 1e300, walled_ms = 1e300, best_ratio = 1e300;
  WalStats wstats;
  for (int rep = 0; rep < 6; ++rep) {
    const double b = LoadBare(orders, people);
    const double w = LoadWalled(orders, people, page_path, wal_dir,
                                WalFsyncPolicy::kNever, &wstats);
    bare_ms = std::min(bare_ms, b);
    walled_ms = std::min(walled_ms, w);
    best_ratio = std::min(best_ratio, w / b);
    // Unlink the rep's files right away (outside the timed window):
    // dirty page-cache data of an unlinked file is dropped, so the
    // kernel flusher never stalls a later rep writing back ~15 MB this
    // rep no longer needs.
    ResetPaths(page_path, wal_dir);
  }
  const double bare_us_row = bare_ms * 1000.0 / rows;
  const double walled_us_row = walled_ms * 1000.0 / rows;
  const double overhead_pct = (best_ratio - 1.0) * 100.0;

  bench::Table table({10, 10, 12, 12, 12});
  table.Row({"arm", "rows", "host_ms", "us/row", "wal_appends"});
  table.Rule();
  table.Row({"bare", bench::FmtU(orders.size() + people.size()),
             bench::Fmt("%.1f", bare_ms), bench::Fmt("%.3f", bare_us_row),
             "0"});
  table.Row({"walled", bench::FmtU(orders.size() + people.size()),
             bench::Fmt("%.1f", walled_ms),
             bench::Fmt("%.3f", walled_us_row), bench::FmtU(wstats.appends)});
  table.Rule();
  bench::Note(bench::Fmt("%.1f", overhead_pct) +
              "% host-time overhead with fsync=never (" +
              bench::FmtU(wstats.appends) + " appends, " +
              bench::FmtU(wstats.bytes) + " WAL bytes, " +
              bench::FmtU(wstats.checkpoints) + " checkpoint, " +
              bench::FmtU(wstats.truncated_segments) +
              " segments truncated)");

  // The deterministic cost pin: WAL appends are a pure function of the
  // workload (shards=1 + LRU eviction), so bench_diff gates this
  // cycles-named gauge at 10% against the committed baseline.
  reg.GetGauge("store.wal.append_cycles")
      .Set(static_cast<double>(wstats.appends));
  // Honest-but-noisy host ratios: nogated in the baseline.
  reg.GetGauge("bench.durability.us_per_row_bare").Set(bare_us_row);
  reg.GetGauge("bench.durability.us_per_row_walled").Set(walled_us_row);
  reg.GetGauge("bench.durability.overhead_pct").Set(overhead_pct);

  Check(wstats.appends > 1000, "the load actually exercised the WAL");
  Check(best_ratio <= 1.10,
        "walled arm stays within 10% host time of bare (fsync=never)");

  // Crash drill under the chaos seeds. Seed 42's wreckage stays on disk
  // for tools/wal_dump and the CI artifact collector; recovery reads
  // the torn tail without repairing it (only Wal::Open truncates).
  uint64_t recovered_total = 0;
  for (uint64_t seed : {17u, 23u, 42u}) {
    const std::string crash_page =
        out + "bench_durability_crash.dbm";
    const std::string crash_wal = out + "bench_durability_crash.wal";
    size_t n = CrashAndRecover(orders, crash_page, crash_wal, seed);
    recovered_total += n;
    bench::Note("seed " + bench::FmtU(seed) + ": crash mid-load, " +
                bench::FmtU(n) + " rows recovered as an exact prefix");
    if (seed != 42u) ResetPaths(crash_page, crash_wal);
  }
  // Deterministic (injector + eviction are seeded), informational.
  reg.GetGauge("bench.durability.recovered_rows")
      .Set(static_cast<double>(recovered_total));

  // Fsync-policy sweep over a smaller load: the price of the dial.
  const data::Relation small = data::gen::Orders(40000, 2000, 0.5, 42);
  struct Sweep {
    WalFsyncPolicy policy;
    const char* gauge;
  };
  const Sweep sweeps[] = {
      {WalFsyncPolicy::kNever, "bench.durability.fsync_never_ms"},
      {WalFsyncPolicy::kInterval, "bench.durability.fsync_interval_ms"},
      {WalFsyncPolicy::kCommit, "bench.durability.fsync_commit_ms"},
  };
  bench::Table sweep_table({12, 12, 12});
  sweep_table.Row({"fsync", "host_ms", "fsyncs"});
  sweep_table.Rule();
  for (const Sweep& s : sweeps) {
    WalStats st;
    const double ms = LoadWalled(small, people, page_path, wal_dir, s.policy,
                                 &st);
    reg.GetGauge(s.gauge).Set(ms);
    sweep_table.Row({WalFsyncPolicyName(s.policy), bench::Fmt("%.1f", ms),
                     bench::FmtU(st.fsyncs)});
  }
  sweep_table.Rule();

  // Leave a clean walled artifact behind for wal_dump smoke tests: the
  // final sweep's WAL directory and page file sit next to the binary.
  bench::Note("artifacts: " + wal_dir + " (clean), " + out +
              "bench_durability_crash.wal (torn, seed 42)");

  bench::MetricsSidecar("bench_durability");
  std::printf("\nbench_durability OK\n");
  return 0;
}
