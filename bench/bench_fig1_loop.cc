// F1 — Fig 1: the adaptation framework's control-loop overhead.
//
// Measures the monitor → gauge → session-manager → adaptivity-manager
// path end to end, and ablates the gauge stage (paper §3: gauges
// "aggregate raw monitor data for more lightweight processing"): raw
// pass-through vs EWMA vs windowed aggregation, and loop cost as the
// constraint table grows.

#include <chrono>

#include "adapt/session.h"
#include "bench/bench_util.h"
#include "common/rng.h"

namespace {

using namespace dbm;
using namespace dbm::adapt;

double LoopCostMicros(GaugeKind kind, int n_constraints, int iters) {
  MetricBus bus;
  ConstraintTable table;
  for (int i = 0; i < n_constraints; ++i) {
    (void)table.Add(i, "subject" + std::to_string(i),
                    "If metric" + std::to_string(i) +
                        " > 50 then SWITCH(a, b)");
  }
  auto am = std::make_shared<AdaptivityManager>();
  am->RegisterHandler("", [](const AdaptationRequest&) {
    return Status::OK();
  });
  auto sm = std::make_shared<SessionManager>("sm", &bus, &table);
  sm->FindPort("adaptivity")->SetTarget(am);

  double raw = 40.0;
  auto monitor = std::make_shared<CallbackMonitor>(
      "mon", "metric0", [&raw] { return raw; });
  Gauge gauge("g", kind, &bus);
  gauge.FindPort("source")->SetTarget(monitor);

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    raw = static_cast<double>(i % 100);
    (void)gauge.Sample(i);
    // Publish the other metrics so every constraint is evaluated.
    for (int c = 1; c < n_constraints; ++c) {
      bus.Publish("metric" + std::to_string(c),
                  static_cast<double>((i + c) % 100), i);
    }
    (void)sm->CheckConstraints(i);
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return elapsed / iters * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("Fig 1", "Adaptation-loop overhead (one full tick)");

  constexpr int kIters = 20000;
  bench::Table table({18, 16, 16, 16});
  table.Row({"gauge kind", "1 constraint", "8 constraints",
             "32 constraints"});
  table.Rule();
  for (GaugeKind kind : {GaugeKind::kLast, GaugeKind::kEwma,
                         GaugeKind::kWindowMean, GaugeKind::kWindowMax}) {
    table.Row({GaugeKindName(kind),
               bench::Fmt("%.2f us", LoopCostMicros(kind, 1, kIters)),
               bench::Fmt("%.2f us", LoopCostMicros(kind, 8, kIters)),
               bench::Fmt("%.2f us", LoopCostMicros(kind, 32, kIters))});
  }
  table.Rule();

  // Gauge-quality ablation: EWMA suppresses monitor noise, so the SWITCH
  // rule fires on sustained overload rather than single spikes.
  MetricBus bus;
  Rng rng(5);
  int raw_fires = 0, ewma_fires = 0;
  {
    double ewma = 0;
    bool primed = false;
    auto rule = ParseRule("If cpu > 90 then SWITCH(a, b)");
    TargetScorer scorer;
    for (int i = 0; i < 5000; ++i) {
      // Noisy 60%-mean load with occasional single-sample spikes.
      double sample = 60 + rng.Gaussian(0, 8) + (rng.Bernoulli(0.02) ? 40 : 0);
      bus.Publish("cpu", sample, i);
      auto d = Evaluate(*rule, bus, scorer);
      if (d.ok() && d->fired) ++raw_fires;
      ewma = primed ? 0.3 * sample + 0.7 * ewma : sample;
      primed = true;
      bus.Publish("cpu", ewma, i);
      d = Evaluate(*rule, bus, scorer);
      if (d.ok() && d->fired) ++ewma_fires;
    }
  }
  std::printf("\nGauge ablation (noisy 60%% load, 2%% one-sample spikes, "
              "5000 ticks):\n");
  std::printf("  raw monitor feed : SWITCH triggered %d times (spurious)\n",
              raw_fires);
  std::printf("  EWMA gauge feed  : SWITCH triggered %d times\n", ewma_fires);
  bench::Note("a full adaptation tick costs single-digit microseconds and "
              "scales linearly in constraints; the gauge stage eliminates "
              "spurious single-spike adaptations.");
  bench::MetricsSidecar("bench_fig1_loop");
  return 0;
}
