// A2 — Kendra: intra-request codec adaptation on a varying link.
//
// Fixed codecs either stall (bitrate above the trough) or waste quality
// (bitrate below the peak); the adaptive ladder tracks the bandwidth
// trace. Also prints the per-chunk decision trace — the feedback-loop
// behaviour §6 reflects on.

#include "bench/bench_util.h"
#include "kendra/kendra.h"

namespace {

using namespace dbm;
using namespace dbm::kendra;

StreamResult Run(bool adaptive, const AudioCodec* fixed) {
  EventLoop loop;
  net::Network net(&loop);
  net.AddDevice({"server", net::DeviceClass::kServer, 1, -1, 0, 0});
  net.AddDevice({"client", net::DeviceClass::kPda, 0.2, 60, 5, 0});
  net.Connect("server", "client", {400, Millis(5), "wireless"});
  AudioServer server(&net, "server", "client");
  std::vector<BandwidthEvent> trace = {
      {Seconds(3), 50},  {Seconds(6), 400}, {Seconds(9), 90},
      {Seconds(12), 20}, {Seconds(15), 400},
  };
  auto result = adaptive
                    ? server.StreamAdaptive(DefaultLadder(), Seconds(20), trace)
                    : server.StreamFixed(*fixed, Seconds(20), trace);
  return result.ok() ? *result : StreamResult{};
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("A2", "Kendra audio: adaptive codec ladder vs fixed");

  bench::Table table({18, 10, 14, 14, 12, 12});
  table.Row({"strategy", "stalls", "stall (ms)", "quality", "switches",
             "MB sent"});
  table.Rule();
  for (const AudioCodec& codec : DefaultLadder()) {
    StreamResult r = Run(false, &codec);
    table.Row({"fixed " + codec.name, bench::FmtU(r.stalls),
               bench::Fmt("%.0f", ToMillis(r.total_stall)),
               bench::Fmt("%.2f", r.mean_quality),
               bench::FmtU(r.codec_switches),
               bench::Fmt("%.2f", static_cast<double>(r.bytes_sent) / 1e6)});
  }
  StreamResult adaptive = Run(true, nullptr);
  table.Row({"adaptive ladder", bench::FmtU(adaptive.stalls),
             bench::Fmt("%.0f", ToMillis(adaptive.total_stall)),
             bench::Fmt("%.2f", adaptive.mean_quality),
             bench::FmtU(adaptive.codec_switches),
             bench::Fmt("%.2f",
                        static_cast<double>(adaptive.bytes_sent) / 1e6)});
  table.Rule();

  std::printf("\nadaptive decision trace (one entry per 500 ms chunk):\n  ");
  std::string last;
  for (size_t i = 0; i < adaptive.decisions.size(); ++i) {
    if (adaptive.decisions[i] != last) {
      std::printf("[chunk %zu -> %s] ", i, adaptive.decisions[i].c_str());
      last = adaptive.decisions[i];
    }
  }
  std::printf("\n");
  bench::Note("the ladder rides the bandwidth trace: quality near the "
              "best sustainable rung with a fraction of the greedy "
              "codec's stall time — the intra-request adaptation Kendra "
              "demonstrated.");
  bench::MetricsSidecar("bench_kendra_codec");
  return 0;
}
