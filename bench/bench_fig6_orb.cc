// F6 — Fig 6: "Components invoke services via the ORB".
//
// Thread-migration cost as call chains deepen: A → ORB → B → ORB → C ...
// Cycles grow linearly at ~73/hop (no mode switches anywhere on the
// path), plus wall-clock throughput of the live simulation.

#include <chrono>

#include "bench/bench_util.h"
#include "os/go_system.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::os;
  bench::Header("Fig 6", "ORB thread migration: call-chain scaling");

  bench::Table table({10, 16, 18, 16});
  table.Row({"depth", "cycles/chain", "cycles/hop", "vs 73 model"});
  table.Rule();
  for (int depth : {1, 2, 4, 8, 16, 32}) {
    GoSystem sys;
    auto server = sys.LoadWithService(images::NullServer());
    if (!server.ok()) return 1;
    InterfaceId next = server->second;
    TypeHash next_type = HashInterfaceType("null-service");
    for (int i = 0; i < depth - 1; ++i) {
      auto fwd = sys.LoadWithService(images::Forwarder(
          "hop-" + std::to_string(i), next_type));
      if (!fwd.ok()) return 1;
      if (!sys.BindPort(fwd->first, 0, next).ok()) return 1;
      next = fwd->second;
      next_type = HashInterfaceType("forwarder");
    }
    Cycles before = sys.ledger().total();
    if (!sys.orb().Call(next).ok()) return 1;
    Cycles chain = sys.ledger().total() - before;
    double per_hop = static_cast<double>(chain) / depth;
    table.Row({bench::FmtU(static_cast<uint64_t>(depth)),
               bench::FmtU(chain), bench::Fmt("%.1f", per_hop),
               bench::Fmt("%+.1f", per_hop - 73.0)});
  }
  table.Rule();

  // Host wall-clock throughput of the simulated ORB (sanity: the
  // simulation itself is not the bottleneck in the experiments).
  GoSystem sys;
  auto server = sys.LoadWithService(images::NullServer());
  auto caller = sys.LoadWithService(images::RepeatCaller(
      "rep", HashInterfaceType("null-service"), 1000));
  if (server.ok() && caller.ok() &&
      sys.BindPort(caller->first, 0, server->second).ok()) {
    auto start = std::chrono::steady_clock::now();
    constexpr int kOuter = 2000;
    for (int i = 0; i < kOuter; ++i) {
      (void)sys.orb().Call(caller->second);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    std::printf("\nhost throughput: %.2f M simulated RPCs/s\n",
                kOuter * 1000 / secs / 1e6);
  }
  bench::Note("per-hop cost is flat at 73 cycles regardless of depth: "
              "thread migration composes without mode switches or copies.");
  bench::MetricsSidecar("bench_fig6_orb");
  return 0;
}
