// F3/S1 — Scenario 1: inter-query adaptation (Fig 3).
//
// A PDA-issued query for "personal data" carrying `Select BEST (PDA,
// Laptop)` is served under a sweep of laptop utilisations. Adaptive
// placement follows the rule; the static baseline always fetches the full
// replica from the laptop. Reported: who served, latency, delivered
// fidelity.

#include "bench/bench_util.h"
#include "dbmachine/scenarios.h"

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  using namespace dbm;
  using namespace dbm::machine;
  bench::Header("Scenario 1", "Inter-query adaptation: BEST(PDA, Laptop)");

  bench::Table table({14, 16, 16, 16, 12, 12});
  table.Row({"laptop load", "adaptive: node", "latency (ms)", "static (ms)",
             "speedup", "quality"});
  table.Rule();
  for (double load : {0.0, 0.25, 0.5, 0.75, 0.9, 0.97}) {
    Scenario1Config adaptive;
    adaptive.laptop_load = load;
    auto a = RunScenario1(adaptive);
    Scenario1Config fixed = adaptive;
    fixed.adaptive = false;
    auto f = RunScenario1(fixed);
    if (!a.ok() || !f.ok()) {
      std::printf("scenario failed: %s\n",
                  (!a.ok() ? a.status() : f.status()).ToString().c_str());
      return 1;
    }
    table.Row({bench::Fmt("%.2f", load), a->query.served_from,
               bench::Fmt("%.2f", ToMillis(a->query.Latency())),
               bench::Fmt("%.2f", ToMillis(f->query.Latency())),
               bench::Fmt("%.1fx", static_cast<double>(f->query.Latency()) /
                                       std::max<SimTime>(1, a->query.Latency())),
               bench::Fmt("%.2f", a->quality)});
  }
  table.Rule();

  // NEAREST companion: locality always picks the querying device.
  Scenario1Config nearest;
  nearest.rule = "Select NEAREST (pda, laptop)";
  auto n = RunScenario1(nearest);
  if (n.ok()) {
    std::printf("\nNEAREST(pda, laptop) from the PDA -> served by %s "
                "(%.3f ms, quality %.2f)\n",
                n->query.served_from.c_str(),
                ToMillis(n->query.Latency()), n->quality);
  }
  bench::Note("BEST follows the load crossover: the idle laptop serves the "
              "full replica; past ~0.9 utilisation the PDA's local summary "
              "wins on latency at reduced fidelity — the rule-driven "
              "tradeoff of scenario 1.");
  bench::MetricsSidecar("bench_scenario1_interquery");
  return 0;
}
