// Observatory overhead — the cost of being watchable.
//
// The Fig-1 loop publishes gauges every tick; if publishing allocates,
// the observer perturbs the observed. This bench measures the resolved-
// channel MetricBus publish path and *asserts* it is allocation-free in
// steady state (the shared dbm_alloc_hook counting allocator — the same
// counter EXPLAIN ANALYZE attributes), then prices the derived-gauge
// recompute and the endpoint renderers so EXPERIMENTS.md can quote what
// introspection costs.

#include <chrono>

#include "adapt/derived.h"
#include "adapt/metrics.h"
#include "bench/bench_util.h"
#include "obs/alloc_hook.h"
#include "obs/observatory.h"

namespace {

using namespace dbm;

double HostSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(&argc, argv);
  bench::Header("BENCH-OBSERVATORY", "publish path + introspection cost");
  dbm::obs::InstallCountingAllocator();

  adapt::MetricBus bus;
  adapt::MetricBus::Channel* ch = bus.GetChannel("processor-util");

  // Warm-up: first publishes may still grow ring internals.
  for (int i = 0; i < 1024; ++i) {
    bus.Publish(ch, 0.5, static_cast<SimTime>(i));
  }

  constexpr uint64_t kPublishes = 2'000'000;
  uint64_t allocs_before = obs::AllocCount();
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kPublishes; ++i) {
    bus.Publish(ch, 0.5 + (i & 7) * 0.01,
                static_cast<SimTime>(1024 + i));
  }
  double publish_s = HostSeconds(t0);
  uint64_t publish_allocs = obs::AllocCount() - allocs_before;

  bench::Table t({34, 16, 16});
  t.Row({"path", "ops", "ns/op"});
  t.Rule();
  t.Row({"MetricBus::Publish (resolved)", bench::FmtU(kPublishes),
         bench::Fmt("%.1f", publish_s * 1e9 / kPublishes)});

  // Derived gauge recompute over the retained window.
  adapt::DerivedPublisher derived(&bus);
  adapt::DerivedSpec spec;
  spec.source = "processor-util";
  spec.kind = adapt::DerivedKind::kP95;
  (void)derived.Add(spec);
  spec.kind = adapt::DerivedKind::kRate;
  (void)derived.Add(spec);
  constexpr uint64_t kTicks = 50'000;
  t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kTicks; ++i) {
    derived.Tick(static_cast<SimTime>(1024 + kPublishes + i * 1000));
  }
  double tick_s = HostSeconds(t0);
  t.Row({"DerivedPublisher::Tick (2 specs)", bench::FmtU(kTicks),
         bench::Fmt("%.1f", tick_s * 1e9 / kTicks)});

  // Endpoint render cost (registry has the bus mirrors + bench counters).
  constexpr uint64_t kRenders = 2'000;
  t0 = std::chrono::steady_clock::now();
  size_t bytes = 0;
  for (uint64_t i = 0; i < kRenders; ++i) {
    bytes += obs::PrometheusText().size();
  }
  double prom_s = HostSeconds(t0);
  t.Row({"PrometheusText", bench::FmtU(kRenders),
         bench::Fmt("%.0f", prom_s * 1e9 / kRenders)});
  t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kRenders; ++i) {
    bytes += obs::HealthJson(static_cast<int64_t>(i)).size();
  }
  double health_s = HostSeconds(t0);
  t.Row({"HealthJson", bench::FmtU(kRenders),
         bench::Fmt("%.0f", health_s * 1e9 / kRenders)});
  (void)bytes;

  bench::Note("steady-state publish allocations: " +
              std::to_string(publish_allocs) + " (must be 0)");
  if (publish_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: resolved-channel publish allocated %llu times\n",
                 static_cast<unsigned long long>(publish_allocs));
    return 1;
  }

  obs::Registry::Default().GetCounter("bench.observatory.publishes")
      .Add(kPublishes);
  bench::MetricsSidecar("BENCH-OBSERVATORY");
  return 0;
}
