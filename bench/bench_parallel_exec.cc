// A9 — morsel-driven parallel execution: dop scaling on the vCPU pool.
//
// Two workloads over the same generated tables, run at dop 1, 2, 4 and
// 8 on an 8-worker pool: a filtered scan + grouped aggregation, and the
// headline join (orders ⋈ people, grouped aggregation on top). dop=1 is
// the serial executor over the identical plan, so every speedup row is
// against the real single-threaded baseline, not a crippled one. Each
// run's result set is order-normalized and compared against serial —
// a wrong parallel answer fails the bench before any timing is read.
//
// Acceptance bar (ISSUE 5): >= 2.5x at dop=4 on the join workload,
// asserted only when the host actually has >= 4 hardware threads (the
// 1-vCPU dev container reports its scaling numbers without gating).

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "query/parallel.h"

namespace {

using namespace dbm;
using data::Relation;
using data::Schema;
using data::ValueType;

constexpr size_t kOrders = 400000;
constexpr size_t kPeople = 2000;
constexpr uint64_t kSeed = 42;

Relation MakeOrders() {
  Relation rel("orders", Schema({{"person_id", ValueType::kInt},
                                 {"qty", ValueType::kInt},
                                 {"val", ValueType::kDouble}}));
  Rng rng(kSeed);
  for (size_t i = 0; i < kOrders; ++i) {
    rel.InsertUnchecked(query::Tuple(
        {static_cast<int64_t>(rng.Uniform(kPeople)),
         static_cast<int64_t>(rng.Uniform(50)),
         0.25 * static_cast<double>(rng.Uniform(1000))}));
  }
  return rel;
}

Relation MakePeople() {
  Relation rel("people", Schema({{"id", ValueType::kInt},
                                 {"grp", ValueType::kInt},
                                 {"name", ValueType::kString}}));
  Rng rng(kSeed + 1);
  for (size_t i = 0; i < kPeople; ++i) {
    rel.InsertUnchecked(query::Tuple({static_cast<int64_t>(i),
                                      static_cast<int64_t>(rng.Uniform(32)),
                                      "p#" + std::to_string(i)}));
  }
  return rel;
}

std::multiset<std::string> Canon(const std::vector<query::Tuple>& rows) {
  std::multiset<std::string> out;
  for (const query::Tuple& t : rows) out.insert(t.ToString());
  return out;
}

struct DopPoint {
  size_t dop = 0;
  double millis = 0;
  double speedup = 1.0;
  query::ParallelStats stats;
};

/// Runs `plan` at each dop, checks the result set against dop=1, and
/// returns the timing curve. Empty on any error/mismatch.
std::vector<DopPoint> RunCurve(const query::ParallelPlan& plan,
                               query::WorkerPool* pool,
                               const std::vector<size_t>& dops) {
  std::vector<DopPoint> curve;
  std::multiset<std::string> reference;
  for (size_t dop : dops) {
    query::ParallelOptions opt;
    opt.dop = dop;
    opt.pool = pool;
    std::vector<query::Tuple> out;
    auto t0 = std::chrono::steady_clock::now();
    auto stats = query::ExecuteParallel(plan, &out, opt);
    auto t1 = std::chrono::steady_clock::now();
    if (!stats.ok()) {
      std::printf("  dop=%zu failed: %s\n", dop,
                  stats.status().ToString().c_str());
      return {};
    }
    if (dop == dops.front()) {
      reference = Canon(out);
    } else if (Canon(out) != reference) {
      std::printf("  dop=%zu result set diverges from serial!\n", dop);
      return {};
    }
    DopPoint p;
    p.dop = dop;
    p.millis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.stats = *stats;
    curve.push_back(p);
  }
  for (DopPoint& p : curve) {
    p.speedup = curve.front().millis / std::max(p.millis, 1e-9);
  }
  return curve;
}

void PrintCurve(const char* title, const std::vector<DopPoint>& curve) {
  std::printf("\n%s\n", title);
  bench::Table table({8, 12, 10, 12, 10});
  table.Row({"dop", "time ms", "speedup", "morsels", "util %"});
  table.Rule();
  for (const DopPoint& p : curve) {
    table.Row({bench::FmtU(p.dop), bench::Fmt("%.1f", p.millis),
               bench::Fmt("%.2fx", p.speedup), bench::FmtU(p.stats.morsels),
               bench::Fmt("%.0f", p.stats.worker_util)});
  }
  table.Rule();
}

}  // namespace

int main(int argc, char** argv) {
  dbm::bench::Init(&argc, argv);
  bench::Header("A9", "morsel-driven parallel execution: dop scaling");

  // Timing must not absorb injected faults (the chaos job arms
  // query.morsel process-wide).
  (void)fault::Injector::Default().Configure("", 0);

  Relation orders = MakeOrders();
  Relation people = MakePeople();
  const std::vector<size_t> dops = {1, 2, 4, 8};
  query::WorkerPool pool(8);

  // Workload 1: filtered scan + grouped aggregation.
  query::ParallelPlan scan_plan;
  scan_plan.probe.mem = &orders;
  scan_plan.probe.filter = query::Gt(query::Col(1), query::Lit(int64_t{4}));
  scan_plan.group_by = {0};
  scan_plan.aggs = {{query::AggFunc::kCount, 0, "n"},
                    {query::AggFunc::kSum, 2, "sum_val"}};
  std::vector<DopPoint> scan_curve = RunCurve(scan_plan, &pool, dops);
  if (scan_curve.empty()) return 1;
  PrintCurve("scan + aggregate (400k rows)", scan_curve);

  // Workload 2 (the headline): join + grouped aggregation.
  query::ParallelPlan join_plan;
  join_plan.probe.mem = &orders;
  query::ParallelJoinStage stage;
  stage.build.mem = &people;
  stage.spec = query::JoinSpec{0, 0};  // people.id = orders.person_id
  join_plan.joins.push_back(std::move(stage));
  // Joined schema: people(id, grp, name) ++ orders(person_id, qty, val).
  join_plan.group_by = {1};
  join_plan.aggs = {{query::AggFunc::kCount, 0, "n"},
                    {query::AggFunc::kSum, 5, "sum_val"},
                    {query::AggFunc::kMax, 4, "max_qty"}};
  std::vector<DopPoint> join_curve = RunCurve(join_plan, &pool, dops);
  if (join_curve.empty()) return 1;
  PrintCurve("join + aggregate (400k ⋈ 2k)", join_curve);

  double speedup4 = 1.0;
  for (const DopPoint& p : join_curve) {
    if (p.dop == 4) speedup4 = p.speedup;
  }

  obs::Registry& reg = obs::Registry::Default();
  for (const DopPoint& p : scan_curve) {
    reg.GetGauge("bench.pexec.scan_ms_dop" + std::to_string(p.dop))
        .Set(p.millis);
  }
  for (const DopPoint& p : join_curve) {
    reg.GetGauge("bench.pexec.join_ms_dop" + std::to_string(p.dop))
        .Set(p.millis);
    reg.GetGauge("bench.pexec.join_speedup_dop" + std::to_string(p.dop))
        .Set(p.speedup);
  }

  unsigned hw = std::thread::hardware_concurrency();
  reg.GetGauge("bench.pexec.hw_threads").Set(static_cast<double>(hw));
  bool gate = hw >= 4;
  if (gate) {
    bench::Note(bench::Fmt("dop=4 join speedup %.2fx", speedup4) +
                " (bar: >= 2.5x on this >=4-thread host)");
  } else {
    bench::Note(bench::Fmt("host has %.0f hardware threads", hw) +
                "; dop=4 bar (>= 2.5x) reported, not enforced");
  }

  bench::MetricsSidecar("bench_parallel_exec");

  if (gate && speedup4 < 2.5) {
    std::printf("FAIL: dop=4 join speedup %.2fx < 2.5x\n", speedup4);
    return 1;
  }
  return 0;
}
